//! The 8-bit quantized representation (§VI-F): quantize a real-valued
//! activation distribution TensorFlow-style, inspect its essential-bit
//! content, and compare accelerators under the quantized workload.
//!
//! ```sh
//! cargo run --release --example quantized
//! ```

use pragmatic::core::{Fidelity, PraConfig, SyncPolicy};
use pragmatic::engines::{dadn, stripes};
use pragmatic::fixed::QuantParams;
use pragmatic::sim::ChipConfig;
use pragmatic::workloads::{Network, NetworkWorkload, Representation};

fn main() {
    // TensorFlow-style linear quantization: arbitrary min/max per layer.
    let q = QuantParams::new(-0.37, 5.81);
    println!("quantization of [-0.37, 5.81] into 8 bits (scale {:.4}):", q.scale());
    for v in [-0.37f32, 0.0, 0.5, 2.7, 5.81] {
        let code = q.quantize(v);
        println!(
            "  value {v:>8.4} -> code {code:>3} ({code:#010b}, {} essential bits) -> {:.4}",
            (code as u16).count_ones(),
            q.dequantize(code)
        );
    }

    println!("\nNiN under the quantized representation:");
    let chip = ChipConfig::dadn();
    let w = NetworkWorkload::build(Network::NiN, Representation::Quant8, 9);
    let base = dadn::run(&chip, &w);
    let fid = Fidelity::Sampled { max_pallets: 64 };
    let configs = [
        ("Stripes (p<=8)", None),
        (
            "PRA perPall-2b",
            Some(PraConfig::two_stage(2, Representation::Quant8).with_fidelity(fid)),
        ),
        (
            "PRA perCol-1R-2b",
            Some(PraConfig::per_column(1, Representation::Quant8).with_fidelity(fid)),
        ),
        (
            "PRA perCol-ideal",
            Some(PraConfig {
                sync: SyncPolicy::PerColumnIdeal,
                ..PraConfig::two_stage(2, Representation::Quant8).with_fidelity(fid)
            }),
        ),
    ];
    for (name, cfg) in configs {
        let speedup = match cfg {
            None => stripes::run(&chip, &w).speedup_over(&base),
            Some(cfg) => pragmatic::core::run(&cfg, &w).speedup_over(&base),
        };
        println!("  {name:18} {speedup:>5.2}x over the 8-bit bit-parallel baseline");
    }
    println!(
        "\nPragmatic's benefit persists under quantization because even 8-bit\n\
         codes are mostly zero bits (Table I: 27-37% essential for NiN)."
    );
}
