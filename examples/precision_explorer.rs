//! Explore per-layer precision: run the Judd-style profiler over generated
//! activation streams, compare with the paper's Table II, and show what
//! §V-F software trimming buys Pragmatic layer by layer.
//!
//! ```sh
//! cargo run --release --example precision_explorer
//! ```

use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::fixed::precision::profile_window_clipped;
use pragmatic::fixed::BitContentStats;
use pragmatic::workloads::{profiles, Network, NetworkWorkload, Representation};

fn main() {
    let net = Network::GoogLeNet;
    let w = NetworkWorkload::build(net, Representation::Fixed16, 7);
    let paper = profiles::precisions(net);

    println!("{net}: per-layer precision profile\n");
    println!(
        "{:18} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "layer", "TableII", "profiled", "NZ bits/16", "trim cycles", "no-trim"
    );
    let fid = Fidelity::Sampled { max_pallets: 32 };
    for (layer, &p) in w.layers.iter().zip(paper) {
        let profiled = profile_window_clipped(layer.neurons.as_slice(), 0.01, 0.01);
        let stats: BitContentStats = layer.neurons.as_slice().iter().copied().collect();
        let trim = pragmatic::core::simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fid),
            layer,
        );
        let no_trim = pragmatic::core::simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fid).with_trim(false),
            layer,
        );
        println!(
            "{:18} {:>8} {:>10} {:>11.1}% {:>12} {:>12}",
            layer.spec.name(),
            p,
            profiled.width(),
            100.0 * stats.fraction_nonzero(16),
            trim.cycles,
            no_trim.cycles,
        );
    }
    println!(
        "\nSoftware communicates each layer's precision as metadata; the\n\
         hardware ANDs output neurons with the derived mask before writing\n\
         them to NM (§V-F), which removes the suffix-noise and outlier bits\n\
         the profiler tolerates — the gap between the last two columns."
    );
}
