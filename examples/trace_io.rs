//! Trace I/O: dump a workload's activation streams to the `PRAT` format
//! and evaluate the simulators on the re-loaded trace — the workflow for
//! users who can extract *real* activations from the original networks.
//!
//! ```sh
//! cargo run --release --example trace_io
//! ```

use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::engines::dadn;
use pragmatic::sim::ChipConfig;
use pragmatic::workloads::traces::{workload_from_trace, write_trace};
use pragmatic::workloads::{Network, NetworkWorkload, Representation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::AlexNet;
    let original = NetworkWorkload::build(net, Representation::Fixed16, 2024);

    // Dump to disk (a real deployment would write this from a Caffe/TF
    // hook instead).
    let path = std::env::temp_dir().join("alexnet.prat");
    let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write_trace(file, &original)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("wrote {} ({:.1} MB)", path.display(), bytes as f64 / 1e6);

    // Load it back and simulate.
    let file = std::io::BufReader::new(std::fs::File::open(&path)?);
    let traced = workload_from_trace(file, net)?;

    let chip = ChipConfig::dadn();
    let cfg = PraConfig::two_stage(2, Representation::Fixed16)
        .with_fidelity(Fidelity::Sampled { max_pallets: 64 });
    let base = dadn::run(&chip, &traced);
    let pra = pragmatic::core::run(&cfg, &traced);
    println!(
        "PRA-2b on the traced workload: {:.2}x over DaDN ({} vs {} cycles)",
        pra.speedup_over(&base),
        pra.total_cycles(),
        base.total_cycles()
    );

    // Identical to simulating the original workload: the trace is lossless.
    let direct = pragmatic::core::run(&cfg, &original);
    assert_eq!(direct.total_cycles(), pra.total_cycles());
    println!("trace round-trip is lossless (cycle counts identical)");

    std::fs::remove_file(&path)?;
    Ok(())
}
