//! End-to-end tour of AlexNet's convolutional layers: per-layer cycles,
//! speedups, term counts and chip energy for DaDianNao, Stripes and three
//! Pragmatic variants on the calibrated synthetic activation stream.
//!
//! ```sh
//! cargo run --release --example alexnet_tour
//! ```

use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::energy::efficiency::{efficiency, EnergyReport};
use pragmatic::energy::unit::Design;
use pragmatic::engines::{dadn, potential, stripes};
use pragmatic::sim::ChipConfig;
use pragmatic::workloads::{Network, NetworkWorkload, Representation};

fn main() {
    let chip = ChipConfig::dadn();
    println!("building calibrated AlexNet workload (Table I statistics)...");
    let w = NetworkWorkload::build(Network::AlexNet, Representation::Fixed16, 42);

    let fidelity = Fidelity::Sampled { max_pallets: 128 };
    let base = dadn::run(&chip, &w);
    let str_r = stripes::run(&chip, &w);
    let pra2b = pragmatic::core::run(
        &PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity),
        &w,
    );
    let pra1r = pragmatic::core::run(
        &PraConfig::per_column(1, Representation::Fixed16).with_fidelity(fidelity),
        &w,
    );

    println!("\nper-layer speedup over DaDN:");
    println!(
        "{:8} {:>12} {:>10} {:>10} {:>10} {:>16}",
        "layer", "DaDN cycles", "Stripes", "PRA-2b", "PRA-2b-1R", "essential terms"
    );
    for (((bl, sl), pl), cl) in
        base.layers.iter().zip(&str_r.layers).zip(&pra2b.layers).zip(&pra1r.layers)
    {
        let t = bl.counters.terms;
        println!(
            "{:8} {:>12} {:>9.2}x {:>9.2}x {:>9.2}x {:>15.1}%",
            bl.layer,
            bl.cycles,
            bl.cycles as f64 / sl.cycles as f64,
            bl.cycles as f64 / pl.cycles as f64,
            bl.cycles as f64 / cl.cycles as f64,
            100.0 * pl.counters.terms as f64 / t as f64,
        );
    }

    println!("\nnetwork totals:");
    for (name, r) in [("Stripes", &str_r), ("PRA-2b", &pra2b), ("PRA-2b-1R", &pra1r)] {
        println!("  {name:10} speedup {:>5.2}x", r.speedup_over(&base));
    }

    // Ideal potential (Fig. 2 style) for context.
    let terms = potential::network_terms(&w).normalized();
    println!(
        "\nideal term counts vs DaDN: Stripes {:.0}%, PRA-fp16 {:.0}%, PRA-red {:.0}%",
        100.0 * terms.stripes,
        100.0 * terms.pra,
        100.0 * terms.pra_red
    );

    // Energy.
    let base_e = EnergyReport::new(Design::Dadn, base.total_cycles());
    println!("\nenergy efficiency vs DaDN (power model x measured cycles):");
    for (design, r) in [
        (Design::Stripes, &str_r),
        (Design::Pra { first_stage_bits: 2, ssrs: 0 }, &pra2b),
        (Design::Pra { first_stage_bits: 2, ssrs: 1 }, &pra1r),
    ] {
        let rep = EnergyReport::new(design, r.total_cycles());
        println!(
            "  {:12} power {:>5.1} W  efficiency {:>5.2}x",
            design.label(),
            rep.power_w,
            efficiency(&base_e, &rep)
        );
    }
}
