//! Bring your own network: define a custom CNN's convolutional layers,
//! generate (or supply) its activation streams, and evaluate how much
//! Pragmatic would accelerate it — the downstream-user workflow.
//!
//! Also demonstrates the functional path: the layer output computed through
//! the Pragmatic datapath is bit-exact against the reference convolution.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use pragmatic::core::functional::compute_layer;
use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::engines::dadn;
use pragmatic::fixed::PrecisionWindow;
use pragmatic::sim::ChipConfig;
use pragmatic::tensor::conv::{convolve, relu_requantize};
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::generator::generate_synapses;
use pragmatic::workloads::{LayerWorkload, Representation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small edge-device CNN: 3 conv layers.
    let specs = vec![
        ConvLayerSpec::new("stem", (64, 64, 8), (5, 5), 32, 2, 2)?,
        ConvLayerSpec::new("mid", (32, 32, 32), (3, 3), 64, 1, 1)?,
        ConvLayerSpec::new("head", (32, 32, 64), (3, 3), 64, 1, 1)?,
    ];

    // First-layer input: a synthetic "image" (dense, low precision).
    let mut acts =
        Tensor3::from_fn(specs[0].input, |x, y, i| (((x * 7 + y * 13 + i * 29) % 255) + 1) as u16);

    let chip = ChipConfig::dadn();
    let cfg = PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(Fidelity::Full);
    println!(
        "{:8} {:>10} {:>10} {:>9} {:>22}",
        "layer", "DaDN cyc", "PRA-2b", "speedup", "functional check"
    );

    for spec in &specs {
        let synapses = generate_synapses(spec, 0xC0FFEE);
        let window = PrecisionWindow::full();
        let layer = LayerWorkload {
            spec: spec.clone(),
            window,
            stripes_precision: 16,
            neurons: acts.clone(),
        };

        // Cycle model.
        let base = dadn::simulate_layer(&chip, &layer, Representation::Fixed16);
        let pra = pragmatic::core::simulate_layer(&cfg, &layer);

        // Functional model: the Pragmatic datapath's sums must equal the
        // reference convolution bit for bit.
        let via_pra = compute_layer(&cfg, spec, &acts, &synapses, window);
        let reference = convolve(spec, &acts, &synapses);
        assert_eq!(via_pra, reference);

        println!(
            "{:8} {:>10} {:>10} {:>8.2}x {:>22}",
            spec.name(),
            base.cycles,
            pra.cycles,
            base.cycles as f64 / pra.cycles as f64,
            "bit-exact vs reference"
        );

        // Chain: rectify + requantize the outputs as the next layer input.
        acts = relu_requantize(&reference, 8);
    }
    println!("\nAll three layers verified through the oneffset datapath.");
    Ok(())
}
