//! Quickstart: oneffsets, one small layer, three accelerators.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::engines::{dadn, stripes};
use pragmatic::fixed::{OneffsetList, PrecisionWindow};
use pragmatic::sim::ChipConfig;
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::{LayerWorkload, Representation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The core idea: a neuron is an explicit list of its essential bits.
    let neuron = 0b0000_0101_1000_0000u16;
    let oneffsets = OneffsetList::encode(neuron);
    println!("neuron {neuron:#018b}");
    println!("  essential bits (oneffsets, LSB first): {:?}", oneffsets.powers());
    println!(
        "  a bit-parallel multiplier would process 16 terms; Pragmatic processes {}\n",
        oneffsets.len()
    );

    // 2. A small convolutional layer: 32x32x64 input, 64 3x3 filters.
    let spec = ConvLayerSpec::new("demo", (32, 32, 64), (3, 3), 64, 1, 1)?;
    // Sparse-ish activations in a 9-bit precision window, like a profiled
    // real layer.
    let neurons = Tensor3::from_fn(spec.input, |x, y, i| {
        let h =
            (x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503) ^ i.wrapping_mul(2246822519)) % 100;
        if h < 55 {
            0 // rectified
        } else {
            (((h * h) % 500 + 4) << 2) as u16
        }
    });
    let layer = LayerWorkload {
        window: PrecisionWindow::with_width(9, 2),
        stripes_precision: 9,
        neurons,
        spec,
    };

    // 3. Simulate DaDianNao, Stripes, and Pragmatic on it.
    let chip = ChipConfig::dadn();
    let base = dadn::simulate_layer(&chip, &layer, Representation::Fixed16);
    let str_r = stripes::simulate_layer(&chip, &layer, Representation::Fixed16);
    let pra = pragmatic::core::simulate_layer(
        &PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(Fidelity::Full),
        &layer,
    );

    println!("{:10} {:>12} {:>14} {:>9}", "engine", "cycles", "terms", "speedup");
    for (name, r) in [("DaDN", &base), ("Stripes", &str_r), ("PRA-2b", &pra)] {
        println!(
            "{:10} {:>12} {:>14} {:>8.2}x",
            name,
            r.cycles,
            r.counters.terms,
            base.cycles as f64 / r.cycles as f64
        );
    }
    println!("\n(DaDN processes 16 terms per multiplication, Stripes 9, Pragmatic only the essential ones.)");
    Ok(())
}
