//! Design-space exploration: sweep the first-stage shifter width L and the
//! synchronization policy, and print performance against area and power —
//! the trade-off that makes PRA-2b the paper's configuration of choice
//! (§VI-B2: "PRA2b is particularly appealing").
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use pragmatic::core::{Fidelity, PraConfig, SyncPolicy};
use pragmatic::energy::chip::{chip_area_mm2, chip_power_w};
use pragmatic::energy::unit::Design;
use pragmatic::engines::dadn;
use pragmatic::sim::{geomean, ChipConfig};
use pragmatic::workloads::{Network, NetworkWorkload, Representation};

fn main() {
    let chip = ChipConfig::dadn();
    let fid = Fidelity::Sampled { max_pallets: 32 };
    // Two representative networks keep the sweep quick.
    let nets = [Network::AlexNet, Network::Vgg19];
    let workloads: Vec<_> =
        nets.iter().map(|&n| NetworkWorkload::build(n, Representation::Fixed16, 3)).collect();
    let bases: Vec<_> = workloads.iter().map(|w| dadn::run(&chip, w)).collect();

    let mut points: Vec<(String, Design, PraConfig)> = Vec::new();
    for l in 0..=4u8 {
        let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_fidelity(fid);
        points.push((cfg.label(), Design::Pra { first_stage_bits: l, ssrs: 0 }, cfg));
    }
    for ssrs in [1usize, 4, 16] {
        let cfg = PraConfig {
            sync: SyncPolicy::PerColumn { ssrs },
            ..PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fid)
        };
        points.push((cfg.label(), Design::Pra { first_stage_bits: 2, ssrs }, cfg));
    }

    let dadn_area = chip_area_mm2(Design::Dadn);
    let dadn_power = chip_power_w(Design::Dadn);
    println!(
        "{:12} {:>8} {:>10} {:>10} {:>12} {:>14}",
        "design", "speedup", "area mm2", "power W", "perf/area", "perf/power"
    );
    for (label, design, cfg) in points {
        let speedups: Vec<f64> = workloads
            .iter()
            .zip(&bases)
            .map(|(w, b)| pragmatic::core::run(&cfg, w).speedup_over(b))
            .collect();
        let s = geomean(&speedups);
        let a = chip_area_mm2(design);
        let p = chip_power_w(design);
        println!(
            "{:12} {:>7.2}x {:>10.0} {:>10.1} {:>12.2} {:>14.2}",
            label,
            s,
            a,
            p,
            s / (a / dadn_area),
            s / (p / dadn_power),
        );
    }
    println!(
        "\nPRA-2b maximizes performance per area: larger first stages buy\n\
         <1% performance for >10% area; per-column sync with one SSR adds\n\
         ~35% performance for ~1% area."
    );
}
