//! Offline shim for `rand` 0.9.
//!
//! Provides the API subset this workspace uses: the [`Rng`] extension
//! trait (`random`, `random_range`, `random_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, high quality for
//! simulation workloads, but **not** stream-compatible with upstream's
//! ChaCha12-based `StdRng`. Every consumer in this workspace treats
//! seeds as opaque, so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers/bool, uniform in `[0, 1)`
    /// for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`). Panics if the
    /// range is empty, mirroring upstream.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// Ready-made generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u16> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.random()).collect()
        };
        let b: Vec<u16> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.random()).collect()
        };
        let c: Vec<u16> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.random_range(3u32..=6);
            assert!((3..=6).contains(&v));
            let w = r.random_range(-256i32..=256);
            assert!((-256..=256).contains(&w));
            let x = r.random_range(0u32..17);
            assert!(x < 17);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(9);
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
