//! Offline shim for `serde`.
//!
//! The registry is unreachable in this build environment, and nothing in
//! the workspace actually serializes yet — the `#[derive(Serialize,
//! Deserialize)]` annotations exist so the data model keeps upstream
//! serde markings for the day a real serializer is wired in. This shim
//! therefore defines the two traits as empty markers and re-exports the
//! companion derive macros, which emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
