//! Offline shim for `criterion`.
//!
//! Provides the harness surface used by `benches/micro.rs`: a
//! [`Criterion`] driver with `bench_function`, a [`Bencher`] with `iter`
//! and `iter_batched`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple mean of wall-clock
//! time over `sample_size` samples after a warm-up — no statistics, no
//! plots — which is enough to compare kernels locally while offline.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion exposes its own).
pub use std::hint::black_box;

/// Benchmark driver (upstream `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{name:<44} {:>12.3?}/iter ({} iters)", per_iter, b.iters);
        self
    }
}

/// Per-benchmark measurement context (upstream `criterion::Bencher`).
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    total: Duration,
    iters: u64,
}

/// Batch sizing for `iter_batched` (semantics collapsed: every batch is
/// one iteration, which is exact for `PerIteration` and a fair
/// approximation for the rest at this shim's fidelity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measure: keep iterating until the measurement budget elapses,
        // in sample_size chunks.
        let budget = self.measurement_time;
        let start = Instant::now();
        while start.elapsed() < budget {
            for _ in 0..self.sample_size {
                let t = Instant::now();
                black_box(routine());
                self.total += t.elapsed();
                self.iters += 1;
            }
        }
    }

    /// Measures `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let budget = self.measurement_time;
        let start = Instant::now();
        while start.elapsed() < budget {
            for _ in 0..self.sample_size {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                self.total += t.elapsed();
                self.iters += 1;
            }
        }
    }
}

/// Declares a benchmark group (both upstream forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut hits = 0u64;
        c.bench_function("probe", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
