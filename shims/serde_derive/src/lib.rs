//! Offline shim for `serde_derive`: emits empty marker-trait impls for
//! `#[derive(Serialize, Deserialize)]` without depending on `syn`/`quote`.
//!
//! The companion `serde` shim defines `Serialize` and `Deserialize` as
//! method-less marker traits, so an empty impl block is a complete
//! implementation. The only parsing needed is the type's name and its
//! generic parameter list (bounds are re-emitted on the impl, stripped
//! from the type arguments).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_args) = item.generics_split();
    format!(
        "impl{ig} serde::Serialize for {name}{ta} {{}}",
        ig = impl_generics,
        name = item.name,
        ta = ty_args
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_args) = item.generics_split_with_lifetime("'de");
    format!(
        "impl{ig} serde::Deserialize<'de> for {name}{ta} {{}}",
        ig = impl_generics,
        name = item.name,
        ta = ty_args
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

struct Item {
    name: String,
    /// Raw generic parameter tokens between `<` and `>`, e.g. `T: Clone, const N: usize`.
    params: Vec<GenericParam>,
}

struct GenericParam {
    /// Full declaration, e.g. `T: Clone` or `'a` or `const N: usize`.
    decl: String,
    /// Bare argument for the type position, e.g. `T`, `'a`, `N`.
    arg: String,
}

impl Item {
    fn generics_split(&self) -> (String, String) {
        self.split(None)
    }

    fn generics_split_with_lifetime(&self, extra: &str) -> (String, String) {
        self.split(Some(extra))
    }

    fn split(&self, extra_lifetime: Option<&str>) -> (String, String) {
        let mut decls: Vec<String> = Vec::new();
        if let Some(lt) = extra_lifetime {
            decls.push(lt.to_string());
        }
        decls.extend(self.params.iter().map(|p| p.decl.clone()));
        let args: Vec<String> = self.params.iter().map(|p| p.arg.clone()).collect();
        let ig = if decls.is_empty() { String::new() } else { format!("<{}>", decls.join(", ")) };
        let ta = if args.is_empty() { String::new() } else { format!("<{}>", args.join(", ")) };
        (ig, ta)
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    // Find the `struct` / `enum` / `union` keyword; the next ident is the name.
    let mut idx = 0;
    while idx < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[idx] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                idx += 1;
                break;
            }
        }
        idx += 1;
    }
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    idx += 1;
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
        if p.as_char() == '<' {
            params = parse_generics(&tokens[idx + 1..]);
        }
    }
    Item { name, params }
}

/// Parses the token run after `<` up to the matching `>` into parameter
/// declarations and bare argument names. Handles lifetimes, type params
/// with bounds, const params, and defaults (`= ...`, which are dropped
/// from the impl declaration as Rust requires).
fn parse_generics(tokens: &[TokenTree]) -> Vec<GenericParam> {
    let mut depth = 1usize; // we are inside one `<`
    let mut params = Vec::new();
    let mut decl = String::new();
    let mut arg = String::new();
    let mut seen_colon = false;
    let mut seen_eq = false;
    let mut is_const = false;
    let mut pending_lifetime = false;

    let mut flush = |decl: &mut String, arg: &mut String, seen_colon: &mut bool, seen_eq: &mut bool, is_const: &mut bool| {
        let d = decl.trim().to_string();
        if !d.is_empty() {
            params.push(GenericParam { decl: d, arg: arg.trim().to_string() });
        }
        decl.clear();
        arg.clear();
        *seen_colon = false;
        *seen_eq = false;
        *is_const = false;
    };

    for tt in tokens {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => {
                        depth += 1;
                        if !seen_eq {
                            decl.push('<');
                        }
                    }
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        if !seen_eq {
                            decl.push('>');
                        }
                    }
                    ',' if depth == 1 => {
                        flush(&mut decl, &mut arg, &mut seen_colon, &mut seen_eq, &mut is_const);
                    }
                    ':' if depth == 1 && !seen_colon && !is_const => {
                        seen_colon = true;
                        decl.push(':');
                    }
                    '=' if depth == 1 => {
                        seen_eq = true; // default value: drop from decl
                    }
                    '\'' => {
                        pending_lifetime = true;
                        if !seen_eq {
                            decl.push('\'');
                        }
                        if !seen_colon {
                            arg.push('\'');
                        }
                        continue;
                    }
                    _ => {
                        if !seen_eq {
                            decl.push(c);
                        }
                    }
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "const" && depth == 1 && decl.trim().is_empty() {
                    is_const = true;
                    decl.push_str("const ");
                    continue;
                }
                if !seen_eq {
                    if !decl.is_empty() && !decl.ends_with([' ', '<', ':', ',', '\'']) {
                        decl.push(' ');
                    }
                    decl.push_str(&s);
                }
                // The bare argument is the first ident of the parameter
                // (after `const` for const params, after `'` for lifetimes).
                if !seen_colon && (arg.is_empty() || pending_lifetime || arg == "'") {
                    arg.push_str(&s);
                }
                pending_lifetime = false;
            }
            TokenTree::Literal(l) => {
                if !seen_eq {
                    decl.push_str(&l.to_string());
                }
            }
            TokenTree::Group(g) => {
                if !seen_eq && g.delimiter() == Delimiter::Bracket {
                    decl.push_str(&g.to_string());
                }
            }
        }
    }
    flush(&mut decl, &mut arg, &mut seen_colon, &mut seen_eq, &mut is_const);
    params
}
