//! Offline shim for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, backed by deterministic random sampling (the RNG
//! is seeded from the test name, so failures are reproducible). Unlike
//! upstream proptest there is **no shrinking**: a failing case panics
//! with the sampled inputs left to the assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies by the [`proptest!`] harness.
pub type TestRng = StdRng;

/// Creates the deterministic per-test RNG (seeded by FNV-1a of `name`).
pub fn new_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values (upstream `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, panicking with
    /// `reason` if no acceptable value is found in a bounded number of
    /// tries (upstream rejects the whole run similarly).
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Keeps only values satisfying `f`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Strategy producing a constant (upstream `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, magnitude spread over several decades.
        let mag: f64 = rng.random::<f64>() * 1e6;
        if rng.random::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T` (upstream `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11);

/// Weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! total weight must be positive");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered above")
    }
}

/// Module tree mirroring `proptest::prop` (`collection`, `array`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len` and
        /// elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A `Vec` strategy (upstream `prop::collection::vec`).
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        macro_rules! uniform_array {
            ($name:ident, $n:expr) => {
                /// Strategy for `[T; N]` with every element drawn from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            };
        }

        /// Strategy for fixed-size arrays of identically distributed
        /// elements.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.element.sample(rng))
            }
        }

        uniform_array!(uniform2, 2);
        uniform_array!(uniform3, 3);
        uniform_array!(uniform4, 4);
        uniform_array!(uniform8, 8);
        uniform_array!(uniform16, 16);
        uniform_array!(uniform32, 32);
    }
}

/// Commonly imported names (upstream `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, Box::new($strategy) as $crate::BoxedStrategy<_>)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, Box::new($strategy) as $crate::BoxedStrategy<_>)),+
        ])
    };
}

/// The property-test harness macro. Each `fn name(binding in strategy,
/// …) { body }` item expands to a `#[test]` running `cases` random
/// samples (the `#[test]` attribute is written inside the macro, as with
/// upstream proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                    let __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights() {
        let s: crate::Union<u32> = prop_oneof![
            3 => Just(0u32),
            5 => 1u32..=100,
            2 => Just(4096u32),
        ];
        let mut rng = crate::new_rng("union_respects_weights");
        let mut zero = 0;
        let mut mid = 0;
        let mut big = 0;
        for _ in 0..5000 {
            match s.sample(&mut rng) {
                0 => zero += 1,
                4096 => big += 1,
                _ => mid += 1,
            }
        }
        assert!(zero > 1000 && mid > 1800 && big > 600, "{zero}/{mid}/{big}");
    }

    #[test]
    fn filter_map_applies() {
        let s = (0u32..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v * 10));
        let mut rng = crate::new_rng("filter_map_applies");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert_eq!(v % 20, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn harness_runs_and_binds((a, b) in (0u16..50, 50u16..100), flag in any::<bool>()) {
            prop_assert!(a < 50 && (50..100).contains(&b));
            prop_assume!(flag);
            prop_assert_eq!(flag, true);
        }

        #[test]
        fn vec_and_array_strategies(v in prop::collection::vec(any::<u16>(), 1..20), arr in prop::array::uniform16(0u32..12)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(arr.iter().all(|&x| x < 12));
        }
    }
}
