//! Offline shim for `rayon`.
//!
//! Implements the data-parallel subset this workspace uses —
//! `par_iter()` / `into_par_iter()` → `map` → `collect::<Vec<_>>()`,
//! plus [`join`] and [`current_num_threads`] — on top of
//! `std::thread::scope`. Work is distributed dynamically (an atomic
//! index acts as the work-stealing queue) and results are written back
//! by input index, so output order always equals input order, exactly
//! like upstream rayon's indexed parallel iterators.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count configured through [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a parallel operation will use. Resolution
/// order mirrors upstream: an explicit [`ThreadPoolBuilder::build_global`]
/// wins, then `RAYON_NUM_THREADS`, then the machine's parallelism.
pub fn current_num_threads() -> usize {
    match GLOBAL_NUM_THREADS.load(Ordering::Relaxed) {
        0 => match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        },
        n => n,
    }
}

/// Global-pool configuration (upstream `rayon::ThreadPoolBuilder`,
/// reduced to the worker-count knob — the shim spins up scoped threads
/// per operation instead of keeping a persistent pool).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 restores the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Installs the configuration globally. Unlike upstream this always
    /// succeeds and later calls simply overwrite earlier ones.
    pub fn build_global(self) -> Result<(), Box<dyn std::error::Error>> {
        GLOBAL_NUM_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: joined closure panicked"))
    })
}

/// Executes `f` over every item on a scoped thread pool, preserving
/// input order in the output.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("rayon shim: item lock poisoned")
                    .take()
                    .expect("rayon shim: item taken twice");
                let result = f(item);
                *out[i].lock().expect("rayon shim: result lock poisoned") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rayon shim: result lock poisoned")
                .expect("rayon shim: worker died before producing a result")
        })
        .collect()
}

/// A parallel iterator over owned items (upstream's `IntoParallelIterator::Iter`).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Calls `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_parallel(self.items, |t| f(t));
    }

    /// Collects the items (identity pipeline).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the pipeline and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(run_parallel(self.items, self.f))
    }

    /// Runs the pipeline and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_parallel(self.items, self.f).into_iter().sum()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter()` over borrowed slices (upstream `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Commonly imported names (upstream `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|v| v * 3).collect();
        assert_eq!(out, input.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input.par_iter().map(|&v| v + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        if super::current_num_threads() < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let seen = Mutex::new(HashSet::new());
        let work: Vec<u32> = (0..256).collect();
        work.into_par_iter()
            .map(|v| {
                // Hold the slot long enough for other workers to run.
                std::thread::sleep(std::time::Duration::from_micros(200));
                seen.lock().unwrap().insert(std::thread::current().id());
                v
            })
            .collect::<Vec<_>>();
        assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
