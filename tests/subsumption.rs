//! Cross-engine ordering invariants (DESIGN.md §6): Pragmatic subsumes
//! Stripes, which subsumes DaDianNao; finer synchronization and wider
//! first stages never hurt; software trimming never hurts.

use pragmatic::core::{Fidelity, PraConfig, SyncPolicy};
use pragmatic::engines::{dadn, stripes};
use pragmatic::fixed::PrecisionWindow;
use pragmatic::sim::ChipConfig;
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::{LayerWorkload, Network, NetworkWorkload, Representation};

/// An aligned (pallet-friendly) layer with calibrated VGG-S values.
fn layer() -> LayerWorkload {
    let model =
        pragmatic::workloads::calibrate::calibrated_model(Network::VggS, Representation::Fixed16);
    let window = PrecisionWindow::with_width(9, 2);
    let spec = ConvLayerSpec::new("sub", (34, 12, 48), (3, 3), 128, 1, 0).unwrap();
    let mut sampler = pragmatic::workloads::Sampler::seeded(0x5B5);
    let neurons = Tensor3::from_fn(spec.input, |_, _, _| {
        model.sample(window, Representation::Fixed16, &mut sampler)
    });
    LayerWorkload { spec, window, stripes_precision: 9, neurons }
}

#[test]
fn pra_beats_stripes_beats_dadn() {
    let chip = ChipConfig::dadn();
    let l = layer();
    let dadn_c = dadn::simulate_layer(&chip, &l, Representation::Fixed16).cycles;
    let str_c = stripes::simulate_layer(&chip, &l, Representation::Fixed16).cycles;
    let pra_c =
        pragmatic::core::simulate_layer(&PraConfig::single_stage(Representation::Fixed16), &l)
            .cycles;
    assert!(str_c <= dadn_c, "Stripes {str_c} vs DaDN {dadn_c}");
    assert!(pra_c <= str_c, "PRA {pra_c} vs Stripes {str_c}");
    assert!(pra_c < dadn_c / 2, "PRA should be well over 2x on calibrated values");
}

#[test]
fn wider_first_stage_monotone() {
    let l = layer();
    let mut prev = u64::MAX;
    for lbits in 0..=4u8 {
        let c = pragmatic::core::simulate_layer(
            &PraConfig::two_stage(lbits, Representation::Fixed16),
            &l,
        )
        .cycles;
        assert!(c <= prev, "L={lbits}: {c} > {prev}");
        prev = c;
    }
}

#[test]
fn sync_hierarchy_monotone() {
    let l = layer();
    let pallet =
        pragmatic::core::simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &l)
            .cycles;
    let mut prev = pallet + l.spec.pallets() as u64 * l.spec.brick_steps() as u64; // small slack for port serialization
    for ssrs in [1usize, 2, 4, 8, 16] {
        let c = pragmatic::core::simulate_layer(
            &PraConfig::per_column(ssrs, Representation::Fixed16),
            &l,
        )
        .cycles;
        assert!(c <= prev, "{ssrs} SSRs: {c} > {prev}");
        prev = c;
    }
    let ideal = pragmatic::core::simulate_layer(
        &PraConfig {
            sync: SyncPolicy::PerColumnIdeal,
            ..PraConfig::two_stage(2, Representation::Fixed16)
        },
        &l,
    )
    .cycles;
    assert!(ideal <= prev);
    assert!(ideal <= pallet);
}

#[test]
fn trimming_never_hurts() {
    let l = layer();
    for cfgs in [
        PraConfig::two_stage(2, Representation::Fixed16),
        PraConfig::per_column(1, Representation::Fixed16),
    ] {
        let on = pragmatic::core::simulate_layer(&cfgs, &l).cycles;
        let off = pragmatic::core::simulate_layer(&cfgs.with_trim(false), &l).cycles;
        assert!(on <= off, "{}: trim {on} vs no-trim {off}", cfgs.label());
    }
}

#[test]
fn network_level_orderings_hold_on_alexnet() {
    let chip = ChipConfig::dadn();
    let w = NetworkWorkload::build(Network::AlexNet, Representation::Fixed16, 0x600D);
    let fid = Fidelity::Sampled { max_pallets: 24 };
    let base = dadn::run(&chip, &w);
    let str_s = stripes::run(&chip, &w).speedup_over(&base);
    let p2 = pragmatic::core::run(
        &PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fid),
        &w,
    )
    .speedup_over(&base);
    let p2_1r = pragmatic::core::run(
        &PraConfig::per_column(1, Representation::Fixed16).with_fidelity(fid),
        &w,
    )
    .speedup_over(&base);
    assert!(str_s > 1.0);
    assert!(p2 > str_s);
    assert!(p2_1r > p2);
}
