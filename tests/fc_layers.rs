//! Fully-connected layers: why Pragmatic targets convolutions.
//!
//! The paper scopes to convolutional layers ("more than 92% of the
//! processing time") and §V-A3 derives Pragmatic's worst-case guarantee
//! from window parallelism — 16 windows share each synapse. An FC layer
//! has exactly one window, so there is no synapse reuse to exploit: these
//! tests document, quantitatively, that PRA degrades to (at best) DaDN's
//! rate there, while EIE-style designs (paper §VII) win on FC instead.

use pragmatic::core::PraConfig;
use pragmatic::engines::dadn;
use pragmatic::fixed::PrecisionWindow;
use pragmatic::sim::{capacity, ChipConfig};
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::{LayerWorkload, Representation};

fn fc_layer(inputs: usize, outputs: usize) -> LayerWorkload {
    let spec = ConvLayerSpec::fully_connected("fc", inputs, outputs).unwrap();
    let neurons =
        Tensor3::from_fn(
            spec.input,
            |_, _, i| {
                if i % 2 == 0 {
                    0
                } else {
                    ((i * 37) % 500 + 4) as u16
                }
            },
        );
    LayerWorkload { spec, window: PrecisionWindow::with_width(9, 2), stripes_precision: 9, neurons }
}

#[test]
fn fc_has_single_window_and_no_pallet_parallelism() {
    let l = fc_layer(4096, 4096);
    assert_eq!(l.spec.windows(), 1);
    assert_eq!(l.spec.pallets(), 1);
    // One window lane active of 16: 15/16 of the tile idles.
}

#[test]
fn pra_is_slower_than_dadn_on_fc() {
    // On a conv layer PRA's 16-window parallelism absorbs the serial
    // oneffset cycles — that is what §V-A3's worst-case guarantee rests
    // on. An FC layer has one window, so the guarantee evaporates: each
    // brick step takes max-popcount cycles against DaDN's one, and PRA is
    // *slower*. This is exactly why the paper leaves non-conv layers on
    // the baseline path ("PRA does not affect the execution time of the
    // remaining layers") and why EIE-class designs own FC.
    let chip = ChipConfig::dadn();
    let l = fc_layer(4096, 256);
    let base = dadn::simulate_layer(&chip, &l, Representation::Fixed16).cycles;
    let pra = pragmatic::core::simulate_layer(
        &PraConfig::single_stage(Representation::Fixed16).with_trim(false),
        &l,
    )
    .cycles;
    let speedup = base as f64 / pra as f64;
    assert!(speedup < 1.0, "FC speedup {speedup}: window parallelism is gone");
    // Still bounded: never worse than the 16x serial worst case.
    assert!(pra <= base * 16);
}

#[test]
fn conv_equivalent_work_is_much_faster_than_fc() {
    // Same multiplication count arranged as a conv layer vs an FC layer:
    // the conv arrangement gives PRA its window parallelism back.
    let chip = ChipConfig::dadn();
    let fc = fc_layer(4096, 256);

    let conv_spec = ConvLayerSpec::new("conv", (16, 16, 16), (1, 1), 256, 1, 0).unwrap();
    assert_eq!(conv_spec.multiplications(), fc.spec.multiplications());
    let conv = LayerWorkload {
        neurons: Tensor3::from_fn(conv_spec.input, |x, y, i| {
            let k = (y * 16 + x) * 16 + i;
            if k % 2 == 0 {
                0
            } else {
                ((k * 37) % 500 + 4) as u16
            }
        }),
        spec: conv_spec,
        window: PrecisionWindow::with_width(9, 2),
        stripes_precision: 9,
    };

    let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
    let fc_speedup = dadn::simulate_layer(&chip, &fc, Representation::Fixed16).cycles as f64
        / pragmatic::core::simulate_layer(&cfg, &fc).cycles as f64;
    let conv_speedup = dadn::simulate_layer(&chip, &conv, Representation::Fixed16).cycles as f64
        / pragmatic::core::simulate_layer(&cfg, &conv).cycles as f64;
    assert!(conv_speedup > fc_speedup * 1.5, "conv {conv_speedup:.2} vs fc {fc_speedup:.2}");
}

#[test]
fn fc_synapses_blow_the_synapse_buffers() {
    // The memory-system reason FC belongs to EIE-class designs: VGG's fc6
    // needs ~205 MB of synapses against 32 MB of SBs.
    let chip = ChipConfig::dadn();
    let fc6 = ConvLayerSpec::fully_connected("fc6", 25088, 4096).unwrap();
    let fp = capacity::layer_footprint(&chip, &fc6, 16);
    assert!(!fp.fits_sb);
    assert!(fp.sb_refills >= 6);
    // Whereas every conv layer of every evaluated network fits.
    for net in pragmatic::workloads::Network::ALL {
        for spec in net.conv_layers() {
            assert!(
                capacity::layer_footprint(&chip, &spec, 16).fits_sb,
                "{net}/{} should fit the SBs",
                spec.name()
            );
        }
    }
}
