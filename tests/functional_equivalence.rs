//! Cross-crate functional equivalence: the Pragmatic datapath computes the
//! same outputs as the reference convolution on calibrated workloads, for
//! every encoding and first-stage width — the repository's core
//! correctness invariant (DESIGN.md §6).

use pragmatic::core::functional::compute_layer;
use pragmatic::core::{Encoding, PraConfig};
use pragmatic::fixed::PrecisionWindow;
use pragmatic::tensor::conv::convolve;
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::generator::generate_synapses;
use pragmatic::workloads::{ActivationModel, Representation, Sampler};

fn calibrated_small_layer(seed: u64) -> (ConvLayerSpec, Tensor3<u16>, PrecisionWindow) {
    // A small layer whose values come from the real calibrated AlexNet
    // model, so the functional test exercises realistic bit patterns.
    let model = pragmatic::workloads::calibrate::calibrated_model(
        pragmatic::workloads::Network::AlexNet,
        Representation::Fixed16,
    );
    let window = PrecisionWindow::with_width(9, 2);
    let spec = ConvLayerSpec::new("cal", (10, 8, 24), (3, 3), 6, 1, 1).unwrap();
    let mut sampler = Sampler::seeded(seed);
    let neurons = Tensor3::from_fn(spec.input, |_, _, _| {
        model.sample(window, Representation::Fixed16, &mut sampler)
    });
    (spec, neurons, window)
}

#[test]
fn pragmatic_datapath_matches_reference_on_calibrated_values() {
    let (spec, neurons, window) = calibrated_small_layer(0xA11CE);
    let synapses = generate_synapses(&spec, 0xB0B);
    let reference = convolve(&spec, &neurons, &synapses);
    for l in 0..=4u8 {
        let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
        let got = compute_layer(&cfg, &spec, &neurons, &synapses, window);
        assert_eq!(got, reference, "L={l}");
    }
}

#[test]
fn csd_datapath_matches_reference_on_calibrated_values() {
    let (spec, neurons, window) = calibrated_small_layer(0xCAFE);
    let synapses = generate_synapses(&spec, 0xD00D);
    let reference = convolve(&spec, &neurons, &synapses);
    for l in [0u8, 2, 4] {
        let cfg = PraConfig {
            encoding: Encoding::Csd,
            ..PraConfig::two_stage(l, Representation::Fixed16).with_trim(false)
        };
        let got = compute_layer(&cfg, &spec, &neurons, &synapses, window);
        assert_eq!(got, reference, "CSD L={l}");
    }
}

#[test]
fn trimmed_datapath_equals_reference_over_trimmed_inputs() {
    let (spec, neurons, window) = calibrated_small_layer(0x7E57);
    let synapses = generate_synapses(&spec, 0x5EED);
    let cfg = PraConfig::two_stage(2, Representation::Fixed16); // trim on
    let got = compute_layer(&cfg, &spec, &neurons, &synapses, window);
    let trimmed = neurons.map(|v| window.trim(v));
    let reference = convolve(&spec, &trimmed, &synapses);
    assert_eq!(got, reference);
}

#[test]
fn quant8_style_values_are_exact_too() {
    let spec = ConvLayerSpec::new("q8", (9, 9, 16), (3, 3), 4, 2, 0).unwrap();
    let model = ActivationModel {
        zero_frac: 0.3,
        sigma: 0.3,
        suffix_density: 0.0,
        outlier_prob: 0.0,
        dense_prob: 0.05,
        heavy_share: 0.3,
    };
    let mut sampler = Sampler::seeded(404);
    let window = PrecisionWindow::new(7, 0);
    let neurons = Tensor3::from_fn(spec.input, |_, _, _| {
        model.sample(window, Representation::Quant8, &mut sampler)
    });
    let synapses = generate_synapses(&spec, 0xF00D);
    let reference = convolve(&spec, &neurons, &synapses);
    let cfg = PraConfig::two_stage(2, Representation::Quant8);
    let got = compute_layer(&cfg, &spec, &neurons, &synapses, window);
    assert_eq!(got, reference);
}
