//! Cross-crate accounting invariants: the cycle simulator, the ideal
//! potential model and the memory-traffic convention must agree with each
//! other (DESIGN.md §6).

use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::engines::{dadn, potential, shared_traffic, stripes};
use pragmatic::fixed::PrecisionWindow;
use pragmatic::sim::{ChipConfig, Dispatcher, NeuronMemory};
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::{LayerWorkload, Representation};

fn layer() -> LayerWorkload {
    let spec = ConvLayerSpec::new("acct", (20, 10, 40), (3, 3), 32, 1, 1).unwrap();
    let neurons =
        Tensor3::from_fn(spec.input, |x, y, i| ((x * 131 + y * 37 + i * 11) % 777) as u16);
    LayerWorkload {
        spec,
        window: PrecisionWindow::with_width(10, 2),
        stripes_precision: 10,
        neurons,
    }
}

#[test]
fn cycle_sim_terms_equal_potential_terms() {
    let l = layer();
    let cfg = PraConfig::two_stage(3, Representation::Fixed16).with_trim(false);
    let r = pragmatic::core::simulate_layer(&cfg, &l);
    let t = potential::layer_terms(&l, Representation::Fixed16, 1);
    assert_eq!(r.counters.terms, t.pra);
}

#[test]
fn trimmed_cycle_sim_terms_equal_pra_red() {
    let l = layer();
    let cfg = PraConfig::two_stage(3, Representation::Fixed16);
    let r = pragmatic::core::simulate_layer(&cfg, &l);
    let t = potential::layer_terms(&l, Representation::Fixed16, 1);
    assert_eq!(r.counters.terms, t.pra_red);
}

#[test]
fn terms_are_encoding_invariant_quantities() {
    // Stripes terms = p x multiplications; DaDN = 16 x multiplications.
    let chip = ChipConfig::dadn();
    let l = layer();
    let d = dadn::simulate_layer(&chip, &l, Representation::Fixed16);
    let s = stripes::simulate_layer(&chip, &l, Representation::Fixed16);
    assert_eq!(d.counters.terms, l.spec.multiplications() * 16);
    assert_eq!(s.counters.terms, l.spec.multiplications() * 10);
}

#[test]
fn all_engines_share_memory_traffic() {
    // The scheduling convention of §VI-A: same SB and NM traffic across
    // engines.
    let chip = ChipConfig::dadn();
    let l = layer();
    let d = dadn::simulate_layer(&chip, &l, Representation::Fixed16);
    let s = stripes::simulate_layer(&chip, &l, Representation::Fixed16);
    let p = pragmatic::core::simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &l);
    assert_eq!(d.counters.sb_set_reads, s.counters.sb_set_reads);
    assert_eq!(d.counters.sb_set_reads, p.counters.sb_set_reads);
    assert_eq!(d.counters.nm_brick_reads, p.counters.nm_brick_reads);
    assert_eq!(d.counters.nm_brick_writes, p.counters.nm_brick_writes);
}

#[test]
fn shared_traffic_matches_direct_computation() {
    let chip = ChipConfig::dadn();
    let l = layer();
    let dispatcher = Dispatcher::new(NeuronMemory::default());
    let c = shared_traffic(&chip, &l.spec, &dispatcher);
    // One set read per (pallet x brick step x filter group).
    let expected = l.spec.pallets() as u64 * l.spec.brick_steps() as u64;
    assert_eq!(c.sb_set_reads, expected);
}

#[test]
fn sampling_preserves_term_totals_approximately() {
    let l = layer();
    let full =
        pragmatic::core::simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &l);
    let sampled = pragmatic::core::simulate_layer(
        &PraConfig::two_stage(2, Representation::Fixed16)
            .with_fidelity(Fidelity::Sampled { max_pallets: 5 }),
        &l,
    );
    let ratio = sampled.counters.terms as f64 / full.counters.terms as f64;
    assert!((0.85..1.15).contains(&ratio), "terms ratio {ratio}");
}

#[test]
fn idle_lane_accounting_is_consistent() {
    let l = layer();
    let cfg = PraConfig::two_stage(2, Representation::Fixed16);
    let r = pragmatic::core::simulate_layer(&cfg, &l);
    let lane_cycles = r.cycles * 256;
    let consumed = lane_cycles - r.counters.idle_lane_cycles;
    // Consumed lane-cycles = oneffsets x filter groups; with N=32 there is
    // one group, and terms = oneffsets x N.
    assert_eq!(consumed, r.counters.terms / l.spec.num_filters as u64);
}
