//! Property-based cross-crate tests: random layers, random values, the
//! full pipeline's invariants must hold.

use proptest::prelude::*;

use pragmatic::core::functional::compute_layer;
use pragmatic::core::PraConfig;
use pragmatic::engines::dadn;
use pragmatic::fixed::PrecisionWindow;
use pragmatic::sim::ChipConfig;
use pragmatic::tensor::conv::convolve;
use pragmatic::tensor::{ConvLayerSpec, Tensor3};
use pragmatic::workloads::generator::generate_synapses;
use pragmatic::workloads::{LayerWorkload, Representation};

fn arb_layer() -> impl Strategy<Value = (ConvLayerSpec, u64)> {
    (
        3usize..8,  // nx
        3usize..6,  // ny
        1usize..24, // channels
        1usize..=3, // filter size
        1usize..5,  // filters
        1usize..=2, // stride
        0usize..=1, // padding
        any::<u64>(),
    )
        .prop_filter_map("valid geometry", |(nx, ny, i, f, n, s, p, seed)| {
            ConvLayerSpec::new("prop", (nx.max(f), ny.max(f), i), (f, f), n, s, p)
                .ok()
                .map(|spec| (spec, seed))
        })
}

fn tensor_for(spec: &ConvLayerSpec, seed: u64) -> Tensor3<u16> {
    let mut state = seed | 1;
    Tensor3::from_fn(spec.input, |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Mix of zeros and arbitrary 16-bit values.
        if state >> 62 == 0 {
            0
        } else {
            (state >> 40) as u16
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Functional equivalence holds for arbitrary geometry and values.
    #[test]
    fn functional_equivalence_random_layers((spec, seed) in arb_layer(), l in 0u8..=4) {
        let neurons = tensor_for(&spec, seed);
        let synapses = generate_synapses(&spec, seed ^ 0xFEED);
        let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
        let got = compute_layer(&cfg, &spec, &neurons, &synapses, PrecisionWindow::full());
        prop_assert_eq!(got, convolve(&spec, &neurons, &synapses));
    }

    /// The cycle simulator never exceeds DaDianNao on pallet-aligned,
    /// unpadded layers, and its cycle count is positive.
    #[test]
    fn pra_bounded_by_dadn(seed in any::<u64>(), l in 0u8..=4) {
        let spec = ConvLayerSpec::new("bound", (18, 6, 32), (3, 3), 16, 1, 0).unwrap();
        let layer = LayerWorkload {
            neurons: tensor_for(&spec, seed),
            window: PrecisionWindow::full(),
            stripes_precision: 16,
            spec,
        };
        let chip = ChipConfig::dadn();
        let base = dadn::simulate_layer(&chip, &layer, Representation::Fixed16).cycles;
        let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
        let pra = pragmatic::core::simulate_layer(&cfg, &layer).cycles;
        prop_assert!(pra >= layer.spec.pallets() as u64 * layer.spec.brick_steps() as u64);
        prop_assert!(pra <= base, "PRA {} vs DaDN {}", pra, base);
    }

    /// Terms counted by the cycle simulator equal popcount-weighted usage
    /// regardless of L and sync policy.
    #[test]
    fn terms_independent_of_schedule(seed in any::<u64>(), l in 0u8..=4, ssrs in 1usize..4) {
        let spec = ConvLayerSpec::new("terms", (12, 5, 24), (3, 3), 8, 1, 1).unwrap();
        let layer = LayerWorkload {
            neurons: tensor_for(&spec, seed),
            window: PrecisionWindow::full(),
            stripes_precision: 16,
            spec,
        };
        let pallet = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
        let column = PraConfig { sync: pragmatic::core::SyncPolicy::PerColumn { ssrs }, ..pallet };
        let t1 = pragmatic::core::simulate_layer(&pallet, &layer).counters.terms;
        let t2 = pragmatic::core::simulate_layer(&column, &layer).counters.terms;
        prop_assert_eq!(t1, t2);
    }
}
