//! # Pragmatic — Bit-Pragmatic Deep Neural Network Computing (MICRO 2017)
//!
//! This is the facade crate of the reproduction workspace: it re-exports
//! the public API of every subsystem so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`tensor`] | `pra-tensor` | 3D arrays, layer geometry, bricks/pallets, reference convolution |
//! | [`fixed`] | `pra-fixed` | oneffsets, essential bits, quantization, precision windows, CSD |
//! | [`workloads`] | `pra-workloads` | the six networks, Table I/II data, calibrated activation streams |
//! | [`sim`] | `pra-sim` | chip configuration, memory system, dispatcher, metrics |
//! | [`engines`] | `pra-engines` | DaDianNao, Stripes, zero-skip baselines, potential (term) models |
//! | [`core`] | `pra-core` | the Pragmatic accelerator: PIPs, 2-stage shifting, synchronization |
//! | [`energy`] | `pra-energy` | 65 nm area/power/energy model calibrated to Tables III/IV |
//! | [`serve`] | `pra-serve` | batched simulation serving: admission queue, coalescing workers, TCP front end |
//! | [`router`] | `pra-router` | sharded serving: consistent-hash routing, health-checked failover, replica fallback |
//! | [`chaos`] | `pra-chaos` | deterministic fault injection (`PRA_CHAOS`) for the serving tier |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use pragmatic::fixed::OneffsetList;
//!
//! // A neuron value's essential bits are its oneffsets:
//! let n = OneffsetList::encode(0b0000_0001_0100_0100);
//! assert_eq!(n.powers(), &[2, 6, 8]);
//! ```

#![forbid(unsafe_code)]

pub use pra_chaos as chaos;
pub use pra_core as core;
pub use pra_energy as energy;
pub use pra_engines as engines;
pub use pra_fixed as fixed;
pub use pra_router as router;
pub use pra_serve as serve;
pub use pra_sim as sim;
pub use pra_tensor as tensor;
pub use pra_workloads as workloads;
