//! `pra` — command-line front end for the Pragmatic reproduction.
//!
//! ```text
//! pra potential <network>              Fig. 2-style term counts
//! pra speedup <network> [--quant8]     DaDN/Stripes/PRA speedups
//! pra capacity <network>               NM/SB footprint audit
//! pra networks                         list the evaluated networks
//! pra sweep [--serial] [--full] [--sampled N] [--seed N] [--no-cache]
//!                                      all networks x engines x representations,
//!                                      parallel, full fidelity by default
//!                                      (--full spells it explicitly, overriding
//!                                      an inherited PRA_BENCH_PALLETS),
//!                                      consolidated CSV + timing reports;
//!                                      workloads come from the content-addressed
//!                                      cache unless --no-cache
//! pra cache stats [--kind K] [--json]  inspect the artifact cache (workload,
//!                                      traffic, and encoded tiers)
//! pra cache clear [--stale] [--kind K] [--json]
//!                                      guarded cache deletion / stale-entry GC,
//!                                      optionally narrowed to one kind
//! pra bench-delta <prev> <cur> [--gate R]
//!                                      per-phase delta between two bench.json;
//!                                      --gate fails on >Rx phase regressions
//! pra serve [--addr A] [--workers N] [--max-batch B] [--queue-depth D]
//!           [--linger-ms L] [--sampled N] [--no-cache] [--once]
//!           [--max-conns C] [--deadline-ms D] [--shard N] [--epoch N]
//!           [--chaos SPEC]
//!                                      batched simulation service over TCP
//!                                      JSON-lines (DESIGN.md §10); --once
//!                                      honors the drain control request,
//!                                      --shard/--epoch identify the process
//!                                      inside a cluster (DESIGN.md §13),
//!                                      --chaos (or PRA_CHAOS) arms seeded
//!                                      fault injection (DESIGN.md §12)
//! pra route --shard ADDR [--shard ADDR ...] [--addr A] [--replicas K]
//!           [--probe-ms P] [--probe-deadline-ms D] [--seed S]
//!           [--max-conns C] [--once] [--chaos SPEC]
//!                                      consistent-hash front end over N shard
//!                                      servers (DESIGN.md §13): health-checked
//!                                      failover onto each key's replica set,
//!                                      drain propagation, exactly-once answers
//!                                      (--listen is an alias for --addr)
//! pra ctl <stats | drain> [--addr A]   send a control request to a running
//!                                      server or router and print its answer
//! pra bench-serve [--addr A] [--requests N] [--batch W] [--seed S]
//!                 [--allow-shed] [--v2] [--retries R] [--backoff-ms B]
//!                 [--cluster T1,T2,... [--sampled N] [--no-cache]
//!                  [--max-conns C] [--deadline-ms D] [--chaos SPEC]]
//!                                      closed-loop load generator: p50/p95/p99
//!                                      + throughput into bench.json, response
//!                                      digest into serve_responses.sha256;
//!                                      --v2 negotiates streaming protocol v2
//!                                      and reports time-to-first-layer-frame;
//!                                      --retries re-issues retryable sheds
//!                                      with jittered exponential backoff;
//!                                      --cluster boots an in-process cluster
//!                                      per listed shard count, benches through
//!                                      the router, and fails unless every
//!                                      topology serves byte-identical bits
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use pra_bench::sweep::{self, SweepConfig};
use pra_bench::Table;
use pragmatic::core::{Fidelity, PraConfig};
use pragmatic::engines::{dadn, potential, stripes};
use pragmatic::sim::{capacity, ChipConfig};
use pragmatic::workloads::cache::{self, ArtifactKind, ArtifactStore, Cache};
use pragmatic::workloads::{Network, NetworkWorkload, Representation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("networks") => {
            for net in Network::ALL {
                println!(
                    "{:8} {:>2} conv layers, {:>6.1}M multiplications",
                    net.name(),
                    net.conv_layers().len(),
                    net.total_multiplications() as f64 / 1e6
                );
            }
            Ok(())
        }
        Some("potential") => parse_network(&args, 1).map(cmd_potential),
        Some("speedup") => parse_network(&args, 1).map(|n| {
            let repr = if args.iter().any(|a| a == "--quant8") {
                Representation::Quant8
            } else {
                Representation::Fixed16
            };
            cmd_speedup(n, repr)
        }),
        Some("capacity") => parse_network(&args, 1).map(cmd_capacity),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("bench-delta") => cmd_bench_delta(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("ctl") => cmd_ctl(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: pra <networks | potential NET | speedup NET [--quant8] | capacity NET | sweep [--serial] [--full] [--sampled N] [--seed N] [--no-cache] | cache <stats [--kind K] [--json] | clear [--stale] [--kind K] [--json]> | bench-delta PREV CUR [--gate R] | serve [--addr A] [--workers N] [--max-batch B] [--queue-depth D] [--linger-ms L] [--sampled N] [--no-cache] [--once] [--max-conns C] [--deadline-ms D] [--shard N] [--epoch N] [--chaos SPEC] | route --shard ADDR [--shard ADDR ...] [--addr A] [--replicas K] [--probe-ms P] [--probe-deadline-ms D] [--seed S] [--max-conns C] [--once] [--chaos SPEC] | ctl <stats | drain> [--addr A] | bench-serve [--addr A] [--requests N] [--batch W] [--seed S] [--allow-shed] [--v2] [--retries R] [--backoff-ms B] [--cluster T1,T2,... [--sampled N] [--no-cache] [--max-conns C] [--deadline-ms D] [--chaos SPEC]]>\n\
                     networks: Alexnet NiN Google VGGM VGGS VGG19";

fn parse_network(args: &[String], idx: usize) -> Result<Network, String> {
    let name = args.get(idx).ok_or(USAGE)?;
    Network::ALL
        .into_iter()
        .find(|n| n.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown network '{name}'\n{USAGE}"))
}

fn cmd_potential(net: Network) {
    let w = NetworkWorkload::build(net, Representation::Fixed16, 0x90AD);
    let t = potential::network_terms(&w).normalized();
    println!("{net}: equivalent terms relative to DaDN (lower is better)");
    println!("  ZN (ideal zero skip)  {:>6.1}%", 100.0 * t.zn);
    println!("  CVN (Cnvlutin)        {:>6.1}%", 100.0 * t.cvn);
    println!("  Stripes               {:>6.1}%", 100.0 * t.stripes);
    println!("  PRA-fp16              {:>6.1}%", 100.0 * t.pra);
    println!("  PRA-red               {:>6.1}%", 100.0 * t.pra_red);
    println!("  PRA-CSD (extension)   {:>6.1}%", 100.0 * t.pra_csd);
}

fn cmd_speedup(net: Network, repr: Representation) {
    let chip = ChipConfig::dadn();
    let w = NetworkWorkload::build(net, repr, 0x90AD);
    let base = dadn::run(&chip, &w);
    let fid = pra_bench::fidelity();
    println!("{net} ({repr}): speedup over the bit-parallel baseline");
    println!("  Stripes    {:>5.2}x", stripes::run(&chip, &w).speedup_over(&base));
    for cfg in [
        PraConfig::two_stage(2, repr).with_fidelity(fid),
        PraConfig::single_stage(repr).with_fidelity(fid),
        PraConfig::per_column(1, repr).with_fidelity(fid),
    ] {
        println!(
            "  {:10} {:>5.2}x",
            cfg.label(),
            pragmatic::core::run(&cfg, &w).speedup_over(&base)
        );
    }
}

/// `pra sweep [--serial] [--full] [--sampled N] [--seed N]`: every
/// network x engine x representation, fanned out over the thread pool,
/// full fidelity by default (`--sampled N` or the `PRA_BENCH_PALLETS`
/// escape hatch trade accuracy for time), with the consolidated CSV and
/// the machine-readable timing report (`bench.json`) dropped under
/// `target/pra-reports/`.
fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let mut cfg = SweepConfig::full();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serial" => cfg.parallel = false,
            "--full" => cfg.fidelity = Fidelity::Full,
            "--sampled" => {
                let v = it.next().ok_or("--sampled needs a pallet count")?;
                let n: usize = v.parse().map_err(|e| format!("invalid --sampled '{v}': {e}"))?;
                cfg.fidelity = Fidelity::Sampled { max_pallets: n.max(1) };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = parse_seed(v)?;
            }
            "--no-cache" => {
                cfg.store = ArtifactStore::at_default().no_disk();
                // Also disable the process-wide default so no artifact
                // (workload, traffic, or encoded) is read or published
                // this run.
                cache::set_enabled(false);
            }
            other => {
                return Err(unknown_flag(
                    "sweep",
                    other,
                    &["--serial", "--full", "--sampled", "--seed", "--no-cache"],
                ))
            }
        }
    }

    if cfg.parallel {
        // The jobs are independent, CPU-bound simulations: one worker
        // per core. Oversubscribing a single-core machine only adds
        // context-switch and contention cost (measured ~12% of the
        // sweep), and results are thread-count-independent anyway. An
        // explicit RAYON_NUM_THREADS wins; the pool must be configured
        // before any other rayon call, since on upstream rayon the
        // first use freezes the global pool size.
        let workers = match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        let _ = rayon::ThreadPoolBuilder::new().num_threads(workers).build_global();
    }
    let mode = if cfg.parallel { "parallel" } else { "serial" };
    println!(
        "sweeping {} networks x {} representations x {} engines ({mode}, seed {:#x})",
        cfg.networks.len(),
        cfg.representations.len(),
        sweep::engine_labels(Representation::Fixed16).len(),
        cfg.seed,
    );
    let out = sweep::run_sweep(&cfg);

    let mut table = Table::new(sweep::CSV_HEADER);
    for row in sweep::csv_rows(&out.rows) {
        table.row(row);
    }
    table.print("Sweep: cycles and speedup over DaDN");

    let mut geo = Table::new(["repr", "engine", "geomean speedup"]);
    for (repr, engine, g) in sweep::geomean_summary(&out.rows) {
        geo.row([repr, engine, format!("{g:.2}x")]);
    }
    geo.print("Cross-network geometric means");

    let mut timing =
        Table::new(["job", "repr", "gen ms", "wall ms", "cache", "encoded", "traffic"]);
    for t in &out.timings {
        timing.row([
            t.network.clone(),
            t.repr.clone(),
            format!("{:.1}", t.gen_ms),
            format!("{:.1}", t.wall_ms),
            t.cache.clone(),
            t.encoded.clone(),
            t.traffic.clone(),
        ]);
    }
    timing.print("Per-job wall-clock");

    match sweep::write_report(&out.rows) {
        Some(path) => println!("consolidated report: {}", path.display()),
        None => eprintln!("warning: consolidated report could not be written"),
    }
    match sweep::write_bench_json(&out) {
        Some(path) => println!("timing report: {}", path.display()),
        None => eprintln!("warning: timing report could not be written"),
    }
    let hits = out.timings.iter().filter(|t| t.cache == "hit").count();
    let encoded_hits = out.timings.iter().filter(|t| t.encoded == "hit").count();
    println!(
        "{} jobs on {} worker thread(s) in {:.1}s ({} workload cache hit(s), \
         {} encoded-artifact hit(s))",
        out.jobs,
        out.threads_used,
        out.total_wall_ms / 1e3,
        hits,
        encoded_hits,
    );
    Ok(())
}

/// The current artifact version each entry kind publishes under — the
/// `(kind tag, version)` pairs `pra cache` reports and GCs against.
fn current_versions() -> [(&'static str, u32); 3] {
    [
        (cache::WORKLOAD_KIND, cache::GENERATOR_VERSION),
        (pragmatic::core::TRAFFIC_KIND, pragmatic::core::TRAFFIC_VERSION),
        (pragmatic::core::ENCODED_KIND, pragmatic::core::ENCODER_VERSION),
    ]
}

/// Escapes a string as a JSON string literal (same rules as the lint
/// and bench reporters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `pra cache stats|clear [--stale] [--kind K] [--json]`: inspect or
/// prune the content-addressed artifact cache (workload, traffic, and
/// encoded tiers). Deletion is guarded — only regular files matching
/// the cache naming scheme are ever removed, and symlinks are never
/// followed, so a misconfigured `PRA_CACHE_DIR` cannot lose user data.
/// `--kind` narrows either subcommand to one artifact kind (by name or
/// tag: `workload`/`wl`, `traffic`/`tr`, `encoded`/`en`); `--json`
/// emits a stable machine-readable document in the same shape
/// conventions as `pra-lint --json` (fixed key order, 2-space indent).
fn cmd_cache(args: &[String]) -> Result<(), String> {
    let sub = args.first().map(String::as_str);
    let mut stale_only = false;
    let mut kind: Option<ArtifactKind> = None;
    let mut json = false;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stale" => stale_only = true,
            "--kind" => {
                let v = it.next().ok_or("--kind needs workload | traffic | encoded")?;
                kind = Some(ArtifactKind::parse(v).ok_or_else(|| {
                    format!("unknown --kind '{v}' (expected workload | traffic | encoded)")
                })?);
            }
            "--json" => json = true,
            other => {
                let flags: &[&str] = if sub == Some("clear") {
                    &["--stale", "--kind", "--json"]
                } else {
                    &["--kind", "--json"]
                };
                return Err(unknown_flag("cache", other, flags));
            }
        }
    }
    let cache = Cache::at_default();
    match sub {
        Some("stats") => {
            let mut s = cache.stats();
            if let Some(k) = kind {
                // The totals follow the filter so the summary line (and
                // the JSON document) stay internally consistent.
                s.kinds.retain(|ks| ks.kind == k.tag());
                s.entries = s.kinds.iter().map(|ks| ks.entries).sum();
                s.bytes = s.kinds.iter().map(|ks| ks.bytes).sum();
            }
            if json {
                let versions = current_versions()
                    .iter()
                    .map(|(tag, v)| format!("{{\"kind\": {}, \"version\": {v}}}", json_escape(tag)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut kinds = String::new();
                for (i, ks) in s.kinds.iter().enumerate() {
                    if i > 0 {
                        kinds.push(',');
                    }
                    let per_version = ks
                        .versions
                        .iter()
                        .map(|(v, n)| format!("{{\"version\": {v}, \"entries\": {n}}}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    kinds.push_str(&format!(
                        "\n    {{\"kind\": {}, \"entries\": {}, \"bytes\": {}, \
                         \"versions\": [{per_version}]}}",
                        json_escape(&ks.kind),
                        ks.entries,
                        ks.bytes,
                    ));
                }
                if !s.kinds.is_empty() {
                    kinds.push_str("\n  ");
                }
                println!(
                    "{{\n  \"dir\": {},\n  \"current_versions\": [{versions}],\n  \
                     \"kinds\": [{kinds}],\n  \"entries\": {},\n  \"bytes\": {},\n  \
                     \"temps\": {},\n  \"foreign\": {}\n}}",
                    json_escape(&s.dir.display().to_string()),
                    s.entries,
                    s.bytes,
                    s.temps,
                    s.foreign,
                );
                return Ok(());
            }
            println!("cache directory: {}", s.dir.display());
            println!(
                "current versions: workloads v{} (kind wl), traffic v{} (kind tr), \
                 encoded v{} (kind en)",
                cache::GENERATOR_VERSION,
                pragmatic::core::TRAFFIC_VERSION,
                pragmatic::core::ENCODER_VERSION,
            );
            if s.entries == 0 && s.temps == 0 {
                println!("empty (a cold `pra sweep` will populate it)");
                return Ok(());
            }
            let mut t = Table::new(["kind", "entries", "MB", "versions"]);
            for k in &s.kinds {
                let versions = k
                    .versions
                    .iter()
                    .map(|(v, n)| format!("v{v}: {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                t.row([
                    k.kind.clone(),
                    k.entries.to_string(),
                    format!("{:.1}", k.bytes as f64 / 1e6),
                    versions,
                ]);
            }
            t.print("Cache contents");
            println!(
                "{} entries, {:.1} MB total; {} temp file(s); {} foreign file(s) (never touched)",
                s.entries,
                s.bytes as f64 / 1e6,
                s.temps,
                s.foreign,
            );
            Ok(())
        }
        Some("clear") => {
            let report = match (stale_only, kind) {
                // Stale GC over one kind's current version — entries of
                // every other kind are deliberately kept.
                (true, Some(k)) => {
                    let pair = current_versions()
                        .into_iter()
                        .find(|(tag, _)| *tag == k.tag())
                        .unwrap_or_else(|| unreachable!("every ArtifactKind has a version"));
                    cache.gc_stale(&[pair]).map_err(|e| e.to_string())?
                }
                (true, None) => cache.gc_stale(&current_versions()).map_err(|e| e.to_string())?,
                (false, Some(k)) => cache.clear_kind(k.tag()).map_err(|e| e.to_string())?,
                (false, None) => cache.clear().map_err(|e| e.to_string())?,
            };
            if json {
                println!(
                    "{{\n  \"dir\": {},\n  \"removed\": {},\n  \"freed_bytes\": {},\n  \
                     \"kept\": {},\n  \"skipped\": {}\n}}",
                    json_escape(&cache.dir().display().to_string()),
                    report.removed,
                    report.freed_bytes,
                    report.kept,
                    report.skipped,
                );
                return Ok(());
            }
            println!(
                "{}: removed {} entr{} ({:.1} MB), kept {}, skipped {} non-cache file(s)",
                cache.dir().display(),
                report.removed,
                if report.removed == 1 { "y" } else { "ies" },
                report.freed_bytes as f64 / 1e6,
                report.kept,
                report.skipped,
            );
            Ok(())
        }
        _ => Err(format!(
            "cache needs a subcommand: stats [--kind K] [--json] | \
             clear [--stale] [--kind K] [--json]\n{USAGE}"
        )),
    }
}

/// `pra bench-delta <prev.json> <cur.json> [--gate R]`: per-phase
/// timing delta between two `bench.json` reports (CI runs this against
/// the previous main run, and between the cold/warm halves of the
/// identity gate). With `--gate R` the command also fails when any
/// gated phase total regressed beyond `R`x (see
/// [`pra_bench::sweep::bench_gate`] for the noise guardrails); CI skips
/// the gate when the commit message carries `[bench-rebaseline]`.
fn cmd_bench_delta(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut gate: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => {
                let v = it.next().ok_or("--gate needs a max ratio, e.g. 1.25")?;
                let r: f64 = v.parse().map_err(|e| format!("invalid --gate '{v}': {e}"))?;
                if r < 1.0 || r.is_nan() {
                    return Err(format!("--gate ratio must be >= 1.0, got {v}"));
                }
                gate = Some(r);
            }
            _ => paths.push(arg),
        }
    }
    let [prev_path, cur_path] = paths[..] else {
        return Err(format!("bench-delta needs two bench.json paths\n{USAGE}"));
    };
    let read =
        |p: &String| std::fs::read_to_string(p).map_err(|e| format!("could not read {p}: {e}"));
    let (prev, cur) = (read(prev_path)?, read(cur_path)?);
    let delta = pra_bench::sweep::bench_delta(&prev, &cur)?;
    println!("=== Per-phase delta: {prev_path} -> {cur_path} ===");
    println!("{delta}");
    if let Some(max_ratio) = gate {
        let violations = pra_bench::sweep::bench_gate(&prev, &cur, max_ratio)?;
        if !violations.is_empty() {
            return Err(format!(
                "bench gate failed ({} violation(s)):\n  {}\n(rebaseline intentionally with \
                 [bench-rebaseline] in the commit message)",
                violations.len(),
                violations.join("\n  ")
            ));
        }
        println!("bench gate passed (no phase beyond {max_ratio:.2}x)");
    }
    Ok(())
}

/// `pra serve`: the batched simulation service (DESIGN.md §10) —
/// JSON-lines over TCP, admission-controlled queue, coalescing worker
/// pool over the shared-artifact batch path.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pragmatic::serve::ServeConfig;
    let mut addr = "127.0.0.1:9100".to_string();
    let mut cfg = ServeConfig::default();
    let mut once = false;
    let mut chaos_spec: Option<String> = None;
    let mut epoch: Option<u64> = None;
    let mut shard_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--workers" => cfg.workers = flag_num(&mut it, "--workers")?.max(1),
            "--max-batch" => cfg.max_batch = flag_num(&mut it, "--max-batch")?.max(1),
            "--queue-depth" => cfg.queue_depth = flag_num(&mut it, "--queue-depth")?.max(1),
            "--linger-ms" => {
                cfg.linger =
                    std::time::Duration::from_millis(flag_num(&mut it, "--linger-ms")? as u64)
            }
            "--sampled" => {
                cfg.fidelity =
                    Fidelity::Sampled { max_pallets: flag_num(&mut it, "--sampled")?.max(1) }
            }
            "--full" => cfg.fidelity = Fidelity::Full,
            "--no-cache" => {
                cfg.store = ArtifactStore::at_default().no_disk();
                cache::set_enabled(false);
            }
            "--once" => once = true,
            "--max-conns" => cfg.max_connections = flag_num(&mut it, "--max-conns")?.max(1),
            "--deadline-ms" => {
                cfg.deadline = Some(std::time::Duration::from_millis(
                    flag_num(&mut it, "--deadline-ms")?.max(1) as u64,
                ))
            }
            "--shard" => {
                cfg.shard = flag_num(&mut it, "--shard")? as u64;
                shard_set = true;
            }
            "--epoch" => epoch = Some(flag_num(&mut it, "--epoch")? as u64),
            "--chaos" => {
                chaos_spec = Some(
                    it.next().ok_or("--chaos needs a spec, e.g. seed=7,worker-panic=0.05")?.clone(),
                )
            }
            other => {
                return Err(unknown_flag(
                    "serve",
                    other,
                    &[
                        "--addr",
                        "--workers",
                        "--max-batch",
                        "--queue-depth",
                        "--linger-ms",
                        "--sampled",
                        "--full",
                        "--no-cache",
                        "--once",
                        "--max-conns",
                        "--deadline-ms",
                        "--shard",
                        "--epoch",
                        "--chaos",
                    ],
                ))
            }
        }
    }
    // A cluster member needs a nonzero boot epoch so the router's
    // restart detection is well-defined; the pid is a fine default —
    // any value that changes across restarts works. Standalone servers
    // keep epoch 0 unless asked otherwise.
    if let Some(e) = epoch {
        cfg.epoch = e;
    } else if shard_set {
        cfg.epoch = u64::from(std::process::id()).max(1);
    }
    // Fault injection: an explicit --chaos wins over the PRA_CHAOS
    // environment spec; with neither, the chaos layer stays a no-op.
    match &chaos_spec {
        Some(spec) => pragmatic::chaos::arm_spec(spec).map_err(|e| format!("--chaos: {e}"))?,
        None => {
            pragmatic::chaos::arm_from_env().map_err(|e| format!("PRA_CHAOS: {e}"))?;
        }
    }
    if let Some(plan) = pragmatic::chaos::current() {
        println!("pra-serve CHAOS ARMED: {}", plan.summary());
    }
    let server = pragmatic::serve::Server::bind(&addr, cfg.clone())
        .map_err(|e| format!("could not bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "pra-serve listening on {bound} ({} workers, max batch {}, queue depth {}, linger {:?}, \
         cache {}, max conns {}, deadline {}, {})",
        cfg.workers,
        cfg.max_batch,
        cfg.queue_depth,
        cfg.linger,
        if cfg.store.dir().is_some() { "on" } else { "off" },
        cfg.max_connections,
        cfg.deadline.map_or_else(|| "none".to_string(), |d| format!("{d:?}")),
        if once { "once (drain honored)" } else { "always-on" },
    );
    if once {
        server.run_once().map_err(|e| format!("serve: {e}"))?;
        println!("pra-serve drained and stopped");
        Ok(())
    } else {
        server.run().map_err(|e| format!("serve: {e}"))
    }
}

/// `pra route`: the consistent-hash front end (DESIGN.md §13) — hashes
/// each request's workload key onto a replica set of shard servers,
/// health-checks the shards with seeded stats heartbeats, and fails
/// in-flight work over to the fallback replica when a shard dies.
fn cmd_route(args: &[String]) -> Result<(), String> {
    use pragmatic::router::{Router, RouterConfig};
    let mut listen = "127.0.0.1:9200".to_string();
    let mut cfg = RouterConfig::default();
    let mut once = false;
    let mut chaos_spec: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // `--addr` is the canonical listen-address flag shared with
            // `serve` and `bench-serve`; `--listen` stays as an alias.
            "--addr" | "--listen" => listen = it.next().ok_or("--addr needs host:port")?.clone(),
            "--shard" => cfg.shards.push(it.next().ok_or("--shard needs host:port")?.clone()),
            "--replicas" => cfg.replicas = flag_num(&mut it, "--replicas")?.max(1),
            "--probe-ms" => {
                cfg.probe.interval =
                    std::time::Duration::from_millis(flag_num(&mut it, "--probe-ms")?.max(1) as u64)
            }
            "--probe-deadline-ms" => {
                cfg.probe.deadline = std::time::Duration::from_millis(
                    flag_num(&mut it, "--probe-deadline-ms")?.max(1) as u64,
                )
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.probe.seed = parse_seed(v)?;
            }
            "--max-conns" => cfg.max_connections = flag_num(&mut it, "--max-conns")?.max(1),
            "--once" => once = true,
            "--chaos" => {
                chaos_spec = Some(
                    it.next().ok_or("--chaos needs a spec, e.g. seed=7,shard-kill=0.5")?.clone(),
                )
            }
            other => {
                return Err(unknown_flag(
                    "route",
                    other,
                    &[
                        "--addr",
                        "--listen",
                        "--shard",
                        "--replicas",
                        "--probe-ms",
                        "--probe-deadline-ms",
                        "--seed",
                        "--max-conns",
                        "--once",
                        "--chaos",
                    ],
                ))
            }
        }
    }
    if cfg.shards.is_empty() {
        return Err(format!("route needs at least one --shard host:port\n{USAGE}"));
    }
    match &chaos_spec {
        Some(spec) => pragmatic::chaos::arm_spec(spec).map_err(|e| format!("--chaos: {e}"))?,
        None => {
            pragmatic::chaos::arm_from_env().map_err(|e| format!("PRA_CHAOS: {e}"))?;
        }
    }
    if let Some(plan) = pragmatic::chaos::current() {
        println!("pra-route CHAOS ARMED: {}", plan.summary());
    }
    let router =
        Router::bind(&listen, cfg.clone()).map_err(|e| format!("could not bind {listen}: {e}"))?;
    let bound = router.local_addr().map_err(|e| e.to_string())?;
    println!(
        "pra-route listening on {bound} ({} shard(s), {} replica(s)/key, probe every {:?} with \
         deadline {:?}, max conns {}, {})",
        cfg.shards.len(),
        cfg.replicas.min(cfg.shards.len()),
        cfg.probe.interval,
        cfg.probe.deadline,
        cfg.max_connections,
        if once { "once (drain honored)" } else { "always-on" },
    );
    if once {
        router.run_once().map_err(|e| format!("route: {e}"))?;
        println!("pra-route drained and stopped");
        Ok(())
    } else {
        router.run().map_err(|e| format!("route: {e}"))
    }
}

/// `pra ctl stats|drain [--addr A]`: send one control request over the
/// serving wire and print the server's answer line. `drain` asks a
/// `--once` server to stop accepting, finish open connections, and
/// drain its queue (an always-on server refuses it). Pointed at a
/// router, `stats` prints the router counters instead and `drain`
/// propagates to every shard.
fn cmd_ctl(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let verb = match args.first().map(String::as_str) {
        Some("stats") => pragmatic::serve::ControlRequest::Stats,
        Some("drain") => pragmatic::serve::ControlRequest::Drain,
        _ => return Err(format!("ctl needs a subcommand: stats | drain\n{USAGE}")),
    };
    let mut addr = "127.0.0.1:9100".to_string();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
            other => return Err(unknown_flag("ctl", other, &["--addr"])),
        }
    }
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("could not connect to {addr}: {e}"))?;
    stream
        .write_all((verb.to_json_line() + "\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send control request: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("read control response: {e}"))?;
    let line = line.trim();
    if line.is_empty() {
        return Err("server closed the connection without answering".to_string());
    }
    println!("{line}");
    if let Ok(snap) = pragmatic::serve::StatsSnapshot::parse(line) {
        let mut t = Table::new(["counter", "value"]);
        t.row(["accepted", &snap.accepted.to_string()]);
        t.row(["answered", &snap.answered.to_string()]);
        t.row(["shed", &snap.shed.to_string()]);
        t.row(["batches", &snap.batches.to_string()]);
        t.row(["pool hits", &snap.pool_hits.to_string()]);
        t.row(["live connections", &snap.live_connections.to_string()]);
        t.row(["connections shed", &snap.connections_shed.to_string()]);
        t.row(["worker restarts", &snap.worker_restarts.to_string()]);
        t.row(["deadline expired", &snap.deadline_expired.to_string()]);
        t.row(["encode ms", &snap.encode_ms.to_string()]);
        t.row(["encoded hits", &snap.encoded_hits.to_string()]);
        t.row(["shard", &snap.shard.to_string()]);
        t.row(["epoch", &snap.epoch.to_string()]);
        t.print("Service counters");
    } else if line.contains("\"status\": \"router_stats\"") {
        let mut t = Table::new(["counter", "value"]);
        for key in [
            "shards",
            "up",
            "degraded",
            "down",
            "routed",
            "answered",
            "failovers",
            "no_shard",
            "stale_drops",
            "restarts_seen",
            "connections_shed",
        ] {
            if let Some(v) = pragmatic::serve::codec::json_num_field(line, key) {
                t.row([key, &format!("{}", v as u64)]);
            }
        }
        t.print("Router counters");
    } else if line.contains("\"error\"") {
        return Err("control request refused (see line above)".to_string());
    }
    Ok(())
}

/// `pra bench-serve`: closed-loop load generator against a running
/// `pra serve`, reporting latency percentiles and throughput into
/// `bench.json` and the combined response digest into
/// `serve_responses.sha256`. Fails when any request was shed (CI's
/// zero-shed gate) unless `--allow-shed`.
fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    use pragmatic::serve::bench;
    let mut cfg = pragmatic::serve::BenchConfig::default();
    let mut allow_shed = false;
    let mut topologies: Option<Vec<usize>> = None;
    let mut serve_cfg = pragmatic::serve::ServeConfig::default();
    let mut chaos_spec: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--requests" => cfg.requests = flag_num(&mut it, "--requests")?.max(1),
            "--batch" => cfg.window = flag_num(&mut it, "--batch")?.max(1),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = parse_seed(v)?;
            }
            "--allow-shed" => allow_shed = true,
            "--v2" => cfg.v2 = true,
            "--retries" => cfg.retries = flag_num(&mut it, "--retries")? as u32,
            "--backoff-ms" => cfg.backoff_ms = flag_num(&mut it, "--backoff-ms")?.max(1) as u64,
            "--cluster" => {
                let v = it.next().ok_or("--cluster needs a shard-count list, e.g. 1,2,4")?;
                let tops = v
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("invalid --cluster '{v}': {e}"))?;
                if tops.is_empty() || tops.contains(&0) {
                    return Err(format!("--cluster needs nonzero shard counts, got '{v}'"));
                }
                topologies = Some(tops);
            }
            "--sampled" => {
                serve_cfg.fidelity =
                    Fidelity::Sampled { max_pallets: flag_num(&mut it, "--sampled")?.max(1) }
            }
            "--no-cache" => {
                serve_cfg.store = ArtifactStore::at_default().no_disk();
                cache::set_enabled(false);
            }
            // Shared serve knobs, applied to the shards a --cluster run
            // boots; same names and parsing as `pra serve`.
            "--max-conns" => serve_cfg.max_connections = flag_num(&mut it, "--max-conns")?.max(1),
            "--deadline-ms" => {
                serve_cfg.deadline = Some(std::time::Duration::from_millis(
                    flag_num(&mut it, "--deadline-ms")?.max(1) as u64,
                ))
            }
            "--chaos" => {
                chaos_spec = Some(
                    it.next().ok_or("--chaos needs a spec, e.g. seed=7,shard-kill=0.5")?.clone(),
                )
            }
            other => {
                return Err(unknown_flag(
                    "bench-serve",
                    other,
                    &[
                        "--addr",
                        "--requests",
                        "--batch",
                        "--seed",
                        "--allow-shed",
                        "--v2",
                        "--retries",
                        "--backoff-ms",
                        "--cluster",
                        "--sampled",
                        "--no-cache",
                        "--max-conns",
                        "--deadline-ms",
                        "--chaos",
                    ],
                ))
            }
        }
    }
    if let Some(topologies) = topologies {
        return cmd_bench_cluster(&topologies, &cfg, serve_cfg, chaos_spec.as_deref(), allow_shed);
    }
    if chaos_spec.is_some() {
        return Err("--chaos only applies to --cluster runs (arm the server instead)".to_string());
    }
    println!(
        "bench-serve: {} requests, window {}, retries {}, against {}",
        cfg.requests, cfg.window, cfg.retries, cfg.addr
    );
    let (metrics, _responses) = bench::run_bench(&cfg)?;
    bench::metrics_table(&metrics).print("Serving latency (closed loop)");
    match bench::write_serve_report(&metrics) {
        Some(path) => println!("serve metrics merged into: {}", path.display()),
        None => eprintln!("warning: serve metrics could not be written"),
    }
    if metrics.errors > 0 {
        return Err(format!("{} request(s) answered with errors", metrics.errors));
    }
    if metrics.shed > 0 && !allow_shed {
        return Err(format!(
            "{} request(s) shed (queue depth too small for the offered load); \
             pass --allow-shed to tolerate",
            metrics.shed
        ));
    }
    Ok(())
}

/// `pra bench-serve --cluster T1,T2,...`: boots an in-process cluster
/// (router + shard servers, DESIGN.md §13) per listed shard count, runs
/// the same closed-loop bench through the router each time, and fails
/// unless every topology answers byte-identical response digests. With
/// `--chaos`, the fault plan is armed for every multi-shard topology
/// (see [`pragmatic::router::cluster::run_cluster_bench`]).
fn cmd_bench_cluster(
    topologies: &[usize],
    bench_cfg: &pragmatic::serve::BenchConfig,
    serve_cfg: pragmatic::serve::ServeConfig,
    chaos_spec: Option<&str>,
    allow_shed: bool,
) -> Result<(), String> {
    use pragmatic::router::cluster;
    let cluster_cfg = pragmatic::router::ClusterConfig { serve: serve_cfg, ..Default::default() };
    println!(
        "bench-serve --cluster: {} requests, window {}, retries {}, topologies {topologies:?}{}",
        bench_cfg.requests,
        bench_cfg.window,
        bench_cfg.retries,
        chaos_spec.map_or_else(String::new, |s| format!(", chaos '{s}' on multi-shard runs")),
    );
    let rows = cluster::run_cluster_bench(topologies, bench_cfg, &cluster_cfg, chaos_spec)?;
    cluster::cluster_table(&rows).print("Cluster scaling (closed loop through the router)");
    match cluster::write_cluster_report(&rows) {
        Some(path) => println!("cluster metrics merged into: {}", path.display()),
        None => eprintln!("warning: cluster metrics could not be written"),
    }
    for r in &rows {
        if r.metrics.errors > 0 {
            return Err(format!(
                "{} shard(s): {} request(s) answered with errors",
                r.shards, r.metrics.errors
            ));
        }
        if r.metrics.shed > 0 && !allow_shed {
            return Err(format!(
                "{} shard(s): {} request(s) shed; raise --retries or pass --allow-shed",
                r.shards, r.metrics.shed
            ));
        }
    }
    if !cluster::digests_match(&rows) {
        return Err(
            "cluster digest mismatch: topologies disagree on response bytes (the router must \
             be byte-transparent)"
                .to_string(),
        );
    }
    println!("cluster digests identical across {} topolog(ies)", rows.len());
    Ok(())
}

/// Parses the numeric value following a `--flag` in an argument iterator.
fn flag_num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
    v.parse().map_err(|e| format!("invalid {name} '{v}': {e}"))
}

/// Plain dynamic-programming edit distance; inputs are flag names, so
/// quadratic cost is irrelevant.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The shared unknown-flag error: names the closest valid flag when one
/// is plausibly intended (edit distance ≤ 3), so `--deadline` points at
/// `--deadline-ms` instead of dumping the whole usage wall alone.
fn unknown_flag(cmd: &str, flag: &str, valid: &[&str]) -> String {
    let best = valid.iter().map(|v| (edit_distance(flag, v), *v)).min().filter(|&(d, _)| d <= 3);
    match best {
        Some((_, v)) => format!("unknown {cmd} flag '{flag}' (did you mean '{v}'?)\n{USAGE}"),
        None => format!("unknown {cmd} flag '{flag}'\n{USAGE}"),
    }
}

fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        v.replace('_', "").parse()
    };
    parsed.map_err(|e| format!("invalid --seed '{v}': {e}"))
}

fn cmd_capacity(net: Network) {
    let chip = ChipConfig::dadn();
    println!("{net}: on-chip memory audit (NM 4 MB, SB 16 x 2 MB)");
    println!(
        "{:18} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "layer", "in MB", "out MB", "syn MB", "NM ok", "SB ok"
    );
    for spec in net.conv_layers() {
        let f = capacity::layer_footprint(&chip, &spec, 16);
        println!(
            "{:18} {:>10.2} {:>10.2} {:>10.2} {:>6} {:>6}",
            spec.name(),
            f.input_neuron_bytes as f64 / 1e6,
            f.output_neuron_bytes as f64 / 1e6,
            f.synapse_bytes as f64 / 1e6,
            if f.fits_nm { "yes" } else { "NO" },
            if f.fits_sb { "yes" } else { "NO" },
        );
    }
}
