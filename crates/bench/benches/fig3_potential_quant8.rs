//! Figure 3 — convolutional-layer computational demands with the 8-bit
//! quantized baseline: equivalent terms relative to the bit-parallel
//! engine for ideal zero skipping and ideal Pragmatic. Paper averages:
//! zero skipping removes ~30% of terms (ZN ≈ 70%), PRA removes up to 71%
//! (PRA ≈ 29%).

use pra_bench::{build_workloads, pct, per_network, vs, Table};
use pra_engines::potential;
use pra_sim::geomean;
use pra_workloads::Representation;

fn main() {
    let workloads = build_workloads(Representation::Quant8);
    let terms = per_network(&workloads, potential::network_terms);

    let mut table = Table::new(["network", "ZN", "PRA"]);
    let (mut zs, mut ps) = (vec![], vec![]);
    for (w, t) in workloads.iter().zip(&terms) {
        let n = t.normalized();
        zs.push(n.zn);
        ps.push(n.pra);
        table.row([w.network.name().to_string(), pct(n.zn), pct(n.pra)]);
    }
    table.row([
        "geomean".to_string(),
        vs(&pct(geomean(&zs)), "70.0%"),
        vs(&pct(geomean(&ps)), "29.0%"),
    ]);
    table.print_and_save(
        "Figure 3: terms relative to the 8-bit bit-parallel baseline, measured (paper)",
        "fig3_potential_quant8",
    );
}
