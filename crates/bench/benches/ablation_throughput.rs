//! Ablation A5 — throughput-boosted PIPs: consume 2 oneffsets per lane
//! per cycle through replicated first-stage shifters and a 32-input adder
//! tree. This is the natural next step after CSD encoding (follow-up
//! designs in the Stripes/Pragmatic line took it); the question is whether
//! the extra datapath pays for itself in performance per area.

use pra_bench::{build_workloads, fidelity, per_network, times, Table};
use pra_core::PraConfig;
use pra_energy::chip::{chip_area_mm2, chip_power_w};
use pra_energy::unit::Design;
use pra_engines::dadn;
use pra_sim::{geomean, ChipConfig};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let x1 = PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity());
        let x2 = PraConfig { oneffsets_per_cycle: 2, ..x1 };
        (pra_core::run(&x1, w).speedup_over(&base), pra_core::run(&x2, w).speedup_over(&base))
    });

    let mut table = Table::new(["network", "PRA-2b (x1)", "PRA-2b-x2"]);
    let (mut s1, mut s2) = (vec![], vec![]);
    for (w, (a, b)) in workloads.iter().zip(&rows) {
        s1.push(*a);
        s2.push(*b);
        table.row([w.network.name().to_string(), times(*a), times(*b)]);
    }
    table.row(["geomean".to_string(), times(geomean(&s1)), times(geomean(&s2))]);
    table.print("Ablation: one vs two oneffsets per lane per cycle, pallet sync");

    let a1 = chip_area_mm2(Design::Pra { first_stage_bits: 2, ssrs: 0 });
    let a2 = chip_area_mm2(Design::PraBoosted { first_stage_bits: 2, per_cycle: 2 });
    let p1 = chip_power_w(Design::Pra { first_stage_bits: 2, ssrs: 0 });
    let p2 = chip_power_w(Design::PraBoosted { first_stage_bits: 2, per_cycle: 2 });
    let g1 = geomean(&s1);
    let g2 = geomean(&s2);
    println!(
        "chip area: {a1:.0} -> {a2:.0} mm2 (+{:.0}%), power {p1:.1} -> {p2:.1} W (+{:.0}%)",
        100.0 * (a2 / a1 - 1.0),
        100.0 * (p2 / p1 - 1.0)
    );
    println!(
        "performance/area: {:.3} -> {:.3} (relative to DaDN-normalized area)",
        g1 / a1,
        g2 / a2
    );
    println!(
        "Doubling lane throughput buys ~{:.0}% performance for ~{:.0}% more\n\
         chip area — area-efficient in itself, but the one-SSR column-sync\n\
         option (+35% for ~1% area, Fig. 10) dominates it and should be\n\
         spent first; the two compose, which is the direction the follow-up\n\
         bit-serial designs took.",
        100.0 * (g2 / g1 - 1.0),
        100.0 * (a2 / a1 - 1.0)
    );
}
