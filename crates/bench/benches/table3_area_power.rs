//! Table III — area (unit and whole chip, mm²) and chip power (W) for
//! DaDN, Stripes and the pallet-synchronized PRA variants, from the
//! component-level 65 nm model (see `pra-energy`).

use pra_bench::{vs, Table};
use pra_energy::chip::{chip_area_mm2, chip_power_w, paper_chip_area_mm2, paper_chip_power_w};
use pra_energy::unit::{paper_unit_area_mm2, unit_area_mm2, Design};

fn main() {
    let designs: Vec<Design> = std::iter::once(Design::Dadn)
        .chain(std::iter::once(Design::Stripes))
        .chain((0..=4).map(|l| Design::Pra { first_stage_bits: l, ssrs: 0 }))
        .collect();

    let dadn_unit = unit_area_mm2(Design::Dadn);
    let dadn_area = chip_area_mm2(Design::Dadn);
    let dadn_power = chip_power_w(Design::Dadn);

    let mut table = Table::new([
        "design",
        "Area U.",
        "dArea U.",
        "Area T.",
        "dArea T.",
        "Power T.",
        "dPower T.",
    ]);
    for d in designs {
        let u = unit_area_mm2(d);
        let a = chip_area_mm2(d);
        let p = chip_power_w(d);
        table.row([
            d.label(),
            vs(&format!("{u:.2}"), &format!("{:.2}", paper_unit_area_mm2(d).unwrap())),
            format!("{:.2}", u / dadn_unit),
            vs(&format!("{a:.0}"), &format!("{:.0}", paper_chip_area_mm2(d).unwrap())),
            format!("{:.2}", a / dadn_area),
            vs(&format!("{p:.1}"), &format!("{:.1}", paper_chip_power_w(d).unwrap())),
            format!("{:.2}", p / dadn_power),
        ]);
    }
    table.print_and_save(
        "Table III: area [mm2] and power [W], pallet synchronization, measured (paper)",
        "table3_area_power",
    );
}
