//! Table II — per-layer neuron precision profiles.
//!
//! The paper takes these from the profiling methodology of Judd et al.
//! (its refs [2], [4]); here they are shipped as data and *validated* by
//! running this crate's implementation of the profiler over the generated
//! streams: the profiled window must recover each layer's configured
//! precision (its width, up to the magnitude-tolerance slack).

use pra_bench::{build_workloads, Table};
use pra_fixed::precision::profile_window_clipped;
use pra_workloads::{profiles, Representation};

fn main() {
    let workloads = build_workloads(Representation::Fixed16);
    let mut table = Table::new(["network", "Table II (paper)", "profiled on synthetic stream"]);
    for w in &workloads {
        let paper: Vec<String> =
            profiles::precisions(w.network).iter().map(u8::to_string).collect();
        let profiled: Vec<String> = w
            .layers
            .iter()
            .map(|l| {
                // Judd-style criterion: tolerate 1% magnitude loss from
                // suffix masking and clipping of 1% outlier values.
                let win = profile_window_clipped(l.neurons.as_slice(), 0.01, 0.01);
                win.width().to_string()
            })
            .collect();
        table.row([w.network.name().to_string(), paper.join("-"), profiled.join("-")]);
    }
    table.print_and_save("Table II: per-layer neuron precisions (bits)", "table2_precisions");
    println!(
        "The profiler recovers each layer's configured window width up to\n\
         the tolerance slack: suffix-noise bits below the window inflate the\n\
         width by up to two until the 1% magnitude budget absorbs them, and\n\
         rare prefix outliers are clipped by the 1% quantile."
    );
}
