//! Figure 12 — performance with the 8-bit quantized representation of
//! TensorFlow: Stripes, single-stage PRA (perPall), PRA-2b (perPall),
//! PRA-2b with one SSR, and the per-column ideal. Paper: PRA's benefits
//! persist under quantization, nearly 3.5x for PRA-2b-1R.

use pra_bench::{build_workloads, fidelity, per_network, times, vs, Table};
use pra_core::{PraConfig, SyncPolicy};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Quant8);

    // L = 3 covers all eight shift positions of an 8-bit neuron: the
    // quantized single-stage design.
    let configs: Vec<PraConfig> = [
        (3u8, SyncPolicy::PerPallet),
        (2, SyncPolicy::PerPallet),
        (2, SyncPolicy::PerColumn { ssrs: 1 }),
        (2, SyncPolicy::PerColumnIdeal),
    ]
    .into_iter()
    .map(|(l, sync)| PraConfig {
        sync,
        ..PraConfig::two_stage(l, Representation::Quant8).with_fidelity(fidelity())
    })
    .collect();

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let mut speedups = vec![stripes::run(&chip, w).speedup_over(&base)];
        for cfg in &configs {
            speedups.push(pra_core::run(cfg, w).speedup_over(&base));
        }
        speedups
    });

    let mut table = Table::new([
        "network",
        "Stripes",
        "perPall",
        "perPall-2bit",
        "perCol-1reg-2bit",
        "perCol-ideal-2bit",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 5];
    for (w, sp) in workloads.iter().zip(&rows) {
        for (c, v) in cols.iter_mut().zip(sp) {
            c.push(*v);
        }
        let is_vgg19 = w.network == pra_workloads::Network::Vgg19;
        table.row([
            w.network.name().to_string(),
            times(sp[0]),
            times(sp[1]),
            times(sp[2]),
            if is_vgg19 { vs(&times(sp[3]), "~3.5x") } else { times(sp[3]) },
            times(sp[4]),
        ]);
    }
    table.row([
        "geomean".to_string(),
        times(geomean(&cols[0])),
        times(geomean(&cols[1])),
        times(geomean(&cols[2])),
        times(geomean(&cols[3])),
        times(geomean(&cols[4])),
    ]);
    table.print_and_save(
        "Figure 12: speedup over the 8-bit bit-parallel baseline, quantized representation",
        "fig12_quantized",
    );
    println!(
        "The paper's \"nearly 3.5x for PRA-2b-1R\" corresponds to the top bar\n\
         (VGG19, whose quantized stream has the lowest essential-bit content\n\
         in Table I); networks with denser quantized streams (VGGM/VGGS at\n\
         34-38% non-zero bits) are bounded well below that."
    );
}
