//! Table I — average fraction of non-zero neuron bits per network for the
//! 16-bit fixed-point and 8-bit quantized representations, over all
//! neurons ("All") and non-zero neurons ("NZ").
//!
//! The generator is calibrated against these very numbers (DESIGN.md §2),
//! so this target verifies the calibration pipeline end to end on the
//! full workload tensors rather than predicting anything new.

use pra_bench::{build_workloads, pct, vs, Table};
use pra_fixed::BitContentStats;
use pra_workloads::{profiles, Representation};

fn main() {
    let mut table = Table::new(["network", "fp16 All", "fp16 NZ", "q8 All", "q8 NZ"]);
    let fp16 = build_workloads(Representation::Fixed16);
    let q8 = build_workloads(Representation::Quant8);
    for (wf, wq) in fp16.iter().zip(&q8) {
        let paper = profiles::table1(wf.network);
        let sf: BitContentStats =
            wf.layers.iter().flat_map(|l| l.neurons.as_slice().iter().copied()).collect();
        let sq: BitContentStats =
            wq.layers.iter().flat_map(|l| l.neurons.as_slice().iter().copied()).collect();
        table.row([
            wf.network.name().to_string(),
            vs(&pct(sf.fraction_all(16)), &pct(paper.fp16_all)),
            vs(&pct(sf.fraction_nonzero(16)), &pct(paper.fp16_nz)),
            vs(&pct(sq.fraction_all(8)), &pct(paper.q8_all)),
            vs(&pct(sq.fraction_nonzero(8)), &pct(paper.q8_nz)),
        ]);
    }
    table.print_and_save(
        "Table I: essential neuron bit content, measured (paper)",
        "table1_essential_bits",
    );
}
