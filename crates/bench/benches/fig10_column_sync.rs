//! Figure 10 — relative performance of PRA-2b with per-column
//! synchronization as a function of the number of synapse set registers
//! (1, 4, 16) plus the ideal unbounded case. Paper: one SSR already
//! boosts PRA-2b from 2.59x to 3.1x on average, close to the 3.45x ideal.

use pra_bench::{build_workloads, fidelity, per_network, times, vs, Table};
use pra_core::{PraConfig, SyncPolicy};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::{profiles, Representation};

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let configs: Vec<PraConfig> = [
        SyncPolicy::PerColumn { ssrs: 1 },
        SyncPolicy::PerColumn { ssrs: 4 },
        SyncPolicy::PerColumn { ssrs: 16 },
        SyncPolicy::PerColumnIdeal,
    ]
    .into_iter()
    .map(|sync| PraConfig {
        sync,
        ..PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity())
    })
    .collect();

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let mut speedups = vec![stripes::run(&chip, w).speedup_over(&base)];
        for cfg in &configs {
            speedups.push(pra_core::run(cfg, w).speedup_over(&base));
        }
        speedups
    });

    let mut table =
        Table::new(["network", "Stripes", "1-reg", "4-regs", "16-regs", "perCol-ideal"]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 5];
    for (w, sp) in workloads.iter().zip(&rows) {
        let paper = profiles::paper_speedups(w.network);
        for (c, v) in cols.iter_mut().zip(sp) {
            c.push(*v);
        }
        table.row([
            w.network.name().to_string(),
            times(sp[0]),
            vs(&times(sp[1]), &times(paper.pra_2b_1r)),
            times(sp[2]),
            times(sp[3]),
            times(sp[4]),
        ]);
    }
    table.row([
        "geomean".to_string(),
        vs(&times(geomean(&cols[0])), "1.85x"),
        vs(&times(geomean(&cols[1])), "3.10x"),
        times(geomean(&cols[2])),
        times(geomean(&cols[3])),
        vs(&times(geomean(&cols[4])), "3.45x"),
    ]);
    table.print_and_save(
        "Figure 10: PRA-2b speedup over DaDN, per-column synchronization, measured (paper)",
        "fig10_column_sync",
    );
}
