//! Ablation A4 — oneffset consumption order. §V-C describes the oneffset
//! generator as a "16-bit leading one detector" (MSB first), while the
//! 2-stage-shifting example of Fig. 7 consumes ascending offsets (LSB
//! first, minimum anchors the common shifter). The two orders are the
//! same hardware mirrored; this bench measures whether the choice matters
//! once lanes stall against each other at small L.

use pra_bench::{build_workloads, fidelity, per_network, times, Table};
use pra_core::{PraConfig, ScanOrder};
use pra_engines::dadn;
use pra_sim::{geomean, ChipConfig};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let ls = [0u8, 1, 2];
    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let mut out = Vec::new();
        for &l in &ls {
            for order in [ScanOrder::LsbFirst, ScanOrder::MsbFirst] {
                let cfg = PraConfig {
                    scan_order: order,
                    ..PraConfig::two_stage(l, Representation::Fixed16).with_fidelity(fidelity())
                };
                out.push(pra_core::run(&cfg, w).speedup_over(&base));
            }
        }
        out
    });

    let mut table =
        Table::new(["network", "0b LSB", "0b MSB", "1b LSB", "1b MSB", "2b LSB", "2b MSB"]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 6];
    for (w, sp) in workloads.iter().zip(&rows) {
        for (c, v) in cols.iter_mut().zip(sp) {
            c.push(*v);
        }
        let cells: Vec<String> = std::iter::once(w.network.name().to_string())
            .chain(sp.iter().map(|&v| times(v)))
            .collect();
        table.row(cells);
    }
    let geo: Vec<String> = std::iter::once("geomean".to_string())
        .chain(cols.iter().map(|c| times(geomean(c))))
        .collect();
    table.row(geo);
    table.print(
        "Ablation: oneffset consumption order (LSB-first vs MSB-first leading-one detector)",
    );
    println!(
        "The order is performance-neutral at every L: stalls depend on the\n\
         spread of pending offsets, which is symmetric under mirroring (at\n\
         L=0 both orders take one cycle per distinct offset present). The\n\
         Fig. 7 example's LSB-first order and §V-C's leading-one detector\n\
         are interchangeable design choices, which is why the paper never\n\
         remarks on the difference."
    );
}
