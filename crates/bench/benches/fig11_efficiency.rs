//! Figure 11 — relative energy efficiency over DaDN for Stripes, PRA-4b,
//! PRA-2b and PRA-2b-1R. Paper geo means: STR 1.16, PRA-4b 0.95 (the
//! single-stage datapath burns its speedup), PRA-2b 1.28, PRA-2b-1R 1.48.

use pra_bench::{build_workloads, fidelity, per_network, times, vs, Table};
use pra_core::PraConfig;
use pra_energy::efficiency::{efficiency, EnergyReport};
use pra_energy::unit::Design;
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let configs = [
        (
            PraConfig::single_stage(Representation::Fixed16),
            Design::Pra { first_stage_bits: 4, ssrs: 0 },
        ),
        (
            PraConfig::two_stage(2, Representation::Fixed16),
            Design::Pra { first_stage_bits: 2, ssrs: 0 },
        ),
        (
            PraConfig::per_column(1, Representation::Fixed16),
            Design::Pra { first_stage_bits: 2, ssrs: 1 },
        ),
    ];

    let rows = per_network(&workloads, |w| {
        let base = EnergyReport::new(Design::Dadn, dadn::run(&chip, w).total_cycles());
        let str_rep = EnergyReport::new(Design::Stripes, stripes::run(&chip, w).total_cycles());
        let mut effs = vec![efficiency(&base, &str_rep)];
        for (cfg, design) in &configs {
            let cycles = pra_core::run(&cfg.with_fidelity(fidelity()), w).total_cycles();
            effs.push(efficiency(&base, &EnergyReport::new(*design, cycles)));
        }
        effs
    });

    let mut table = Table::new(["network", "Stripes", "PRA-4b", "PRA-2b", "PRA-2b-1R"]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 4];
    for (w, effs) in workloads.iter().zip(&rows) {
        for (c, v) in cols.iter_mut().zip(effs) {
            c.push(*v);
        }
        table.row([
            w.network.name().to_string(),
            times(effs[0]),
            times(effs[1]),
            times(effs[2]),
            times(effs[3]),
        ]);
    }
    table.row([
        "geomean".to_string(),
        vs(&times(geomean(&cols[0])), "1.16x"),
        vs(&times(geomean(&cols[1])), "0.95x"),
        vs(&times(geomean(&cols[2])), "1.28x"),
        vs(&times(geomean(&cols[3])), "1.48x"),
    ]);
    table.print_and_save(
        "Figure 11: energy efficiency relative to DaDN, measured (paper)",
        "fig11_efficiency",
    );
}
