//! Criterion microbenchmarks for the hot kernels: oneffset encoding, CSD
//! recoding, the column scheduler, the PIP datapath, the reference
//! convolution, a full Pragmatic layer simulation, and synthetic
//! workload generation (serial vs parallel row jobs).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pra_core::column::{schedule_brick, schedule_brick_oracle, schedule_values, SchedulerConfig};
use pra_core::pip::{pip_cycle, LaneControl};
use pra_core::PraConfig;
use pra_fixed::{csd, OneffsetList};
use pra_tensor::conv::convolve;
use pra_tensor::{ConvLayerSpec, Tensor3};
use pra_workloads::generator::generate_synapses;
use pra_workloads::{ActivationModel, LayerWorkload, Network, NetworkWorkload, Representation};

fn bench_encoding(c: &mut Criterion) {
    let values: Vec<u16> =
        (0..4096u32).map(|k| (k.wrapping_mul(2654435761) >> 16) as u16).collect();
    c.bench_function("oneffset_encode_4k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &values {
                total += OneffsetList::encode(black_box(v)).len();
            }
            black_box(total)
        })
    });
    c.bench_function("csd_encode_4k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &values {
                total += csd::encode(black_box(v)).len();
            }
            black_box(total)
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let mut bricks = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..256 {
        let mut vals = [0u16; 16];
        for v in &mut vals {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = (state >> 48) as u16 & 0x1FF;
        }
        bricks.push(vals);
    }
    for l in [0u8, 2, 4] {
        c.bench_function(&format!("column_schedule_256bricks_l{l}"), |b| {
            b.iter(|| {
                let mut cycles = 0u64;
                for vals in &bricks {
                    cycles += u64::from(schedule_values(black_box(vals), l).cycles);
                }
                black_box(cycles)
            })
        });
    }
    c.bench_function("schedule_brick_masked", |b| {
        let masks: [u32; 16] = std::array::from_fn(|i| (0x5A5Au32).rotate_left(i as u32) & 0xFFFF);
        b.iter(|| black_box(schedule_brick(black_box(&masks), 2)))
    });
    // Fast path vs retained oracle on the same bricks: the dispatching
    // entry point (schedule_brick) takes the branchless path for the
    // paper configuration; schedule_brick_oracle is the general loop.
    let mask_bricks: Vec<[u32; 16]> = bricks
        .iter()
        .map(|vals| {
            let mut m = [0u32; 16];
            for (slot, &v) in m.iter_mut().zip(vals) {
                *slot = u32::from(v);
            }
            m
        })
        .collect();
    c.bench_function("schedule_brick_fast_256bricks_l2", |b| {
        b.iter(|| {
            let mut cycles = 0u64;
            for m in &mask_bricks {
                cycles += u64::from(schedule_brick(black_box(m), 2).cycles);
            }
            black_box(cycles)
        })
    });
    c.bench_function("schedule_brick_oracle_256bricks_l2", |b| {
        let cfg = SchedulerConfig::paper(2);
        b.iter(|| {
            let mut cycles = 0u64;
            for m in &mask_bricks {
                cycles += u64::from(schedule_brick_oracle(black_box(m), cfg).cycles);
            }
            black_box(cycles)
        })
    });
}

fn bench_pip(c: &mut Criterion) {
    let synapses: [i16; 16] = std::array::from_fn(|i| (i as i16 - 8) * 321);
    let lanes: [LaneControl; 16] = std::array::from_fn(|i| LaneControl::active((i % 4) as u8));
    c.bench_function("pip_cycle", |b| {
        b.iter(|| black_box(pip_cycle(black_box(&synapses), black_box(&lanes), 3)))
    });
}

fn bench_layers(c: &mut Criterion) {
    let spec = ConvLayerSpec::new("bench", (32, 32, 64), (3, 3), 32, 1, 1).unwrap();
    let neurons = Tensor3::from_fn(spec.input, |x, y, i| ((x * 131 + y * 17 + i * 7) % 300) as u16);
    let synapses = generate_synapses(&spec, 7);
    c.bench_function("reference_convolve_32x32x64", |b| {
        b.iter(|| black_box(convolve(black_box(&spec), &neurons, &synapses)))
    });

    let layer = LayerWorkload {
        spec: spec.clone(),
        window: pra_fixed::PrecisionWindow::with_width(9, 2),
        stripes_precision: 9,
        neurons: neurons.clone(),
    };
    let cfg = PraConfig::two_stage(2, Representation::Fixed16);
    c.bench_function("pra2b_simulate_layer_32x32x64", |b| {
        b.iter_batched(
            || layer.clone(),
            |l| black_box(pra_core::simulate_layer(black_box(&cfg), &l)),
            BatchSize::LargeInput,
        )
    });
    // Memoized pipeline vs the retained pre-memoization oracle: the gap
    // is the K×K brick-reuse factor plus the encode-once saving.
    c.bench_function("pra2b_simulate_layer_raw_32x32x64", |b| {
        b.iter_batched(
            || layer.clone(),
            |l| black_box(pra_core::simulate_layer_raw(black_box(&cfg), &l)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_generator(c: &mut Criterion) {
    // Generator throughput over a whole network build (AlexNet, ~400k
    // neurons), with an explicit model so the first-use calibration fit
    // stays out of the measurement. Serial and parallel row jobs are
    // bit-identical by construction; the gap is pure thread fan-out.
    let model = ActivationModel {
        zero_frac: 0.45,
        sigma: 0.12,
        suffix_density: 0.35,
        outlier_prob: 0.008,
        dense_prob: 0.10,
        heavy_share: 0.40,
    };
    let repr = Representation::Fixed16;
    let neurons: usize = Network::AlexNet.conv_layers().iter().map(|s| s.input.len()).sum();
    c.bench_function("workload_gen_serial_alexnet", |b| {
        b.iter(|| {
            black_box(NetworkWorkload::build_with_model_serial(Network::AlexNet, repr, model, 7))
        })
    });
    c.bench_function("workload_gen_parallel_alexnet", |b| {
        b.iter(|| black_box(NetworkWorkload::build_with_model(Network::AlexNet, repr, model, 7)))
    });
    // Throughput in the unit the ROADMAP tracks.
    for (label, parallel) in [("serial", false), ("parallel", true)] {
        let reps = 3u64;
        let start = std::time::Instant::now();
        for r in 0..reps {
            let w = if parallel {
                NetworkWorkload::build_with_model(Network::AlexNet, repr, model, 7 + r)
            } else {
                NetworkWorkload::build_with_model_serial(Network::AlexNet, repr, model, 7 + r)
            };
            black_box(w);
        }
        let per_build = start.elapsed().as_secs_f64() / reps as f64;
        println!(
            "workload_gen_{label:<8} throughput: {:>7.1} Mneurons/s ({neurons} neurons/build)",
            neurons as f64 / per_build / 1e6
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encoding, bench_scheduler, bench_pip, bench_layers, bench_generator
}
criterion_main!(benches);
