//! Ablation A2 — Neuron Memory layout. §V-A4 relies on pallets landing in
//! at most two NM rows ("with unit stride the 256 neurons would be
//! typically all stored in the same NM row"); that requires the
//! brick-interleaved (pallet-major) layout. This bench measures the
//! dispatcher stall cycles PRA-2b would suffer with a naive row-major
//! layout instead.

use pra_bench::{build_workloads, fidelity, per_network, times, Table};
use pra_core::PraConfig;
use pra_engines::dadn;
use pra_sim::{geomean, ChipConfig, NmLayout};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let pallet_major =
            PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity());
        let row_major = PraConfig { nm_layout: NmLayout::RowMajor, ..pallet_major };
        let r_pm = pra_core::run(&pallet_major, w);
        let r_rm = pra_core::run(&row_major, w);
        (
            r_pm.speedup_over(&base),
            r_rm.speedup_over(&base),
            r_pm.total_counters().stall_cycles,
            r_rm.total_counters().stall_cycles,
        )
    });

    let mut table = Table::new(["network", "pallet-major", "row-major", "stalls PM", "stalls RM"]);
    let (mut pm, mut rm) = (vec![], vec![]);
    for (w, (s_pm, s_rm, st_pm, st_rm)) in workloads.iter().zip(&rows) {
        pm.push(*s_pm);
        rm.push(*s_rm);
        table.row([
            w.network.name().to_string(),
            times(*s_pm),
            times(*s_rm),
            st_pm.to_string(),
            st_rm.to_string(),
        ]);
    }
    table.row([
        "geomean".to_string(),
        times(geomean(&pm)),
        times(geomean(&rm)),
        String::new(),
        String::new(),
    ]);
    table.print("Ablation: NM layout — PRA-2b speedup and NM stall cycles per layout");
}
