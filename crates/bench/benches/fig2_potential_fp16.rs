//! Figure 2 — convolutional-layer computational demands with the 16-bit
//! fixed-point baseline: equivalent terms relative to DaDN for ZN (ideal
//! zero skip), CVN (Cnvlutin), Stripes, ideal PRA-fp16 and PRA-red.
//! Lower is better. Paper averages: ZN 39%, CVN 63%, STR 53%, PRA 10%,
//! PRA-red 8%.

use pra_bench::{build_workloads, pct, per_network, vs, Table};
use pra_engines::potential;
use pra_sim::geomean;
use pra_workloads::Representation;

fn main() {
    let workloads = build_workloads(Representation::Fixed16);
    let terms = per_network(&workloads, potential::network_terms);

    let paper = [
        // Read off Fig. 2 bars per network: (zn, cvn, stripes, pra, pra_red).
        (0.36, 0.58, 0.55, 0.08, 0.05),
        (0.45, 0.70, 0.52, 0.11, 0.09),
        (0.32, 0.56, 0.57, 0.07, 0.06),
        (0.28, 0.61, 0.45, 0.06, 0.04),
        (0.32, 0.59, 0.49, 0.06, 0.05),
        (0.50, 0.79, 0.75, 0.14, 0.11),
    ];

    let mut table =
        Table::new(["network", "ZN", "CVN", "Stripes", "PRA-fp16", "PRA-red", "PRA-csd*"]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 6];
    for ((w, t), p) in workloads.iter().zip(&terms).zip(paper) {
        let n = t.normalized();
        for (c, v) in cols.iter_mut().zip([n.zn, n.cvn, n.stripes, n.pra, n.pra_red, n.pra_csd]) {
            c.push(v);
        }
        table.row([
            w.network.name().to_string(),
            vs(&pct(n.zn), &pct(p.0)),
            vs(&pct(n.cvn), &pct(p.1)),
            vs(&pct(n.stripes), &pct(p.2)),
            vs(&pct(n.pra), &pct(p.3)),
            vs(&pct(n.pra_red), &pct(p.4)),
            pct(n.pra_csd),
        ]);
    }
    table.row([
        "geomean".to_string(),
        vs(&pct(geomean(&cols[0])), "39.0%"),
        vs(&pct(geomean(&cols[1])), "63.0%"),
        vs(&pct(geomean(&cols[2])), "53.0%"),
        vs(&pct(geomean(&cols[3])), "10.0%"),
        vs(&pct(geomean(&cols[4])), "8.0%"),
        pct(geomean(&cols[5])),
    ]);
    table.print_and_save("Figure 2: terms relative to DaDN, 16-bit fixed point, measured (paper); * = CSD extension, not in the paper", "fig2_potential_fp16");
}
