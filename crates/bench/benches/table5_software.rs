//! Table V — share of PRA-2b-1R's performance due to the software-provided
//! per-layer precisions (§V-F trimming), per network. Paper average: 19%.

use pra_bench::{build_workloads, fidelity, pct, per_network, times, vs, Table};
use pra_core::PraConfig;
use pra_engines::dadn;
use pra_sim::ChipConfig;
use pra_workloads::{profiles, Representation};

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let cfg = PraConfig::per_column(1, Representation::Fixed16).with_fidelity(fidelity());
        let with_trim = pra_core::run(&cfg, w).speedup_over(&base);
        let without = pra_core::run(&cfg.with_trim(false), w).speedup_over(&base);
        (with_trim, without)
    });

    let mut table = Table::new(["network", "with precisions", "without", "benefit"]);
    let mut benefits = vec![];
    for (w, (with_trim, without)) in workloads.iter().zip(&rows) {
        let benefit = with_trim / without - 1.0;
        benefits.push(benefit);
        table.row([
            w.network.name().to_string(),
            times(*with_trim),
            times(*without),
            vs(&pct(benefit), &pct(profiles::table5_software_benefit(w.network))),
        ]);
    }
    let avg = benefits.iter().sum::<f64>() / benefits.len() as f64;
    table.row(["average".into(), String::new(), String::new(), vs(&pct(avg), "19.0%")]);
    table.print_and_save(
        "Table V: performance benefit of software guidance for PRA-2b-1R, measured (paper)",
        "table5_software",
    );
}
