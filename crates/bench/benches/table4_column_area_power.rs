//! Table IV — area and power for per-column synchronization: PRA-2b with
//! 1, 4 and 16 synapse set registers.

use pra_bench::{vs, Table};
use pra_energy::chip::{chip_area_mm2, chip_power_w, paper_chip_area_mm2, paper_chip_power_w};
use pra_energy::unit::{paper_unit_area_mm2, unit_area_mm2, Design};

fn main() {
    let designs = [
        Design::Dadn,
        Design::Stripes,
        Design::Pra { first_stage_bits: 2, ssrs: 1 },
        Design::Pra { first_stage_bits: 2, ssrs: 4 },
        Design::Pra { first_stage_bits: 2, ssrs: 16 },
    ];

    let dadn_unit = unit_area_mm2(Design::Dadn);
    let dadn_area = chip_area_mm2(Design::Dadn);
    let dadn_power = chip_power_w(Design::Dadn);

    let mut table = Table::new([
        "design",
        "Area U.",
        "dArea U.",
        "Area T.",
        "dArea T.",
        "Power T.",
        "dPower T.",
    ]);
    for d in designs {
        let u = unit_area_mm2(d);
        let a = chip_area_mm2(d);
        let p = chip_power_w(d);
        table.row([
            d.label(),
            vs(&format!("{u:.2}"), &format!("{:.2}", paper_unit_area_mm2(d).unwrap())),
            format!("{:.2}", u / dadn_unit),
            vs(&format!("{a:.0}"), &format!("{:.0}", paper_chip_area_mm2(d).unwrap())),
            format!("{:.2}", a / dadn_area),
            vs(&format!("{p:.1}"), &format!("{:.1}", paper_chip_power_w(d).unwrap())),
            format!("{:.2}", p / dadn_power),
        ]);
    }
    table.print_and_save(
        "Table IV: area [mm2] and power [W], column synchronization with PRA-2b, measured (paper)",
        "table4_column_area_power",
    );
}
