//! Ablation A1 — oneffset vs canonical-signed-digit (modified Booth)
//! encoding. The PIP's `neg` wires (Fig. 6) make signed terms possible;
//! CSD recoding collapses runs of ones (`0111₂ = 2³ − 2⁰`) and cuts the
//! essential term count from ~n/2 to ~n/3 for dense values. This bench
//! quantifies what the encoding would buy on the calibrated workloads —
//! the natural extension the paper's conclusion hints at.

use pra_bench::{build_workloads, fidelity, pct, per_network, times, Table};
use pra_core::{Encoding, PraConfig};
use pra_engines::{dadn, potential};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::Representation;

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let one = PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity());
        let csd = PraConfig { encoding: Encoding::Csd, ..one };
        let s_one = pra_core::run(&one, w).speedup_over(&base);
        let s_csd = pra_core::run(&csd, w).speedup_over(&base);
        let t = potential::network_terms(w);
        let n = t.normalized();
        (s_one, s_csd, n.pra_red, n.pra_csd)
    });

    let mut table =
        Table::new(["network", "PRA-2b oneffset", "PRA-2b CSD", "terms oneffset", "terms CSD"]);
    let (mut so, mut sc) = (vec![], vec![]);
    for (w, (s_one, s_csd, t_one, t_csd)) in workloads.iter().zip(&rows) {
        so.push(*s_one);
        sc.push(*s_csd);
        table.row([
            w.network.name().to_string(),
            times(*s_one),
            times(*s_csd),
            pct(*t_one),
            pct(*t_csd),
        ]);
    }
    table.row([
        "geomean".to_string(),
        times(geomean(&so)),
        times(geomean(&sc)),
        String::new(),
        String::new(),
    ]);
    table.print("Ablation: CSD (modified Booth) recoding vs plain oneffsets, PRA-2b pallet sync");
    println!(
        "CSD recoding helps the *cycle* count far more than the mean term\n\
         count suggests: pallet synchronization pays for the worst neuron of\n\
         every 256-lane step, and the bit-densest values — exactly the ones\n\
         with long runs of ones — are the ones CSD compresses (a run of k\n\
         ones becomes two signed terms). Capping the worst case lifts the\n\
         geometric-mean speedup by roughly a third, which is why the journal\n\
         version of Pragmatic adopted modified-Booth encoding."
    );
}
