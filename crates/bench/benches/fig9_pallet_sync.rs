//! Figure 9 — Pragmatic's performance relative to DaDianNao with 2-stage
//! shifting and per-pallet synchronization: Stripes, then PRA with 0- to
//! 4-bit first-stage shifters. Paper geo means: Stripes 1.85x, PRAsingle
//! (4-bit) 2.59x, with the 2-/3-bit variants within 0.2% of single-stage
//! and 0-bit still 20% ahead of Stripes.

use pra_bench::{build_workloads, fidelity, per_network, times, vs, Table};
use pra_core::PraConfig;
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::{profiles, Representation};

fn main() {
    let chip = ChipConfig::dadn();
    let workloads = build_workloads(Representation::Fixed16);

    let rows = per_network(&workloads, |w| {
        let base = dadn::run(&chip, w);
        let mut speedups = vec![stripes::run(&chip, w).speedup_over(&base)];
        for l in 0..=4u8 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_fidelity(fidelity());
            speedups.push(pra_core::run(&cfg, w).speedup_over(&base));
        }
        speedups
    });

    let mut table = Table::new(["network", "Stripes", "0-bit", "1-bit", "2-bit", "3-bit", "4-bit"]);
    let mut cols: Vec<Vec<f64>> = vec![vec![]; 6];
    for (w, sp) in workloads.iter().zip(&rows) {
        let paper = profiles::paper_speedups(w.network);
        for (c, v) in cols.iter_mut().zip(sp) {
            c.push(*v);
        }
        table.row([
            w.network.name().to_string(),
            vs(&times(sp[0]), &times(paper.stripes)),
            times(sp[1]),
            times(sp[2]),
            times(sp[3]),
            times(sp[4]),
            vs(&times(sp[5]), &times(paper.pra_single)),
        ]);
    }
    table.row([
        "geomean".to_string(),
        vs(&times(geomean(&cols[0])), "1.85x"),
        times(geomean(&cols[1])),
        times(geomean(&cols[2])),
        times(geomean(&cols[3])),
        times(geomean(&cols[4])),
        vs(&times(geomean(&cols[5])), "2.59x"),
    ]);
    table.print_and_save(
        "Figure 9: speedup over DaDN, per-pallet synchronization, measured (paper)",
        "fig9_pallet_sync",
    );
}
