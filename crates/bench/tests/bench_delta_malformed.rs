//! `pra bench-delta` robustness: malformed `bench.json` inputs must
//! produce a typed error or a warning, never a panic. These are the
//! shapes a CI artifact can realistically degrade into — a truncated
//! download, a pre-versioned document from an old branch, an empty or
//! garbage file.

use pra_bench::sweep::{bench_delta, bench_gate, phase_totals, schema_version, schema_warnings};

/// A minimal well-formed v2 document, the happy-path partner for the
/// malformed side of each comparison.
fn valid_body() -> String {
    [
        "{",
        "  \"schema_version\": 2,",
        "  \"total_wall_ms\": 120.0,",
        "  \"job_timings\": [",
        "    {\"job\": \"AlexNet\", \"repr\": \"fp16\", \"gen_ms\": 10.0, \
         \"encode_ms\": 20.0, \"sim_ms\": 70.0, \"wall_ms\": 100.0, \"cache\": \"miss\"}",
        "  ]",
        "}",
    ]
    .join("\n")
}

#[test]
fn truncated_json_errors_cleanly() {
    let full = valid_body();
    // Cut mid-record: the gen_ms key (and its line) never completes.
    let truncated = &full[..full.find("\"gen_ms\"").unwrap_or(full.len()) + 4];
    let err = bench_delta(truncated, &valid_body()).unwrap_err();
    assert!(err.contains("previous bench.json"), "names the bad side: {err}");
    let err = bench_delta(&valid_body(), truncated).unwrap_err();
    assert!(err.contains("current bench.json"), "names the bad side: {err}");
    assert!(bench_gate(truncated, &valid_body(), 1.1).is_err());
}

#[test]
fn missing_schema_version_warns_but_still_diffs() {
    let unstamped = valid_body().replace("  \"schema_version\": 2,\n", "");
    assert_eq!(schema_version(&unstamped), None);
    let warnings = schema_warnings(&unstamped, &valid_body());
    assert!(!warnings.is_empty(), "layout drift must be surfaced");
    // The delta itself still renders (phase keys are stable), carrying
    // the warning in its output.
    let table = bench_delta(&unstamped, &valid_body()).expect("diffs despite missing stamp");
    assert!(table.contains("pre-versioned"), "{table}");
}

#[test]
fn empty_phase_maps_error_not_panic() {
    for empty in ["{}", "{\"schema_version\": 2, \"job_timings\": []}", "", "   \n\n"] {
        assert!(phase_totals(empty).is_none(), "no totals in {empty:?}");
        let err = bench_delta(empty, &valid_body()).unwrap_err();
        assert!(err.contains("no job timings"), "{err}");
        let err = bench_gate(&valid_body(), empty, 1.1).unwrap_err();
        assert!(err.contains("no job timings"), "{err}");
    }
}

#[test]
fn garbage_input_errors_not_panics() {
    for garbage in ["not json at all", "{\"gen_ms\": }", "\u{0}\u{1}\u{2}", "{\"gen_ms\": \"NaN\"}"]
    {
        // Any Ok/Err outcome is acceptable; reaching this assert means
        // no panic. A parsed total must at least be finite.
        if let Some(t) = phase_totals(garbage) {
            assert!(t.gen_ms.is_finite());
        }
        let _ = bench_delta(garbage, garbage);
        let _ = bench_gate(garbage, &valid_body(), 1.1);
        let _ = schema_warnings(garbage, &valid_body());
    }
}

#[test]
fn mismatched_schema_versions_warn() {
    let v1 = valid_body().replace("\"schema_version\": 2", "\"schema_version\": 1");
    let warnings = schema_warnings(&v1, &valid_body());
    assert!(
        warnings.iter().any(|w| w.contains("v1") && w.contains("v2")),
        "both versions named: {warnings:?}"
    );
}
