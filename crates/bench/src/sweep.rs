//! Rayon-parallel multi-network sweep — the batch runner behind
//! `pra sweep`.
//!
//! One *job* is a `(network, representation)` pair, structured around
//! build-once shared artifacts (DESIGN.md §8): the job generates the
//! calibrated workload once (parallel row jobs), builds one
//! [`SharedEncodedNetwork`] covering every PRA design point (one mask
//! encoding, one schedule memo per scheduler configuration, one NM/SB
//! traffic count), and then hands borrowed `LayerView`s plus the shared
//! artifacts to every engine — nothing is re-encoded or recounted per
//! design point. Jobs are independent, so the sweep fans them out across
//! a work-stealing thread pool and collects the per-engine speedup rows
//! in a deterministic order (input order is preserved by the parallel
//! map; every job is seeded independently of scheduling). This is the
//! first step on the ROADMAP path toward batched, heavy-traffic
//! simulation serving: the driver is the shape a request batch would
//! take, with the CSV standing in for the response.
//!
//! Results land in one consolidated CSV under `target/pra-reports/`
//! via [`crate::report`]; per-phase job timings (generation / encoding /
//! simulation) land in `bench.json` so bottleneck hunts can read the
//! trajectory instead of re-profiling.

use std::cell::RefCell;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use pra_core::{Fidelity, PraConfig, SharedEncodedNetwork};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::cache::ArtifactStore;
use pra_workloads::{LayerView, Network, Representation};

use crate::report;

/// What to sweep. [`SweepConfig::full`] is the `pra sweep` default:
/// every network, both representations, the shared bench seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Networks to evaluate.
    pub networks: Vec<Network>,
    /// Representations to evaluate each network under.
    pub representations: Vec<Representation>,
    /// Workload generation seed (jobs derive per-layer seeds from it).
    pub seed: u64,
    /// Simulation fidelity for the cycle-level engines.
    pub fidelity: Fidelity,
    /// Run jobs on the parallel pool (`false` forces the serial path;
    /// results are identical, only scheduling differs).
    pub parallel: bool,
    /// The tiered artifact store every job resolves through
    /// (DESIGN.md §9, §15): workload streams, traffic tables and
    /// encoded masks/memos. `ArtifactStore::at_default().no_disk()`
    /// (`pra sweep --no-cache`) regenerates everything; results are
    /// byte-identical either way.
    pub store: ArtifactStore,
}

impl SweepConfig {
    /// The full paper sweep: all six networks x both representations.
    pub fn full() -> Self {
        Self {
            networks: Network::ALL.to_vec(),
            representations: vec![Representation::Fixed16, Representation::Quant8],
            seed: crate::SEED,
            fidelity: crate::fidelity(),
            parallel: true,
            store: ArtifactStore::at_default(),
        }
    }
}

/// One engine's result on one `(network, representation)` job.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Network name, e.g. `"Alexnet"`.
    pub network: String,
    /// Representation label: `"fp16"` or `"quant8"`.
    pub repr: String,
    /// Engine label, e.g. `"DaDN"`, `"Stripes"`, `"PRA-2b"`.
    pub engine: String,
    /// Total cycles over the convolutional stack.
    pub cycles: u64,
    /// Total effectual terms processed.
    pub terms: u64,
    /// Speedup over the DaDianNao baseline of the same job (1.0 for
    /// DaDN itself).
    pub speedup: f64,
}

/// Wall-clock telemetry for one `(network, representation)` job, split
/// by phase so bottleneck hunts can read `bench.json` instead of
/// re-profiling: workload generation, shared-artifact encoding, and
/// engine simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTiming {
    /// Network name, e.g. `"Alexnet"`.
    pub network: String,
    /// Representation label: `"fp16"` or `"quant8"`.
    pub repr: String,
    /// Milliseconds generating the calibrated workload (including the
    /// first-use calibration fit on whichever job triggers it).
    pub gen_ms: f64,
    /// Milliseconds building the shared artifacts: mask encodings,
    /// schedule memos, engine-independent traffic counters.
    pub encode_ms: f64,
    /// Milliseconds running every engine against the shared artifacts.
    pub sim_ms: f64,
    /// Wall-clock milliseconds for the whole job, as observed on its
    /// worker thread. Jobs running concurrently contend for cores (and
    /// the cycle simulator itself parallelizes over pallets), so per-job
    /// numbers are comparable *within* a run; cross-run trends should
    /// use [`SweepOutcome::total_wall_ms`].
    pub wall_ms: f64,
    /// Workload-tier outcome for this job: `"hit"` (loaded from the
    /// content-addressed store, generation skipped), `"miss"`
    /// (generated and published) or `"off"` (tier disabled).
    pub cache: String,
    /// Encoded-artifact-tier outcome (masks + schedule memos): `"hit"`
    /// (encode phase replaced by a deserialize), `"miss"` (encoded
    /// fresh, published after simulation) or `"off"`.
    pub encoded: String,
    /// Traffic-tier outcome: `"hit"`, `"miss"` or `"off"` (disabled, or
    /// the configuration set does not share one traffic view).
    pub traffic: String,
}

/// A completed sweep: the rows plus scheduling and timing telemetry.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One row per job x engine, in job order (networks outer,
    /// representations inner) with engines in [`engine_labels`] order.
    pub rows: Vec<SweepRow>,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Distinct worker threads observed while running jobs.
    pub threads_used: usize,
    /// Per-job wall-clock timings, in job order.
    pub timings: Vec<JobTiming>,
    /// Wall-clock milliseconds for the whole sweep (including the fan-out
    /// overhead the per-job timings cannot see).
    pub total_wall_ms: f64,
}

/// Short, CSV-stable label for a representation.
pub fn repr_label(repr: Representation) -> &'static str {
    match repr {
        Representation::Fixed16 => "fp16",
        Representation::Quant8 => "quant8",
    }
}

/// The PRA configurations the sweep evaluates, in row order. Public
/// because the serving path (`pra-serve`) resolves request engine
/// labels against exactly this set.
pub fn pra_configs(repr: Representation, fidelity: Fidelity) -> Vec<PraConfig> {
    vec![
        PraConfig::two_stage(2, repr).with_fidelity(fidelity),
        PraConfig::single_stage(repr).with_fidelity(fidelity),
        PraConfig::per_column(1, repr).with_fidelity(fidelity),
    ]
}

/// Engine labels in the order each job emits its rows.
pub fn engine_labels(repr: Representation) -> Vec<String> {
    let mut labels = vec!["DaDN".to_string(), "Stripes".to_string()];
    labels.extend(pra_configs(repr, Fidelity::Full).iter().map(PraConfig::label));
    labels
}

/// Runs the sweep described by `cfg` and returns every row.
pub fn run_sweep(cfg: &SweepConfig) -> SweepOutcome {
    let jobs: Vec<(Network, Representation)> = cfg
        .networks
        .iter()
        .flat_map(|&net| cfg.representations.iter().map(move |&repr| (net, repr)))
        .collect();
    let n_jobs = jobs.len();

    // Lock-free distinct-thread telemetry: each thread keeps the set of
    // sweep epochs it has been counted in (thread-local, so uncontended)
    // and bumps a relaxed shared counter at most once per sweep — no
    // mutex on the job hot path, correct across repeated sweeps on reused
    // pool threads, and robust to several sweeps interleaving on the same
    // worker (e.g. parallel test runs on a shared global pool).
    static SWEEP_EPOCH: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static COUNTED_EPOCHS: RefCell<BTreeSet<u64>> = const { RefCell::new(BTreeSet::new()) };
    }
    // relaxed-ok: epoch allocation only needs uniqueness, not ordering
    // against any other memory.
    let epoch = SWEEP_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let threads_used = AtomicUsize::new(0);

    let sweep_start = Instant::now();
    let run_job = |(net, repr): (Network, Representation)| -> (Vec<SweepRow>, JobTiming) {
        COUNTED_EPOCHS.with(|c| {
            if c.borrow_mut().insert(epoch) {
                // relaxed-ok: telemetry counter read only after the
                // parallel section joins.
                threads_used.fetch_add(1, Ordering::Relaxed);
            }
        });
        let start = Instant::now();
        let ms = |from: Instant| from.elapsed().as_secs_f64() * 1e3;
        let chip = ChipConfig::dadn();

        // Phase 1 — source the workload exactly once: from the
        // content-addressed store when a valid entry exists (bit-
        // identical by the round-trip guarantee), regenerated and
        // published otherwise (parallel row jobs inside; bit-identical
        // to serial generation).
        let (workload, cache_outcome) = cfg.store.workload(net, repr, cfg.seed);
        let gen_ms = ms(start);

        // Phase 2 — start the pipelined shared-artifact build. The
        // foreground cost here is key derivation plus the (small)
        // traffic-table probe; the heavy work — mask encoding cold, the
        // streamed decode of the persisted entry warm — rides the
        // builder thread and overlaps Phase 3's lead simulation. A warm
        // sweep's encode phase is therefore the probe alone: warm runs
        // are simulation-only (DESIGN.md §15).
        let encode_start = Instant::now();
        let configs = pra_configs(repr, cfg.fidelity);
        let workload = Arc::new(workload);
        let build =
            SharedEncodedNetwork::start_pipelined(&configs, &workload, cfg.seed, &cfg.store);
        let encode_ms = ms(encode_start);

        // Phase 3 — the lead PRA configuration consumes the build layer
        // by layer (simulating layer n while layer n+1 encodes or
        // decodes); the remaining configurations follow over the
        // then-complete layers. Every PRA sim runs before `finish` so
        // the published entry carries fully-warmed schedule memos —
        // the next process starts simulation-only.
        let sim_start = Instant::now();
        let pra_results: Vec<pra_sim::RunResult> = configs
            .iter()
            .map(|pra_cfg| pra_core::run_pipelined(pra_cfg, &workload, &build, |_, _| {}))
            .collect();
        let pra_ms = ms(sim_start);

        // The builder has resolved both tiers by now; `finish` (untimed:
        // publication is I/O, not simulation) publishes whatever the
        // store missed.
        let encoded_outcome = build.encoded_outcome();
        let traffic_outcome = build.traffic_outcome();
        let shared = build.finish(&cfg.store);

        // Baseline engines consume borrowed views plus the shared
        // traffic; nothing is re-encoded per design point. Their
        // dispatchers use the default NM layout; the checked view hands
        // back counters only if that matches.
        let base_start = Instant::now();
        let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
        let traffic = shared.traffic_view(&chip, Default::default(), repr);
        let base = dadn::run_views(&chip, &views, repr, traffic);
        let mut rows = Vec::with_capacity(2 + configs.len());
        let mut push = |engine: String, result: &pra_sim::RunResult| {
            rows.push(SweepRow {
                network: net.name().to_string(),
                repr: repr_label(repr).to_string(),
                engine,
                cycles: result.total_cycles(),
                terms: result.total_terms(),
                speedup: result.speedup_over(&base),
            });
        };
        push("DaDN".to_string(), &base);
        push("Stripes".to_string(), &stripes::run_views(&chip, &views, repr, traffic));
        for (pra_cfg, result) in configs.iter().zip(&pra_results) {
            push(pra_cfg.label(), result);
        }
        let sim_ms = pra_ms + ms(base_start);

        let timing = JobTiming {
            network: net.name().to_string(),
            repr: repr_label(repr).to_string(),
            gen_ms,
            encode_ms,
            sim_ms,
            wall_ms: ms(start),
            cache: cache_outcome.label().to_string(),
            encoded: encoded_outcome.label().to_string(),
            traffic: traffic_outcome.label().to_string(),
        };
        (rows, timing)
    };

    let nested: Vec<(Vec<SweepRow>, JobTiming)> = if cfg.parallel {
        jobs.into_par_iter().map(run_job).collect()
    } else {
        jobs.into_iter().map(run_job).collect()
    };
    let total_wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    let mut rows = Vec::new();
    let mut timings = Vec::with_capacity(n_jobs);
    for (job_rows, timing) in nested {
        rows.extend(job_rows);
        timings.push(timing);
    }
    SweepOutcome {
        rows,
        jobs: n_jobs,
        threads_used: threads_used.into_inner(),
        timings,
        total_wall_ms,
    }
}

/// The consolidated CSV header, matching [`csv_rows`].
pub const CSV_HEADER: [&str; 6] = ["network", "repr", "engine", "cycles", "terms", "speedup"];

/// Stringifies rows for [`report::write_csv`].
pub fn csv_rows(rows: &[SweepRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.repr.clone(),
                r.engine.clone(),
                r.cycles.to_string(),
                r.terms.to_string(),
                format!("{:.4}", r.speedup),
            ]
        })
        .collect()
}

/// Writes the consolidated sweep CSV (`target/pra-reports/sweep.csv`).
/// Returns the path on success (best-effort, like every report).
pub fn write_report(rows: &[SweepRow]) -> Option<PathBuf> {
    report::write_csv("sweep", &CSV_HEADER, &csv_rows(rows))
}

/// Version stamped into every `bench.json` this crate writes. Bump on
/// any structural change to the document (new/renamed top-level keys,
/// changed record shapes) so downstream parsers — `bench_delta`
/// included — can tell a layout drift from a perf drift. History:
/// v1 = PR 2–3 layout (unstamped), v2 = stamped + optional `"serve"`
/// section, v3 = per-tier `"encoded"`/`"traffic"` outcomes on job
/// timings.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Renders the machine-readable perf report: per-job phase timings
/// (generation / encoding / simulation), one record per job x engine
/// with the job's wall-clock, plus sweep-level totals. This is the file
/// future PRs diff against to keep the perf trajectory visible.
pub fn bench_json(out: &SweepOutcome) -> String {
    let mut wall_by_job: BTreeMap<(&str, &str), f64> = BTreeMap::new();
    for t in &out.timings {
        wall_by_job.insert((t.network.as_str(), t.repr.as_str()), t.wall_ms);
    }
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(body, "  \"total_wall_ms\": {:.3},", out.total_wall_ms);
    let _ = writeln!(body, "  \"jobs\": {},", out.jobs);
    let _ = writeln!(body, "  \"threads_used\": {},", out.threads_used);
    let _ = writeln!(body, "  \"job_timings\": [");
    for (k, t) in out.timings.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"job\": {}, \"repr\": {}, \"gen_ms\": {:.3}, \"encode_ms\": {:.3}, \"sim_ms\": {:.3}, \"wall_ms\": {:.3}, \"cache\": {}, \"encoded\": {}, \"traffic\": {}}}{}",
            report::json_string(&t.network),
            report::json_string(&t.repr),
            t.gen_ms,
            t.encode_ms,
            t.sim_ms,
            t.wall_ms,
            report::json_string(&t.cache),
            report::json_string(&t.encoded),
            report::json_string(&t.traffic),
            if k + 1 == out.timings.len() { "" } else { "," }
        );
    }
    let _ = writeln!(body, "  ],");
    let _ = writeln!(body, "  \"rows\": [");
    for (k, r) in out.rows.iter().enumerate() {
        let wall = wall_by_job.get(&(r.network.as_str(), r.repr.as_str())).copied().unwrap_or(0.0);
        let _ = writeln!(
            body,
            "    {{\"job\": {}, \"repr\": {}, \"engine\": {}, \"cycles\": {}, \"wall_ms\": {:.3}}}{}",
            report::json_string(&r.network),
            report::json_string(&r.repr),
            report::json_string(&r.engine),
            r.cycles,
            wall,
            if k + 1 == out.rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");
    body
}

/// Writes `target/pra-reports/bench.json` (best-effort, like every
/// report). Returns the path on success.
pub fn write_bench_json(out: &SweepOutcome) -> Option<PathBuf> {
    report::write_json("bench", &bench_json(out))
}

/// Per-phase totals parsed back out of a `bench.json` document —
/// the summary `bench_delta` diffs across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTotals {
    /// Jobs contributing to the totals.
    pub jobs: usize,
    /// Workload-tier cache hits among those jobs.
    pub cache_hits: usize,
    /// Encoded-artifact-tier hits among those jobs (0 for pre-v3
    /// documents, which had no encoded tier).
    pub encoded_hits: usize,
    /// Summed workload-generation milliseconds.
    pub gen_ms: f64,
    /// Summed shared-artifact encoding milliseconds.
    pub encode_ms: f64,
    /// Summed engine-simulation milliseconds.
    pub sim_ms: f64,
    /// Summed per-job wall-clock milliseconds.
    pub wall_ms: f64,
    /// The sweep's end-to-end wall clock.
    pub total_wall_ms: f64,
}

/// Extracts the first JSON number following `key` in `line`.
fn json_number_after(line: &str, key: &str) -> Option<f64> {
    let rest = line[line.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `schema_version` a `bench.json` body declares; `None` for
/// pre-versioned documents (PR 2–4 layouts).
pub fn schema_version(body: &str) -> Option<u32> {
    body.lines().find_map(|l| json_number_after(l, "\"schema_version\":")).map(|v| v as u32)
}

/// Warning lines (possibly empty) about the schema versions of two
/// `bench.json` bodies being compared: pre-versioned or mismatched
/// documents still diff — phase keys have been stable since PR 2 — but
/// the reader deserves to know the layouts differ.
pub fn schema_warnings(prev: &str, cur: &str) -> Vec<String> {
    let (p, c) = (schema_version(prev), schema_version(cur));
    let mut warnings = Vec::new();
    let describe = |v: Option<u32>| match v {
        Some(v) => format!("v{v}"),
        None => "pre-versioned".to_string(),
    };
    if p.is_none() || c.is_none() {
        warnings.push(format!(
            "warning: comparing {} against {} bench.json (schema_version was introduced in v{}); \
             phase totals are best-effort",
            describe(p),
            describe(c),
            BENCH_SCHEMA_VERSION,
        ));
    } else if p != c {
        warnings.push(format!(
            "warning: bench.json schema mismatch ({} vs {}); phase totals are best-effort",
            describe(p),
            describe(c),
        ));
    }
    warnings
}

/// Parses the per-phase totals out of a `bench.json` body. Tolerant of
/// older documents (PR 3's format without the `cache` field); `None`
/// when no job timings are recognizable at all.
pub fn phase_totals(body: &str) -> Option<PhaseTotals> {
    let mut t = PhaseTotals {
        jobs: 0,
        cache_hits: 0,
        encoded_hits: 0,
        gen_ms: 0.0,
        encode_ms: 0.0,
        sim_ms: 0.0,
        wall_ms: 0.0,
        total_wall_ms: 0.0,
    };
    for line in body.lines() {
        if let Some(v) = json_number_after(line, "\"total_wall_ms\":") {
            t.total_wall_ms = v;
        }
        // Only job-timing records carry a gen_ms key; the per-row
        // records below them share wall_ms but nothing else.
        if let Some(g) = json_number_after(line, "\"gen_ms\":") {
            t.jobs += 1;
            t.gen_ms += g;
            t.encode_ms += json_number_after(line, "\"encode_ms\":").unwrap_or(0.0);
            t.sim_ms += json_number_after(line, "\"sim_ms\":").unwrap_or(0.0);
            t.wall_ms += json_number_after(line, "\"wall_ms\":").unwrap_or(0.0);
            if line.contains("\"cache\": \"hit\"") {
                t.cache_hits += 1;
            }
            if line.contains("\"encoded\": \"hit\"") {
                t.encoded_hits += 1;
            }
        }
    }
    (t.jobs > 0).then_some(t)
}

/// Renders the per-phase delta table between two `bench.json` bodies
/// (CI prints this against the previous main run, and between the
/// cold and warm halves of the identity gate).
///
/// # Errors
///
/// Returns a message when either body has no recognizable job timings.
pub fn bench_delta(prev: &str, cur: &str) -> Result<String, String> {
    let p = phase_totals(prev).ok_or("previous bench.json: no job timings found")?;
    let c = phase_totals(cur).ok_or("current bench.json: no job timings found")?;
    let mut warnings = schema_warnings(prev, cur).join("\n");
    if !warnings.is_empty() {
        warnings.push('\n');
    }
    let mut table = crate::Table::new(["phase", "prev ms", "cur ms", "delta ms", "ratio"]);
    let mut add = |name: &str, a: f64, b: f64| {
        let ratio = if a > 0.0 { format!("{:.2}x", b / a) } else { "-".to_string() };
        table.row([
            name.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:+.1}", b - a),
            ratio,
        ]);
    };
    add("generation", p.gen_ms, c.gen_ms);
    add("encode", p.encode_ms, c.encode_ms);
    add("simulation", p.sim_ms, c.sim_ms);
    add("job wall (sum)", p.wall_ms, c.wall_ms);
    add("sweep total", p.total_wall_ms, c.total_wall_ms);
    Ok(format!(
        "{}jobs: prev {} ({} cache hits, {} encoded hits), cur {} ({} cache hits, {} encoded hits)\n{}",
        warnings,
        p.jobs,
        p.cache_hits,
        p.encoded_hits,
        c.jobs,
        c.cache_hits,
        c.encoded_hits,
        table.render()
    ))
}

/// The phase-regression soft gate behind `pra bench-delta --gate`:
/// phases whose current total exceeds `max_ratio` × the previous total
/// (e.g. 1.25 = fail on >25% regressions). Guardrails against CI noise:
/// phases under a 50 ms floor are never gated (timer jitter dominates
/// them), and the generation phase is skipped when the two runs saw
/// different workload-cache hit counts (a cold run regressing against a
/// warm one is a cache event, not a perf event — the cold/warm identity
/// gate owns that axis).
///
/// Returns the violation messages, empty when the gate passes.
///
/// # Errors
///
/// Returns a message when either body has no recognizable job timings.
pub fn bench_gate(prev: &str, cur: &str, max_ratio: f64) -> Result<Vec<String>, String> {
    let p = phase_totals(prev).ok_or("previous bench.json: no job timings found")?;
    let c = phase_totals(cur).ok_or("current bench.json: no job timings found")?;
    const NOISE_FLOOR_MS: f64 = 50.0;
    let comparable_cache = p.cache_hits == c.cache_hits && p.jobs == c.jobs;
    let mut violations = Vec::new();
    let phases: [(&str, f64, f64, bool); 5] = [
        ("generation", p.gen_ms, c.gen_ms, comparable_cache),
        ("encode", p.encode_ms, c.encode_ms, true),
        ("simulation", p.sim_ms, c.sim_ms, true),
        ("job wall (sum)", p.wall_ms, c.wall_ms, comparable_cache),
        ("sweep total", p.total_wall_ms, c.total_wall_ms, comparable_cache),
    ];
    for (name, prev_ms, cur_ms, gated) in phases {
        if !gated || prev_ms < NOISE_FLOOR_MS {
            continue;
        }
        if cur_ms > prev_ms * max_ratio {
            violations.push(format!(
                "phase '{name}' regressed {:.2}x ({prev_ms:.1} ms -> {cur_ms:.1} ms, gate {max_ratio:.2}x)",
                cur_ms / prev_ms,
            ));
        }
    }
    Ok(violations)
}

/// Cross-network geometric-mean speedup per `(representation, engine)`,
/// in first-appearance order — the paper's "geo" summary bars.
pub fn geomean_summary(rows: &[SweepRow]) -> Vec<(String, String, f64)> {
    // One pass: an ordered map accumulates per-key speedups while a side
    // vector remembers first-appearance order (the old implementation
    // rescanned a key vector per row and refiltered all rows per key —
    // O(n²) both ways).
    let mut order: Vec<(String, String)> = Vec::new();
    let mut acc: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for r in rows {
        let key = (r.repr.clone(), r.engine.clone());
        match acc.entry(key) {
            Entry::Vacant(e) => {
                order.push(e.key().clone());
                e.insert(vec![r.speedup]);
            }
            Entry::Occupied(mut e) => e.get_mut().push(r.speedup),
        }
    }
    order
        .into_iter()
        .map(|key| {
            let g = geomean(&acc[&key]);
            (key.0, key.1, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    use pra_workloads::cache::ArtifactKind;

    /// A small deterministic sweep that still exercises every engine:
    /// two networks, one representation, sampled fidelity. The store is
    /// diskless so these tests never couple to on-disk state; the
    /// dedicated cache tests below cover the tiered path with scratch
    /// dirs.
    fn small_config(parallel: bool) -> SweepConfig {
        SweepConfig {
            networks: vec![Network::AlexNet, Network::NiN],
            representations: vec![Representation::Fixed16],
            seed: 0x00DE_C0DE,
            fidelity: Fidelity::Sampled { max_pallets: 4 },
            parallel,
            store: ArtifactStore::at_default().no_disk(),
        }
    }

    /// A scratch cache directory unique to this test run.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 + d.as_secs());
        std::env::temp_dir().join(format!("pra-sweep-{tag}-{}-{nanos}", std::process::id()))
    }

    /// An all-tier store over a scratch directory.
    fn scratch_store(dir: &std::path::Path) -> ArtifactStore {
        ArtifactStore::new(dir)
            .tier(ArtifactKind::Workload)
            .tier(ArtifactKind::Traffic)
            .tier(ArtifactKind::Encoded)
    }

    fn sort_key(r: &SweepRow) -> (String, String, String) {
        (r.network.clone(), r.repr.clone(), r.engine.clone())
    }

    #[test]
    fn every_network_gets_a_row_for_every_engine() {
        let out = run_sweep(&small_config(true));
        assert_eq!(out.jobs, 2);
        let engines = engine_labels(Representation::Fixed16);
        assert_eq!(out.rows.len(), 2 * engines.len());
        for net in ["Alexnet", "NiN"] {
            for engine in &engines {
                let row = out
                    .rows
                    .iter()
                    .find(|r| r.network == net && &r.engine == engine)
                    .unwrap_or_else(|| panic!("missing row {net}/{engine}"));
                assert!(row.cycles > 0, "{net}/{engine} has zero cycles");
                assert!(row.speedup > 0.0);
            }
        }
    }

    #[test]
    fn dadn_rows_have_unit_speedup_and_pra_beats_it() {
        let out = run_sweep(&small_config(true));
        for row in &out.rows {
            if row.engine == "DaDN" {
                assert!((row.speedup - 1.0).abs() < 1e-12);
            }
            if row.engine.starts_with("PRA") {
                assert!(row.speedup > 1.0, "{}: {} not > 1", row.network, row.speedup);
            }
        }
    }

    #[test]
    fn parallel_equals_serial_after_sorting() {
        let par = run_sweep(&small_config(true));
        let ser = run_sweep(&small_config(false));
        let mut par_rows = par.rows;
        let mut ser_rows = ser.rows;
        par_rows.sort_by_key(sort_key);
        ser_rows.sort_by_key(sort_key);
        assert_eq!(par_rows, ser_rows);
    }

    #[test]
    fn parallel_preserves_job_order_even_unsorted() {
        // The shim's parallel map is order-preserving, so the stronger
        // property holds too: identical row order without sorting.
        let par = run_sweep(&small_config(true));
        let ser = run_sweep(&small_config(false));
        assert_eq!(par.rows, ser.rows);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let a = run_sweep(&small_config(true));
        let b = run_sweep(&small_config(true));
        assert_eq!(a.rows, b.rows);
        let mut other = small_config(true);
        other.seed ^= 1;
        let c = run_sweep(&other);
        assert_ne!(a.rows, c.rows, "different seed must change some cycle count");
    }

    #[test]
    fn every_job_reports_a_timing() {
        let out = run_sweep(&small_config(true));
        assert_eq!(out.timings.len(), out.jobs);
        for t in &out.timings {
            assert!(t.wall_ms > 0.0, "{}/{} has zero wall time", t.network, t.repr);
            assert!(t.gen_ms > 0.0, "{}/{} has zero generation time", t.network, t.repr);
            assert!(t.sim_ms > 0.0, "{}/{} has zero simulation time", t.network, t.repr);
            assert!(t.encode_ms >= 0.0);
            // Phases partition the job (small slack for the clock reads).
            assert!(
                t.gen_ms + t.encode_ms + t.sim_ms <= t.wall_ms * 1.01 + 0.1,
                "{}/{}: phases exceed wall",
                t.network,
                t.repr
            );
        }
        assert!(
            out.total_wall_ms >= out.timings.iter().cloned().fold(0.0f64, |m, t| m.max(t.wall_ms))
        );
        assert!(out.threads_used >= 1);
    }

    #[test]
    fn bench_json_contains_every_row_and_the_totals() {
        let out = run_sweep(&small_config(false));
        let body = bench_json(&out);
        assert!(body.contains("\"total_wall_ms\""));
        assert!(body.contains("\"jobs\": 2"));
        for r in &out.rows {
            assert!(body.contains(&format!("\"engine\": \"{}\"", r.engine)), "{}", r.engine);
            assert!(body.contains(&format!("\"cycles\": {}", r.cycles)));
        }
        // One record per row plus one per job timing, each carrying a
        // wall clock; phase keys and the cache outcome appear once per
        // job.
        assert_eq!(body.matches("\"wall_ms\"").count(), out.rows.len() + out.jobs);
        assert_eq!(body.matches("\"job\"").count(), out.rows.len() + out.jobs);
        assert_eq!(body.matches("\"gen_ms\"").count(), out.jobs);
        assert_eq!(body.matches("\"encode_ms\"").count(), out.jobs);
        assert_eq!(body.matches("\"sim_ms\"").count(), out.jobs);
        assert_eq!(body.matches("\"cache\"").count(), out.jobs);
        assert_eq!(body.matches("\"encoded\"").count(), out.jobs);
        assert_eq!(body.matches("\"traffic\"").count(), out.jobs);
    }

    #[test]
    fn warm_sweep_hits_every_tier_with_identical_rows() {
        let dir = scratch_dir("warm");
        let mut cfg = small_config(true);
        cfg.store = scratch_store(&dir);
        let cold = run_sweep(&cfg);
        assert!(
            cold.timings.iter().all(|t| t.cache == "miss" && t.encoded == "miss"),
            "fresh dir must miss every tier: {:?}",
            cold.timings.iter().map(|t| (t.cache.as_str(), t.encoded.as_str())).collect::<Vec<_>>()
        );
        let warm = run_sweep(&cfg);
        assert!(
            warm.timings
                .iter()
                .all(|t| t.cache == "hit" && t.encoded == "hit" && t.traffic == "hit"),
            "second sweep must hit every tier: {:?}",
            warm.timings
                .iter()
                .map(|t| (t.cache.as_str(), t.encoded.as_str(), t.traffic.as_str()))
                .collect::<Vec<_>>()
        );
        assert_eq!(cold.rows, warm.rows, "cached artifacts must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_and_uncached_sweeps_agree() {
        let dir = scratch_dir("agree");
        let mut cached_cfg = small_config(true);
        cached_cfg.store = scratch_store(&dir);
        let cached = run_sweep(&cached_cfg);
        // Run the cached config twice so the second pass consumes every
        // tier — warm artifacts must not change a single row either.
        let warm = run_sweep(&cached_cfg);
        let uncached = run_sweep(&small_config(true));
        assert_eq!(cached.rows, uncached.rows, "the store must not change any result");
        assert_eq!(warm.rows, uncached.rows, "warm tiers must not change any result");
        for t in &uncached.timings {
            assert_eq!(t.cache, "off");
            assert_eq!(t.encoded, "off");
            assert_eq!(t.traffic, "off");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_totals_and_delta_read_bench_json() {
        let out = run_sweep(&small_config(false));
        let body = bench_json(&out);
        let t = phase_totals(&body).expect("bench.json must parse");
        assert_eq!(t.jobs, out.jobs);
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.encoded_hits, 0);
        let sum_gen: f64 = out.timings.iter().map(|j| j.gen_ms).sum();
        assert!((t.gen_ms - sum_gen).abs() < 0.01, "{} vs {}", t.gen_ms, sum_gen);
        assert!((t.total_wall_ms - out.total_wall_ms).abs() < 0.01);

        let delta = bench_delta(&body, &body).expect("self-delta");
        assert!(delta.contains("generation"));
        assert!(delta.contains("sweep total"));
        assert!(delta.contains("1.00x"), "self-delta ratios must be 1.00x:\n{delta}");
        assert!(bench_delta("{}", &body).is_err());
    }

    #[test]
    fn bench_json_is_version_stamped() {
        let out = run_sweep(&small_config(false));
        let body = bench_json(&out);
        assert_eq!(schema_version(&body), Some(BENCH_SCHEMA_VERSION));
        assert!(schema_version("{\"jobs\": 2}").is_none(), "pre-versioned docs have no version");
    }

    #[test]
    fn schema_warnings_flag_preversioned_and_mismatched_docs() {
        let out = run_sweep(&small_config(false));
        let body = bench_json(&out);
        assert!(schema_warnings(&body, &body).is_empty(), "same version, no warning");
        let old = "{\n  \"total_wall_ms\": 1.0,\n  \"job_timings\": []\n}";
        let w = schema_warnings(old, &body);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("pre-versioned"), "{w:?}");
        let future = body.replace(
            &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
            "\"schema_version\": 99",
        );
        let w = schema_warnings(&body, &future);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("mismatch"), "{w:?}");
        // bench_delta surfaces the warning but still renders the table.
        let old_with_jobs = old.replace(
            "\"job_timings\": []",
            "\"job_timings\": [\n    {\"gen_ms\": 100.0, \"sim_ms\": 100.0, \"wall_ms\": 200.0}\n  ]",
        );
        let delta = bench_delta(&old_with_jobs, &body).expect("tolerant of pre-versioned");
        assert!(delta.contains("warning:"), "{delta}");
        assert!(delta.contains("sweep total"));
    }

    #[test]
    fn gate_passes_self_and_fails_large_regressions() {
        let mk = |gen: f64, sim: f64, hits: usize| {
            let cache = if hits > 0 { "hit" } else { "miss" };
            format!(
                "{{\n  \"schema_version\": 2,\n  \"total_wall_ms\": {t},\n  \"job_timings\": [\n    \
                 {{\"gen_ms\": {gen:.1}, \"encode_ms\": 60.0, \"sim_ms\": {sim:.1}, \
                 \"wall_ms\": {t}, \"cache\": \"{cache}\"}}\n  ]\n}}\n",
                t = gen + sim + 60.0,
            )
        };
        let base = mk(100.0, 400.0, 0);
        assert!(bench_gate(&base, &base, 1.25).unwrap().is_empty(), "self-gate passes");
        // A 2x simulation regression trips the gate.
        let slow = mk(100.0, 800.0, 0);
        let v = bench_gate(&base, &slow, 1.25).unwrap();
        assert!(v.iter().any(|m| m.contains("simulation") && m.contains("2.00x")), "{v:?}");
        // The same regression is fine under a 3x gate.
        assert!(bench_gate(&base, &slow, 3.0).unwrap().is_empty());
        // Generation is not gated when the cache-hit counts differ …
        let cold_gen = mk(500.0, 400.0, 0);
        let warm = mk(100.0, 400.0, 1);
        let v = bench_gate(&warm, &cold_gen, 1.25).unwrap();
        assert!(!v.iter().any(|m| m.contains("generation")), "{v:?}");
        // … but still gated when they agree.
        let v = bench_gate(&base, &cold_gen, 1.25).unwrap();
        assert!(v.iter().any(|m| m.contains("generation")), "{v:?}");
        // Sub-floor phases never trip: encode stays at 60 ms here, and a
        // tiny base makes every phase sub-floor.
        let tiny = mk(1.0, 2.0, 0);
        let tiny_slow = mk(4.0, 8.0, 0);
        assert!(bench_gate(&tiny, &tiny_slow, 1.25).unwrap().is_empty(), "noise floor holds");
        assert!(bench_gate("{}", &base, 1.25).is_err());
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let out = run_sweep(&small_config(true));
        for row in csv_rows(&out.rows) {
            assert_eq!(row.len(), CSV_HEADER.len());
        }
    }

    #[test]
    fn geomean_summary_covers_each_engine_once() {
        let out = run_sweep(&small_config(true));
        let summary = geomean_summary(&out.rows);
        let engines = engine_labels(Representation::Fixed16);
        assert_eq!(summary.len(), engines.len());
        for (_, _, g) in summary {
            assert!(g > 0.0);
        }
    }
}
