//! Rayon-parallel multi-network sweep — the batch runner behind
//! `pra sweep`.
//!
//! One *job* is a `(network, representation)` pair, structured around
//! build-once shared artifacts (DESIGN.md §8): the job generates the
//! calibrated workload once (parallel row jobs), builds one
//! [`SharedEncodedNetwork`] covering every PRA design point (one mask
//! encoding, one schedule memo per scheduler configuration, one NM/SB
//! traffic count), and then hands borrowed `LayerView`s plus the shared
//! artifacts to every engine — nothing is re-encoded or recounted per
//! design point. Jobs are independent, so the sweep fans them out across
//! a work-stealing thread pool and collects the per-engine speedup rows
//! in a deterministic order (input order is preserved by the parallel
//! map; every job is seeded independently of scheduling). This is the
//! first step on the ROADMAP path toward batched, heavy-traffic
//! simulation serving: the driver is the shape a request batch would
//! take, with the CSV standing in for the response.
//!
//! Results land in one consolidated CSV under `target/pra-reports/`
//! via [`crate::report`]; per-phase job timings (generation / encoding /
//! simulation) land in `bench.json` so bottleneck hunts can read the
//! trajectory instead of re-profiling.

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use rayon::prelude::*;

use pra_core::{Fidelity, PraConfig, SharedEncodedNetwork};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::{LayerView, Network, NetworkWorkload, Representation};

use crate::report;

/// What to sweep. [`SweepConfig::full`] is the `pra sweep` default:
/// every network, both representations, the shared bench seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Networks to evaluate.
    pub networks: Vec<Network>,
    /// Representations to evaluate each network under.
    pub representations: Vec<Representation>,
    /// Workload generation seed (jobs derive per-layer seeds from it).
    pub seed: u64,
    /// Simulation fidelity for the cycle-level engines.
    pub fidelity: Fidelity,
    /// Run jobs on the parallel pool (`false` forces the serial path;
    /// results are identical, only scheduling differs).
    pub parallel: bool,
}

impl SweepConfig {
    /// The full paper sweep: all six networks x both representations.
    pub fn full() -> Self {
        Self {
            networks: Network::ALL.to_vec(),
            representations: vec![Representation::Fixed16, Representation::Quant8],
            seed: crate::SEED,
            fidelity: crate::fidelity(),
            parallel: true,
        }
    }
}

/// One engine's result on one `(network, representation)` job.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Network name, e.g. `"Alexnet"`.
    pub network: String,
    /// Representation label: `"fp16"` or `"quant8"`.
    pub repr: String,
    /// Engine label, e.g. `"DaDN"`, `"Stripes"`, `"PRA-2b"`.
    pub engine: String,
    /// Total cycles over the convolutional stack.
    pub cycles: u64,
    /// Total effectual terms processed.
    pub terms: u64,
    /// Speedup over the DaDianNao baseline of the same job (1.0 for
    /// DaDN itself).
    pub speedup: f64,
}

/// Wall-clock telemetry for one `(network, representation)` job, split
/// by phase so bottleneck hunts can read `bench.json` instead of
/// re-profiling: workload generation, shared-artifact encoding, and
/// engine simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTiming {
    /// Network name, e.g. `"Alexnet"`.
    pub network: String,
    /// Representation label: `"fp16"` or `"quant8"`.
    pub repr: String,
    /// Milliseconds generating the calibrated workload (including the
    /// first-use calibration fit on whichever job triggers it).
    pub gen_ms: f64,
    /// Milliseconds building the shared artifacts: mask encodings,
    /// schedule memos, engine-independent traffic counters.
    pub encode_ms: f64,
    /// Milliseconds running every engine against the shared artifacts.
    pub sim_ms: f64,
    /// Wall-clock milliseconds for the whole job, as observed on its
    /// worker thread. Jobs running concurrently contend for cores (and
    /// the cycle simulator itself parallelizes over pallets), so per-job
    /// numbers are comparable *within* a run; cross-run trends should
    /// use [`SweepOutcome::total_wall_ms`].
    pub wall_ms: f64,
}

/// A completed sweep: the rows plus scheduling and timing telemetry.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One row per job x engine, in job order (networks outer,
    /// representations inner) with engines in [`engine_labels`] order.
    pub rows: Vec<SweepRow>,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Distinct worker threads observed while running jobs.
    pub threads_used: usize,
    /// Per-job wall-clock timings, in job order.
    pub timings: Vec<JobTiming>,
    /// Wall-clock milliseconds for the whole sweep (including the fan-out
    /// overhead the per-job timings cannot see).
    pub total_wall_ms: f64,
}

/// Short, CSV-stable label for a representation.
pub fn repr_label(repr: Representation) -> &'static str {
    match repr {
        Representation::Fixed16 => "fp16",
        Representation::Quant8 => "quant8",
    }
}

/// The PRA configurations the sweep evaluates, in row order.
fn pra_configs(repr: Representation, fidelity: Fidelity) -> Vec<PraConfig> {
    vec![
        PraConfig::two_stage(2, repr).with_fidelity(fidelity),
        PraConfig::single_stage(repr).with_fidelity(fidelity),
        PraConfig::per_column(1, repr).with_fidelity(fidelity),
    ]
}

/// Engine labels in the order each job emits its rows.
pub fn engine_labels(repr: Representation) -> Vec<String> {
    let mut labels = vec!["DaDN".to_string(), "Stripes".to_string()];
    labels.extend(pra_configs(repr, Fidelity::Full).iter().map(PraConfig::label));
    labels
}

/// Runs the sweep described by `cfg` and returns every row.
pub fn run_sweep(cfg: &SweepConfig) -> SweepOutcome {
    let jobs: Vec<(Network, Representation)> = cfg
        .networks
        .iter()
        .flat_map(|&net| cfg.representations.iter().map(move |&repr| (net, repr)))
        .collect();
    let n_jobs = jobs.len();

    // Lock-free distinct-thread telemetry: each thread keeps the set of
    // sweep epochs it has been counted in (thread-local, so uncontended)
    // and bumps a relaxed shared counter at most once per sweep — no
    // mutex on the job hot path, correct across repeated sweeps on reused
    // pool threads, and robust to several sweeps interleaving on the same
    // worker (e.g. parallel test runs on a shared global pool).
    static SWEEP_EPOCH: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static COUNTED_EPOCHS: RefCell<HashSet<u64>> = RefCell::new(HashSet::new());
    }
    let epoch = SWEEP_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let threads_used = AtomicUsize::new(0);

    let sweep_start = Instant::now();
    let run_job = |(net, repr): (Network, Representation)| -> (Vec<SweepRow>, JobTiming) {
        COUNTED_EPOCHS.with(|c| {
            if c.borrow_mut().insert(epoch) {
                threads_used.fetch_add(1, Ordering::Relaxed);
            }
        });
        let start = Instant::now();
        let ms = |from: Instant| from.elapsed().as_secs_f64() * 1e3;
        let chip = ChipConfig::dadn();

        // Phase 1 — generate the workload exactly once (parallel row
        // jobs inside; bit-identical to serial generation).
        let workload = NetworkWorkload::build(net, repr, cfg.seed);
        let gen_ms = ms(start);

        // Phase 2 — build the shared artifacts exactly once: mask
        // encodings, schedule memos and the engine-independent traffic
        // counters every engine below borrows.
        let encode_start = Instant::now();
        let configs = pra_configs(repr, cfg.fidelity);
        let shared = SharedEncodedNetwork::from_workload(&configs, &workload);
        let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
        let encode_ms = ms(encode_start);

        // Phase 3 — every engine consumes borrowed views plus the shared
        // artifacts; nothing is re-encoded per design point. The
        // baseline engines' dispatchers use the default NM layout; the
        // checked view hands back counters only if that matches.
        let sim_start = Instant::now();
        let traffic = shared.traffic_view(&chip, Default::default(), repr);
        let base = dadn::run_views(&chip, &views, repr, traffic);
        let mut rows = Vec::with_capacity(2 + configs.len());
        let mut push = |engine: String, result: &pra_sim::RunResult| {
            rows.push(SweepRow {
                network: net.name().to_string(),
                repr: repr_label(repr).to_string(),
                engine,
                cycles: result.total_cycles(),
                terms: result.total_terms(),
                speedup: result.speedup_over(&base),
            });
        };
        push("DaDN".to_string(), &base);
        push("Stripes".to_string(), &stripes::run_views(&chip, &views, repr, traffic));
        for pra_cfg in configs {
            push(pra_cfg.label(), &pra_core::run_shared(&pra_cfg, &workload, &shared));
        }
        let sim_ms = ms(sim_start);

        let timing = JobTiming {
            network: net.name().to_string(),
            repr: repr_label(repr).to_string(),
            gen_ms,
            encode_ms,
            sim_ms,
            wall_ms: ms(start),
        };
        (rows, timing)
    };

    let nested: Vec<(Vec<SweepRow>, JobTiming)> = if cfg.parallel {
        jobs.into_par_iter().map(run_job).collect()
    } else {
        jobs.into_iter().map(run_job).collect()
    };
    let total_wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    let mut rows = Vec::new();
    let mut timings = Vec::with_capacity(n_jobs);
    for (job_rows, timing) in nested {
        rows.extend(job_rows);
        timings.push(timing);
    }
    SweepOutcome {
        rows,
        jobs: n_jobs,
        threads_used: threads_used.into_inner(),
        timings,
        total_wall_ms,
    }
}

/// The consolidated CSV header, matching [`csv_rows`].
pub const CSV_HEADER: [&str; 6] = ["network", "repr", "engine", "cycles", "terms", "speedup"];

/// Stringifies rows for [`report::write_csv`].
pub fn csv_rows(rows: &[SweepRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.repr.clone(),
                r.engine.clone(),
                r.cycles.to_string(),
                r.terms.to_string(),
                format!("{:.4}", r.speedup),
            ]
        })
        .collect()
}

/// Writes the consolidated sweep CSV (`target/pra-reports/sweep.csv`).
/// Returns the path on success (best-effort, like every report).
pub fn write_report(rows: &[SweepRow]) -> Option<PathBuf> {
    report::write_csv("sweep", &CSV_HEADER, &csv_rows(rows))
}

/// Renders the machine-readable perf report: per-job phase timings
/// (generation / encoding / simulation), one record per job x engine
/// with the job's wall-clock, plus sweep-level totals. This is the file
/// future PRs diff against to keep the perf trajectory visible.
pub fn bench_json(out: &SweepOutcome) -> String {
    let mut wall_by_job: HashMap<(&str, &str), f64> = HashMap::new();
    for t in &out.timings {
        wall_by_job.insert((t.network.as_str(), t.repr.as_str()), t.wall_ms);
    }
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"total_wall_ms\": {:.3},", out.total_wall_ms);
    let _ = writeln!(body, "  \"jobs\": {},", out.jobs);
    let _ = writeln!(body, "  \"threads_used\": {},", out.threads_used);
    let _ = writeln!(body, "  \"job_timings\": [");
    for (k, t) in out.timings.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"job\": {}, \"repr\": {}, \"gen_ms\": {:.3}, \"encode_ms\": {:.3}, \"sim_ms\": {:.3}, \"wall_ms\": {:.3}}}{}",
            report::json_string(&t.network),
            report::json_string(&t.repr),
            t.gen_ms,
            t.encode_ms,
            t.sim_ms,
            t.wall_ms,
            if k + 1 == out.timings.len() { "" } else { "," }
        );
    }
    let _ = writeln!(body, "  ],");
    let _ = writeln!(body, "  \"rows\": [");
    for (k, r) in out.rows.iter().enumerate() {
        let wall = wall_by_job.get(&(r.network.as_str(), r.repr.as_str())).copied().unwrap_or(0.0);
        let _ = writeln!(
            body,
            "    {{\"job\": {}, \"repr\": {}, \"engine\": {}, \"cycles\": {}, \"wall_ms\": {:.3}}}{}",
            report::json_string(&r.network),
            report::json_string(&r.repr),
            report::json_string(&r.engine),
            r.cycles,
            wall,
            if k + 1 == out.rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");
    body
}

/// Writes `target/pra-reports/bench.json` (best-effort, like every
/// report). Returns the path on success.
pub fn write_bench_json(out: &SweepOutcome) -> Option<PathBuf> {
    report::write_json("bench", &bench_json(out))
}

/// Cross-network geometric-mean speedup per `(representation, engine)`,
/// in first-appearance order — the paper's "geo" summary bars.
pub fn geomean_summary(rows: &[SweepRow]) -> Vec<(String, String, f64)> {
    // One pass: a hash map accumulates per-key speedups while a side
    // vector remembers first-appearance order (the old implementation
    // rescanned a key vector per row and refiltered all rows per key —
    // O(n²) both ways).
    let mut order: Vec<(String, String)> = Vec::new();
    let mut acc: HashMap<(String, String), Vec<f64>> = HashMap::new();
    for r in rows {
        let key = (r.repr.clone(), r.engine.clone());
        match acc.entry(key) {
            Entry::Vacant(e) => {
                order.push(e.key().clone());
                e.insert(vec![r.speedup]);
            }
            Entry::Occupied(mut e) => e.get_mut().push(r.speedup),
        }
    }
    order
        .into_iter()
        .map(|key| {
            let g = geomean(&acc[&key]);
            (key.0, key.1, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic sweep that still exercises every engine:
    /// two networks, one representation, sampled fidelity.
    fn small_config(parallel: bool) -> SweepConfig {
        SweepConfig {
            networks: vec![Network::AlexNet, Network::NiN],
            representations: vec![Representation::Fixed16],
            seed: 0x00DE_C0DE,
            fidelity: Fidelity::Sampled { max_pallets: 4 },
            parallel,
        }
    }

    fn sort_key(r: &SweepRow) -> (String, String, String) {
        (r.network.clone(), r.repr.clone(), r.engine.clone())
    }

    #[test]
    fn every_network_gets_a_row_for_every_engine() {
        let out = run_sweep(&small_config(true));
        assert_eq!(out.jobs, 2);
        let engines = engine_labels(Representation::Fixed16);
        assert_eq!(out.rows.len(), 2 * engines.len());
        for net in ["Alexnet", "NiN"] {
            for engine in &engines {
                let row = out
                    .rows
                    .iter()
                    .find(|r| r.network == net && &r.engine == engine)
                    .unwrap_or_else(|| panic!("missing row {net}/{engine}"));
                assert!(row.cycles > 0, "{net}/{engine} has zero cycles");
                assert!(row.speedup > 0.0);
            }
        }
    }

    #[test]
    fn dadn_rows_have_unit_speedup_and_pra_beats_it() {
        let out = run_sweep(&small_config(true));
        for row in &out.rows {
            if row.engine == "DaDN" {
                assert!((row.speedup - 1.0).abs() < 1e-12);
            }
            if row.engine.starts_with("PRA") {
                assert!(row.speedup > 1.0, "{}: {} not > 1", row.network, row.speedup);
            }
        }
    }

    #[test]
    fn parallel_equals_serial_after_sorting() {
        let par = run_sweep(&small_config(true));
        let ser = run_sweep(&small_config(false));
        let mut par_rows = par.rows;
        let mut ser_rows = ser.rows;
        par_rows.sort_by_key(sort_key);
        ser_rows.sort_by_key(sort_key);
        assert_eq!(par_rows, ser_rows);
    }

    #[test]
    fn parallel_preserves_job_order_even_unsorted() {
        // The shim's parallel map is order-preserving, so the stronger
        // property holds too: identical row order without sorting.
        let par = run_sweep(&small_config(true));
        let ser = run_sweep(&small_config(false));
        assert_eq!(par.rows, ser.rows);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let a = run_sweep(&small_config(true));
        let b = run_sweep(&small_config(true));
        assert_eq!(a.rows, b.rows);
        let mut other = small_config(true);
        other.seed ^= 1;
        let c = run_sweep(&other);
        assert_ne!(a.rows, c.rows, "different seed must change some cycle count");
    }

    #[test]
    fn every_job_reports_a_timing() {
        let out = run_sweep(&small_config(true));
        assert_eq!(out.timings.len(), out.jobs);
        for t in &out.timings {
            assert!(t.wall_ms > 0.0, "{}/{} has zero wall time", t.network, t.repr);
            assert!(t.gen_ms > 0.0, "{}/{} has zero generation time", t.network, t.repr);
            assert!(t.sim_ms > 0.0, "{}/{} has zero simulation time", t.network, t.repr);
            assert!(t.encode_ms >= 0.0);
            // Phases partition the job (small slack for the clock reads).
            assert!(
                t.gen_ms + t.encode_ms + t.sim_ms <= t.wall_ms * 1.01 + 0.1,
                "{}/{}: phases exceed wall",
                t.network,
                t.repr
            );
        }
        assert!(
            out.total_wall_ms >= out.timings.iter().cloned().fold(0.0f64, |m, t| m.max(t.wall_ms))
        );
        assert!(out.threads_used >= 1);
    }

    #[test]
    fn bench_json_contains_every_row_and_the_totals() {
        let out = run_sweep(&small_config(false));
        let body = bench_json(&out);
        assert!(body.contains("\"total_wall_ms\""));
        assert!(body.contains("\"jobs\": 2"));
        for r in &out.rows {
            assert!(body.contains(&format!("\"engine\": \"{}\"", r.engine)), "{}", r.engine);
            assert!(body.contains(&format!("\"cycles\": {}", r.cycles)));
        }
        // One record per row plus one per job timing, each carrying a
        // wall clock; phase keys appear once per job.
        assert_eq!(body.matches("\"wall_ms\"").count(), out.rows.len() + out.jobs);
        assert_eq!(body.matches("\"job\"").count(), out.rows.len() + out.jobs);
        assert_eq!(body.matches("\"gen_ms\"").count(), out.jobs);
        assert_eq!(body.matches("\"encode_ms\"").count(), out.jobs);
        assert_eq!(body.matches("\"sim_ms\"").count(), out.jobs);
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let out = run_sweep(&small_config(true));
        for row in csv_rows(&out.rows) {
            assert_eq!(row.len(), CSV_HEADER.len());
        }
    }

    #[test]
    fn geomean_summary_covers_each_engine_once() {
        let out = run_sweep(&small_config(true));
        let summary = geomean_summary(&out.rows);
        let engines = engine_labels(Representation::Fixed16);
        assert_eq!(summary.len(), engines.len());
        for (_, _, g) in summary {
            assert!(g > 0.0);
        }
    }
}
