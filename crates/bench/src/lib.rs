//! Reproduction harness shared by the per-table/per-figure bench targets.
//!
//! Every quantitative table and figure of the paper's evaluation has a
//! bench target (`cargo bench -p pra-bench --bench <id>`) that regenerates
//! it and prints paper-vs-measured rows; see DESIGN.md §4 for the index.
//! This library provides the shared machinery: deterministic seeds,
//! simulation fidelity, parallel workload construction, and aligned table
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod sweep;

use std::fmt::Write as _;

use pra_core::Fidelity;
use pra_workloads::{Network, NetworkWorkload, Representation};
use rayon::prelude::*;

/// Deterministic seed shared by all reproduction benches.
pub const SEED: u64 = 0x90AD_57EE_1234_5678;

/// Simulation fidelity used by the cycle-level benches: **full** by
/// default — every pallet of every layer is simulated, so the bench
/// tables are the paper-comparable numbers with no sampling error. The
/// escape hatch for constrained machines is `PRA_BENCH_PALLETS=<n>`
/// (deterministically spaced sampling, converges within a couple of
/// percent by 64 pallets/layer); `PRA_BENCH_PALLETS=full` spells the
/// default explicitly.
pub fn fidelity() -> Fidelity {
    match std::env::var("PRA_BENCH_PALLETS").ok().as_deref() {
        None | Some("full") => Fidelity::Full,
        Some(n) => Fidelity::Sampled { max_pallets: n.parse().unwrap_or(64) },
    }
}

/// Builds the workloads for all six networks on the rayon pool (each
/// build additionally fans its row-generation jobs out, so small
/// networks do not serialize behind VGG-19).
pub fn build_workloads(repr: Representation) -> Vec<NetworkWorkload> {
    Network::ALL.par_iter().map(|&net| NetworkWorkload::build(net, repr, SEED)).collect()
}

/// Runs `f` once per network workload, in parallel, preserving order.
pub fn per_network<R: Send>(
    workloads: &[NetworkWorkload],
    f: impl Fn(&NetworkWorkload) -> R + Sync,
) -> Vec<R> {
    workloads.par_iter().map(&f).collect()
}

/// An aligned text table for paper-vs-measured reporting.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        fn line(out: &mut String, cells: &[String], widths: &[usize]) {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        }
        let mut out = String::new();
        line(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===\n{}", self.render());
    }

    /// Prints the table and also drops it as `target/pra-reports/<id>.csv`.
    pub fn print_and_save(&self, title: &str, id: &str) {
        self.print(title);
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        let _ = report::write_csv(id, &header, &self.rows);
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"12.7%"`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a speedup/ratio with two decimals and an `x`, e.g. `"2.59x"`.
pub fn times(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a paper-vs-measured pair as `measured (paper)`.
pub fn vs(measured: &str, paper: &str) -> String {
    format!("{measured} ({paper})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["net", "value"]);
        t.row(["Alexnet", "1.0"]).row(["VGG19", "12.75"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("net"));
        assert!(lines[3].ends_with("12.75"));
        // Columns align right.
        assert_eq!(lines[2].find("1.0").map(|i| i + 3), lines[3].find("12.75").map(|i| i + 5));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.127), "12.7%");
        assert_eq!(times(2.591), "2.59x");
        assert_eq!(vs("2.43x", "2.59x"), "2.43x (2.59x)");
    }

    #[test]
    fn fidelity_default_is_full() {
        match fidelity() {
            Fidelity::Full => {}
            // The escape hatch may be active in the environment; it must
            // at least parse to a sane pallet budget.
            Fidelity::Sampled { max_pallets } => assert!(max_pallets >= 1),
        }
    }
}
