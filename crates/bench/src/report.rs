//! Machine-readable experiment reports.
//!
//! Every reproduction bench prints a human table *and* drops a CSV under
//! `target/pra-reports/` so results can be plotted or diffed across runs
//! without scraping stdout. Writing is best-effort: a read-only target
//! directory must not fail a bench.

use std::fs;
use std::path::PathBuf;

/// Directory the reports land in (under the workspace `target/`).
pub fn report_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("pra-reports")
}

/// Writes `body` to `target/pra-reports/<filename>` best-effort,
/// printing a `(<label>: path)` note on success — the shared tail of
/// every report writer.
fn write_report_file(filename: &str, label: &str, body: &str) -> Option<PathBuf> {
    let dir = report_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(filename);
    match fs::write(&path, body) {
        Ok(()) => {
            println!("({label}: {})", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("note: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Writes `rows` (with a `header`) to `target/pra-reports/<name>.csv`.
/// Returns the path on success; `None` if the filesystem refused (the
/// failure is printed but not fatal).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                // RFC 4180: quote any cell holding a separator, a quote,
                // or a line break — an unquoted newline would split the
                // record across rows.
                if c.contains([',', '"', '\n', '\r']) {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    write_report_file(&format!("{name}.csv"), "csv", &out)
}

/// Writes a pre-rendered JSON document to `target/pra-reports/<name>.json`.
/// Best-effort like [`write_csv`]; returns the path on success.
pub fn write_json(name: &str, body: &str) -> Option<PathBuf> {
    write_report_file(&format!("{name}.json"), "json", body)
}

/// Writes an arbitrary small text artifact (digest files and the like)
/// to `target/pra-reports/<filename>` — the caller supplies the full
/// file name including its extension. Best-effort like [`write_csv`];
/// returns the path on success.
pub fn write_text(filename: &str, label: &str, body: &str) -> Option<PathBuf> {
    write_report_file(filename, label, body)
}

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writes_json_report() {
        let path = write_json("test_json_report", "{\"ok\":true}\n").expect("writable target");
        assert!(fs::read_to_string(&path).unwrap().contains("\"ok\""));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn writes_and_escapes() {
        let rows = vec![
            vec!["Alexnet".to_string(), "2.59".to_string()],
            vec!["a,b".to_string(), "say \"hi\"".to_string()],
        ];
        let path = write_csv("test_report", &["net", "speedup"], &rows).expect("writable target");
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("net,speedup\n"));
        assert!(body.contains("\"a,b\""));
        assert!(body.contains("\"say \"\"hi\"\"\""));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn quotes_cells_with_line_breaks() {
        let rows = vec![
            vec!["multi\nline".to_string(), "cr\rcell".to_string()],
            vec!["crlf\r\ncell".to_string(), "plain".to_string()],
        ];
        let path = write_csv("test_report_newlines", &["a", "b"], &rows).expect("writable target");
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"multi\nline\""));
        assert!(body.contains("\"cr\rcell\""));
        assert!(body.contains("\"crlf\r\ncell\""));
        // Quoted line breaks keep the logical record count intact: header
        // + 2 records, each terminated by exactly one bare `\n`.
        let logical_rows = body
            .split('"')
            .enumerate()
            .filter(|(i, part)| i % 2 == 0 && !part.is_empty()) // outside quotes
            .map(|(_, part)| part.matches('\n').count())
            .sum::<usize>();
        assert_eq!(logical_rows, 3, "csv body: {body:?}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn report_dir_is_under_target() {
        assert!(report_dir().to_string_lossy().contains("target"));
    }
}
