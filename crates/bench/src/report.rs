//! Machine-readable experiment reports.
//!
//! Every reproduction bench prints a human table *and* drops a CSV under
//! `target/pra-reports/` so results can be plotted or diffed across runs
//! without scraping stdout. Writing is best-effort: a read-only target
//! directory must not fail a bench.

use std::fs;
use std::path::PathBuf;

/// Directory the reports land in (under the workspace `target/`).
pub fn report_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("pra-reports")
}

/// Writes `rows` (with a `header`) to `target/pra-reports/<name>.csv`.
/// Returns the path on success; `None` if the filesystem refused (the
/// failure is printed but not fatal).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = report_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                // RFC 4180: quote any cell holding a separator, a quote,
                // or a line break — an unquoted newline would split the
                // record across rows.
                if c.contains([',', '"', '\n', '\r']) {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    match fs::write(&path, out) {
        Ok(()) => {
            println!("(csv: {})", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("note: could not write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let rows = vec![
            vec!["Alexnet".to_string(), "2.59".to_string()],
            vec!["a,b".to_string(), "say \"hi\"".to_string()],
        ];
        let path = write_csv("test_report", &["net", "speedup"], &rows).expect("writable target");
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("net,speedup\n"));
        assert!(body.contains("\"a,b\""));
        assert!(body.contains("\"say \"\"hi\"\"\""));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn quotes_cells_with_line_breaks() {
        let rows = vec![
            vec!["multi\nline".to_string(), "cr\rcell".to_string()],
            vec!["crlf\r\ncell".to_string(), "plain".to_string()],
        ];
        let path = write_csv("test_report_newlines", &["a", "b"], &rows).expect("writable target");
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"multi\nline\""));
        assert!(body.contains("\"cr\rcell\""));
        assert!(body.contains("\"crlf\r\ncell\""));
        // Quoted line breaks keep the logical record count intact: header
        // + 2 records, each terminated by exactly one bare `\n`.
        let logical_rows = body
            .split('"')
            .enumerate()
            .filter(|(i, part)| i % 2 == 0 && !part.is_empty()) // outside quotes
            .map(|(_, part)| part.matches('\n').count())
            .sum::<usize>();
        assert_eq!(logical_rows, 3, "csv body: {body:?}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn report_dir_is_under_target() {
        assert!(report_dir().to_string_lossy().contains("target"));
    }
}
