//! Per-rule fixture tests: each rule has a firing fixture it must flag
//! and a clean fixture it must pass, checked under a permissive config
//! so scoping never masks a matcher bug. A final test runs the real
//! repo policy over the actual workspace — the tree itself is the
//! ultimate clean fixture.

use std::path::Path;

use pra_lint::config::Config;
use pra_lint::rules::{lint_source, SUPPRESSION_WITHOUT_REASON, UNKNOWN_RULE};
use pra_lint::{lint_workspace, load_config};

/// Lints a fixture under the permissive every-rule-everywhere config.
/// The fixture path deliberately avoids `tests/` so the test-exemption
/// logic stays out of the way.
fn lint_fixture(rule: &str, which: &str, src: &str) -> pra_lint::rules::FileOutcome {
    lint_source(&Config::all_paths(), &format!("fixtures/{rule}/{which}.rs"), src)
}

fn assert_rule_fires(rule: &str, src: &str) {
    let out = lint_fixture(rule, "firing", src);
    assert!(
        out.findings.iter().any(|f| f.rule == rule),
        "{rule}: firing fixture produced no {rule} finding: {:?}",
        out.findings
    );
    assert!(
        out.findings.iter().all(|f| f.rule == rule),
        "{rule}: firing fixture tripped unrelated rules: {:?}",
        out.findings
    );
}

fn assert_clean(rule: &str, src: &str) {
    let out = lint_fixture(rule, "clean", src);
    assert!(
        out.findings.is_empty(),
        "{rule}: clean fixture should pass every rule: {:?}",
        out.findings
    );
}

macro_rules! rule_fixture_tests {
    ($($test:ident => $rule:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                assert_rule_fires(
                    $rule,
                    include_str!(concat!("fixtures/", $rule, "/firing.rs")),
                );
                assert_clean(
                    $rule,
                    include_str!(concat!("fixtures/", $rule, "/clean.rs")),
                );
            }
        )+
    };
}

rule_fixture_tests! {
    deterministic_iteration_fixtures => "deterministic-iteration",
    no_wall_clock_fixtures => "no-wall-clock",
    no_thread_id_fixtures => "no-thread-id",
    serve_no_panic_fixtures => "serve-no-panic",
    relaxed_ordering_comment_fixtures => "relaxed-ordering-comment",
    no_static_mut_fixtures => "no-static-mut",
    unsafe_safety_comment_fixtures => "unsafe-safety-comment",
}

#[test]
fn serve_no_panic_firing_fixture_flags_every_escape_hatch() {
    let out =
        lint_fixture("serve-no-panic", "firing", include_str!("fixtures/serve-no-panic/firing.rs"));
    // unwrap, indexing, panic!, expect, unreachable! — all five sites.
    assert_eq!(out.findings.len(), 5, "{:?}", out.findings);
}

#[test]
fn reasoned_suppression_is_honored() {
    let out = lint_fixture(
        "suppression",
        "with_reason",
        include_str!("fixtures/suppression/with_reason.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed, 1);
}

#[test]
fn chaos_panic_site_suppression_is_honored() {
    // The shape the serving tier's injected worker-panic site uses: a
    // `panic!` under serve-no-panic with a wrapped multi-line reason.
    let out = lint_fixture(
        "suppression",
        "chaos_site",
        include_str!("fixtures/suppression/chaos_site.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed, 1);
}

#[test]
fn reasonless_suppression_fires_twice() {
    let out = lint_fixture(
        "suppression",
        "without_reason",
        include_str!("fixtures/suppression/without_reason.rs"),
    );
    let rules: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"no-wall-clock"), "the violation itself still fires: {rules:?}");
    assert!(rules.contains(&SUPPRESSION_WITHOUT_REASON), "{rules:?}");
    assert_eq!(out.suppressed, 0);
}

#[test]
fn unknown_rule_suppression_is_flagged() {
    let out = lint_fixture(
        "suppression",
        "unknown_rule",
        include_str!("fixtures/suppression/unknown_rule.rs"),
    );
    let rules: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec![UNKNOWN_RULE]);
}

#[test]
fn workspace_is_clean_under_repo_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = load_config(&root, None).expect("config loads");
    let out = lint_workspace(&root, &cfg).expect("workspace walks");
    assert!(
        out.findings.is_empty(),
        "the repo must lint clean under its own policy:\n{}",
        out.findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(out.files_scanned > 40, "walker found only {} files", out.files_scanned);
}
