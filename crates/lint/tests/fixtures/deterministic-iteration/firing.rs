// Fixture: hash containers in a determinism-critical path.
use std::collections::{HashMap, HashSet};

pub fn digest_input() -> Vec<(String, u64)> {
    let m: HashMap<String, u64> = HashMap::new();
    let _seen: HashSet<u64> = HashSet::new();
    m.into_iter().collect()
}
