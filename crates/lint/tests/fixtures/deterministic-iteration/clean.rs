// Fixture: ordered containers keep every traversal deterministic.
use std::collections::{BTreeMap, BTreeSet};

pub fn digest_input() -> Vec<(String, u64)> {
    let m: BTreeMap<String, u64> = BTreeMap::new();
    let _seen: BTreeSet<u64> = BTreeSet::new();
    m.into_iter().collect()
}
