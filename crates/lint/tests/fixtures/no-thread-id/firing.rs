// Fixture: scheduling identity leaking toward a result.
use std::thread::ThreadId;

pub fn worker_key() -> String {
    let id = std::thread::current().id();
    format!("{id:?}")
}

pub fn hold(_id: ThreadId) {}
