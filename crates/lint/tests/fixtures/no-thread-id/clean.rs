// Fixture: workers are identified by an explicit index handed to them
// at spawn time, never by runtime thread identity.
pub fn worker_key(worker_index: usize) -> String {
    format!("worker-{worker_index}")
}
