// Fixture: wall-clock reads in a result path.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _t0 = Instant::now();
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
