// Fixture: results as pure functions of their inputs. Durations may be
// *carried* (they are data), just never sampled here.
use std::time::Duration;

pub fn stamp(epoch: u64, elapsed: Duration) -> u64 {
    epoch.wrapping_add(elapsed.as_secs())
}
