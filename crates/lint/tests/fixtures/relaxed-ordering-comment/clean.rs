// Fixture: relaxed atomics carrying their argument next to the code.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // relaxed-ok: standalone statistics counter; no other memory is
    // published through it, so no ordering edge is needed.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed) // relaxed-ok: display-only telemetry read
}
