// Fixture: the same handler shape, shedding instead of dying.
pub fn handle(line: Option<&str>, parts: &[&str]) -> Result<String, String> {
    let line = line.ok_or("missing request line")?;
    let first = parts.first().ok_or("empty request")?;
    if first.is_empty() {
        return Err("empty field".to_string());
    }
    let n: u32 = line.parse().map_err(|_| "non-numeric field")?;
    if n > 1000 {
        return Err(format!("n={n} exceeds admission bound"));
    }
    Ok(first.to_string())
}
