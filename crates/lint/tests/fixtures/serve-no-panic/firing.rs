// Fixture: every way a request handler can kill its worker.
pub fn handle(line: Option<&str>, parts: &[&str]) -> String {
    let line = line.unwrap();
    let first = parts[0];
    if first.is_empty() {
        panic!("empty field");
    }
    let n: u32 = line.parse().expect("numeric field");
    if n > 1000 {
        unreachable!("admission control bounds n");
    }
    first.to_string()
}
