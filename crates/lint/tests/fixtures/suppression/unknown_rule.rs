// Fixture: a suppression naming a rule that does not exist.

// pra-lint: allow(no-hash-maps): typo of deterministic-iteration
pub fn nothing() {}
