// Fixture: a reasonless suppression — suppresses nothing and is itself
// a finding.
use std::time::Instant;

pub fn sample() -> Instant {
    // pra-lint: allow(no-wall-clock)
    Instant::now()
}
