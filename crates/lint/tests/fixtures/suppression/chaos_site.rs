// Fixture: the chaos worker-panic site shape — a deliberate `panic!`
// inside serve-no-panic territory, justified by a multi-line
// suppression block (the reason wraps, as the real site's does).

pub fn worker_body(fires: bool) {
    if fires {
        // pra-lint: allow(serve-no-panic): deliberate chaos fault site —
        // the panic is the fault being injected, and the supervisor's
        // reclaim path is what the soak test is proving.
        panic!("chaos: injected worker panic");
    }
}
