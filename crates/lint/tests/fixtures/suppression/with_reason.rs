// Fixture: a well-formed suppression — rule named, reason written.
use std::time::Instant;

pub fn sample() -> Instant {
    // pra-lint: allow(no-wall-clock): this fixture models a telemetry
    // module where sampling the clock is the entire point.
    Instant::now()
}
