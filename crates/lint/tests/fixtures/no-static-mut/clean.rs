// Fixture: the sound spelling of a mutable global.
use std::sync::atomic::AtomicU64;

pub static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(0);
