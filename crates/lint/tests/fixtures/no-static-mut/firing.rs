// Fixture: mutable global state, a data race by construction.
pub static mut GLOBAL_EPOCH: u64 = 0;
