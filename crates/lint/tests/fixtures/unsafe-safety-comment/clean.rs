// Fixture: unsafe carrying its soundness argument.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` points to at least one initialized
    // byte for the duration of the call.
    unsafe { *p }
}
