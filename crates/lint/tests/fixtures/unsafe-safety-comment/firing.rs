// Fixture: an unsafe block with no written soundness argument.
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
