//! The rule set: repo-specific invariants clippy cannot express.
//!
//! Every rule matches on the token stream of [`crate::lexer`], so
//! strings and comments can never fire one. Test code (a `tests/`,
//! `benches/` or `examples/` file, a `#[cfg(test)]` module, a `#[test]`
//! function) is exempt from the behavioral rules — a test that unwraps
//! is asserting, not serving — but never from `no-static-mut` or
//! `unsafe-safety-comment`, which guard properties the whole tree must
//! keep.
//!
//! Suppressions are inline comments — the marker `pra-lint:` followed
//! by `allow(<rule>): <reason>` — on the offending line or the
//! comment block directly above it. The reason is mandatory: an allow
//! without one is itself a finding (`suppression-without-reason`), so
//! every exemption in the tree carries its justification next to it.

use crate::config::Config;
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One rule violation (or meta finding about a suppression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `deterministic-iteration`.
    pub rule: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// A rule's identity and scope defaults.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable rule id (used in config sections and suppressions).
    pub id: &'static str,
    /// One-line description for `--list-rules` and the docs.
    pub description: &'static str,
    /// Whether the rule also applies inside test code.
    pub checks_tests: bool,
}

/// Every rule the linter knows, in documentation order.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        id: "deterministic-iteration",
        description: "no HashMap/HashSet in determinism-critical paths; use BTreeMap/BTreeSet \
                      or an explicit sort so no output ever depends on hash-iteration order",
        checks_tests: false,
    },
    RuleSpec {
        id: "no-wall-clock",
        description: "no Instant::now()/SystemTime::now() outside allowlisted telemetry \
                      modules; results must be functions of their inputs, never of time",
        checks_tests: false,
    },
    RuleSpec {
        id: "no-thread-id",
        description: "no std::thread::current().id()/ThreadId outside allowlisted modules; \
                      scheduling identity must never reach a result",
        checks_tests: false,
    },
    RuleSpec {
        id: "serve-no-panic",
        description: "no unwrap/expect/panic!/unguarded indexing in the serve request path; \
                      workers shed or answer typed errors, they never die",
        checks_tests: false,
    },
    RuleSpec {
        id: "relaxed-ordering-comment",
        description: "every Ordering::Relaxed carries a `// relaxed-ok: <why>` justification",
        checks_tests: false,
    },
    RuleSpec {
        id: "no-static-mut",
        description: "no `static mut` anywhere; use atomics or locks",
        checks_tests: true,
    },
    RuleSpec {
        id: "unsafe-safety-comment",
        description: "every `unsafe` carries a `// SAFETY: <why>` justification (the workspace \
                      is currently 100% safe code — keep it that way or argue in writing)",
        checks_tests: true,
    },
];

/// Meta rule id: a suppression comment without a written reason.
pub const SUPPRESSION_WITHOUT_REASON: &str = "suppression-without-reason";
/// Meta rule id: a suppression naming a rule the linter does not know.
pub const UNKNOWN_RULE: &str = "unknown-rule";

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed, reasoned suppression.
    pub suppressed: usize,
}

/// Lints one file's source under `cfg`. `path` is the repo-relative,
/// `/`-separated path used for rule scoping.
pub fn lint_source(cfg: &Config, path: &str, src: &str) -> FileOutcome {
    let lexed = lex(src);
    let file_is_test = path_is_test(path);
    let test_ranges = test_line_ranges(&lexed.toks);
    let in_test =
        |line: u32| file_is_test || test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    for spec in RULES {
        if !cfg.rule(spec.id).applies_to(path) {
            continue;
        }
        let mut hits = match spec.id {
            "deterministic-iteration" => deterministic_iteration(&lexed),
            "no-wall-clock" => no_wall_clock(&lexed),
            "no-thread-id" => no_thread_id(&lexed),
            "serve-no-panic" => serve_no_panic(&lexed),
            "relaxed-ordering-comment" => relaxed_ordering(&lexed),
            "no-static-mut" => static_mut(&lexed),
            "unsafe-safety-comment" => unsafe_without_safety(&lexed),
            _ => Vec::new(),
        };
        hits.retain(|&(line, _)| spec.checks_tests || !in_test(line));
        raw.extend(hits.into_iter().map(|(line, msg)| (line, spec.id, msg)));
    }

    let mut out = FileOutcome::default();
    for (line, rule, message) in raw {
        if suppression_covers(&lexed, line, rule) {
            out.suppressed += 1;
        } else {
            out.findings.push(Finding {
                file: path.to_string(),
                line,
                rule: rule.to_string(),
                message,
            });
        }
    }
    out.findings.extend(malformed_suppressions(&lexed, path));
    out.findings.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    out
}

/// Whether `path` is test-context by location alone.
fn path_is_test(path: &str) -> bool {
    path.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Line ranges covered by `#[test]` functions and `#[cfg(test)]`
/// items (inclusive).
fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let attr_line = toks[i].line;
            let (end, mentions_test) = scan_attribute(toks, i + 1);
            if mentions_test {
                if let Some(close_line) = item_body_close_line(toks, end + 1) {
                    ranges.push((attr_line, close_line));
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// From the `[` at `open`, returns (index of the matching `]`, whether
/// the attribute mentions the ident `test`).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut mentions = false;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i, mentions);
                }
            }
            "test" if toks[i].kind == TokKind::Ident => mentions = true,
            _ => {}
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), mentions)
}

/// Finds the line of the `}` closing the item that starts after an
/// attribute; `None` when the item is brace-less (ends at `;`).
fn item_body_close_line(toks: &[Tok], mut i: usize) -> Option<u32> {
    // Skip further attributes between the test attribute and the item
    // (`#[test] #[ignore] fn …`).
    while i < toks.len() {
        match toks[i].text.as_str() {
            "#" if toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") => {
                let (end, _) = scan_attribute(toks, i + 1);
                i = end + 1;
            }
            ";" => return None,
            "{" => {
                let mut depth = 0usize;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(toks[i].line);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some(toks.last()?.line);
            }
            _ => i += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------
// Matchers
// ---------------------------------------------------------------------

fn texts_at(toks: &[Tok], i: usize, n: usize) -> Option<Vec<&str>> {
    toks.get(i..i + n).map(|w| w.iter().map(|t| t.text.as_str()).collect())
}

fn is_ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn deterministic_iteration(lexed: &Lexed) -> Vec<(u32, String)> {
    lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"))
        .map(|t| {
            (
                t.line,
                format!(
                    "{} in a determinism-critical path: iteration order is randomized per \
                     process; use BTree{} or sort before anything ordered leaves this value",
                    t.text,
                    if t.text == "HashMap" { "Map" } else { "Set" },
                ),
            )
        })
        .collect()
}

fn no_wall_clock(lexed: &Lexed) -> Vec<(u32, String)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        for clock in ["Instant", "SystemTime"] {
            if is_ident(toks, i, clock)
                && texts_at(toks, i + 1, 3).is_some_and(|w| w == [":", ":", "now"])
            {
                out.push((
                    toks[i].line,
                    format!(
                        "{clock}::now() outside the telemetry allowlist: results must be \
                         functions of their inputs, never of when they ran"
                    ),
                ));
            }
        }
    }
    out
}

fn no_thread_id(lexed: &Lexed) -> Vec<(u32, String)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if is_ident(toks, i, "current")
            && texts_at(toks, i + 1, 4).is_some_and(|w| w == ["(", ")", ".", "id"])
        {
            out.push((
                toks[i].line,
                "thread::current().id() outside the allowlist: scheduling identity must \
                 never influence a result"
                    .to_string(),
            ));
        }
        if is_ident(toks, i, "ThreadId") {
            out.push((
                toks[i].line,
                "ThreadId outside the allowlist: scheduling identity must never influence \
                 a result"
                    .to_string(),
            ));
        }
    }
    out
}

fn serve_no_panic(lexed: &Lexed) -> Vec<(u32, String)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap(` / `.expect(` — method calls only, so `unwrap_or`
        // and friends never match.
        if t.text == "."
            && toks.get(i + 1).is_some_and(|x| {
                x.kind == TokKind::Ident && (x.text == "unwrap" || x.text == "expect")
            })
            && toks.get(i + 2).is_some_and(|x| x.text == "(")
        {
            let name = &toks[i + 1].text;
            out.push((
                toks[i + 1].line,
                format!(
                    ".{name}() on the serve request path: a malformed request or poisoned \
                     lock would kill this worker; shed or answer a typed error instead"
                ),
            ));
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|x| x.text == "!")
        {
            out.push((
                t.line,
                format!("{}! on the serve request path: workers must never die", t.text),
            ));
        }
        // Unguarded indexing: `expr[...]`. An index `[` directly follows
        // an ident, `)` or `]`; attribute brackets (`#[…]`, `#![…]`) and
        // macro brackets (`vec![…]`) do not.
        if t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            let indexable = prev.kind == TokKind::Ident
                && !matches!(prev.text.as_str(), "mut" | "in" | "return" | "break" | "as")
                || prev.text == ")"
                || prev.text == "]";
            if indexable {
                out.push((
                    t.line,
                    "unguarded indexing on the serve request path: a bad index panics the \
                     worker; use .get()/.get_mut() and handle None"
                        .to_string(),
                ));
            }
        }
    }
    out
}

fn relaxed_ordering(lexed: &Lexed) -> Vec<(u32, String)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if is_ident(toks, i, "Ordering")
            && texts_at(toks, i + 1, 3).is_some_and(|w| w == [":", ":", "Relaxed"])
            && !comment_context_contains(lexed, toks[i].line, "relaxed-ok:")
        {
            out.push((
                toks[i].line,
                "Ordering::Relaxed without a `// relaxed-ok: <why>` justification: relaxed \
                 atomics are correct only for reasons the code cannot show — write them down"
                    .to_string(),
            ));
        }
    }
    out
}

fn static_mut(lexed: &Lexed) -> Vec<(u32, String)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if is_ident(toks, i, "static") && is_ident(toks, i + 1, "mut") {
            out.push((
                toks[i].line,
                "`static mut` is a data race waiting to happen; use an atomic, a Mutex, or \
                 OnceLock"
                    .to_string(),
            ));
        }
    }
    out
}

fn unsafe_without_safety(lexed: &Lexed) -> Vec<(u32, String)> {
    lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
        .filter(|t| !comment_context_contains(lexed, t.line, "SAFETY:"))
        .map(|t| {
            (
                t.line,
                "`unsafe` without a `// SAFETY: <why>` comment; the workspace is 100% safe \
                 code today — new unsafe must argue its soundness in writing"
                    .to_string(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Comment context: justifications and suppressions
// ---------------------------------------------------------------------

/// Whether `needle` appears in the comments attached to `line`: the
/// trailing comment on the line itself, or the contiguous comment block
/// ending on the line directly above.
fn comment_context_contains(lexed: &Lexed, line: u32, needle: &str) -> bool {
    if lexed.comment_on(line).is_some_and(|c| c.contains(needle)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        match lexed.comment_on(l) {
            Some(c) if c.contains(needle) => return true,
            Some(_) => l -= 1,
            None => break,
        }
    }
    false
}

/// A parsed suppression: `pra-lint:` followed by `allow(<rule>)[: reason]`.
struct Allow<'a> {
    rule: &'a str,
    reason: &'a str,
}

/// Extracts every allow marker from one comment line's text.
fn parse_allows(comment: &str) -> Vec<Allow<'_>> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("pra-lint:") {
        rest = rest[pos + "pra-lint:".len()..].trim_start();
        let Some(after_kw) = rest.strip_prefix("allow") else { continue };
        let after_kw = after_kw.trim_start();
        let Some(inner_start) = after_kw.strip_prefix('(') else { continue };
        let Some(close) = inner_start.find(')') else { continue };
        let rule = inner_start[..close].trim();
        let tail = inner_start[close + 1..].trim_start();
        let reason = match tail.strip_prefix(':') {
            Some(r) => {
                // The reason runs to the next `pra-lint:` marker (rare)
                // or the end of the comment.
                let r = r.trim();
                match r.find("pra-lint:") {
                    Some(next) => r[..next].trim(),
                    None => r,
                }
            }
            None => "",
        };
        out.push(Allow { rule, reason });
        rest = tail;
    }
    out
}

/// Whether a well-formed, reasoned suppression for `rule` covers `line`.
fn suppression_covers(lexed: &Lexed, line: u32, rule: &str) -> bool {
    let honored = |comment: &str| {
        parse_allows(comment)
            .iter()
            .any(|a| a.rule == rule && !a.reason.is_empty() && known_rule(a.rule))
    };
    if lexed.comment_on(line).is_some_and(honored) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        match lexed.comment_on(l) {
            Some(c) if honored(c) => return true,
            Some(_) => l -= 1,
            None => break,
        }
    }
    false
}

fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|s| s.id == rule)
}

/// Meta findings over every suppression in the file: a missing reason
/// and an unknown rule id are both errors wherever they appear —
/// including in test code, since a malformed allow silently suppresses
/// nothing and rots.
fn malformed_suppressions(lexed: &Lexed, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (line, comment) in &lexed.comments {
        for allow in parse_allows(comment) {
            if !known_rule(allow.rule) {
                out.push(Finding {
                    file: path.to_string(),
                    line: *line,
                    rule: UNKNOWN_RULE.to_string(),
                    message: format!(
                        "suppression names unknown rule '{}' (known: {})",
                        allow.rule,
                        RULES.iter().map(|s| s.id).collect::<Vec<_>>().join(", "),
                    ),
                });
            } else if allow.reason.is_empty() {
                out.push(Finding {
                    file: path.to_string(),
                    line: *line,
                    rule: SUPPRESSION_WITHOUT_REASON.to_string(),
                    message: format!(
                        "suppression of '{}' has no reason; write \
                         `pra-lint: allow({}): <why this is sound>`",
                        allow.rule, allow.rule,
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> FileOutcome {
        lint_source(&Config::all_paths(), "lib.rs", src)
    }

    fn rules_of(out: &FileOutcome) -> Vec<&str> {
        out.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_behavioral_rules() {
        let src = "\
            fn prod() { let now = Instant::now(); }\n\
            #[cfg(test)]\n\
            mod tests {\n\
                fn helper() { let x: Option<u32> = None; x.unwrap(); Instant::now(); }\n\
            }\n";
        let out = run(src);
        assert_eq!(rules_of(&out), vec!["no-wall-clock"], "only the production hit survives");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn static_mut_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    static mut EVIL: u32 = 0;\n}\n";
        let out = run(src);
        assert_eq!(rules_of(&out), vec!["no-static-mut"]);
    }

    #[test]
    fn reasoned_suppression_silences_and_counts() {
        let src = "\
            // pra-lint: allow(no-wall-clock): this module is the latency telemetry itself\n\
            fn t() { let now = Instant::now(); }\n";
        let out = run(src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn reasonless_suppression_is_its_own_finding_and_does_not_suppress() {
        let src = "\
            // pra-lint: allow(no-wall-clock)\n\
            fn t() { let now = Instant::now(); }\n";
        let out = run(src);
        let rules = rules_of(&out);
        assert!(rules.contains(&"no-wall-clock"), "{rules:?}");
        assert!(rules.contains(&SUPPRESSION_WITHOUT_REASON), "{rules:?}");
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let out = run("// pra-lint: allow(no-such-rule): because\nfn t() {}\n");
        assert_eq!(rules_of(&out), vec![UNKNOWN_RULE]);
    }

    #[test]
    fn same_line_suppression_works() {
        let src = "fn t() { let m: HashMap<u8, u8> = HashMap::new(); } \
                   // pra-lint: allow(deterministic-iteration): never iterated, key lookups only\n";
        let out = run(src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 2, "both mentions on the line are covered");
    }

    #[test]
    fn unwrap_or_does_not_trip_the_panic_rule() {
        let src = "fn t(x: Option<u32>) -> u32 { x.unwrap_or(0).wrapping_add(1) }\n";
        assert!(run(src).findings.is_empty());
    }

    #[test]
    fn attribute_and_macro_brackets_are_not_indexing() {
        let src = "\
            #![allow(dead_code)]\n\
            #[derive(Debug)]\n\
            struct S;\n\
            fn t() { let v = vec![1, 2]; let w = [0u8; 4]; }\n";
        assert!(run(src).findings.is_empty(), "{:?}", run(src).findings);
    }

    #[test]
    fn real_indexing_fires() {
        let out = run("fn t(v: &[u32]) -> u32 { v[0] }\n");
        assert_eq!(rules_of(&out), vec!["serve-no-panic"]);
    }

    #[test]
    fn relaxed_justified_above_or_inline_passes() {
        let above = "\
            // relaxed-ok: monotonic counter, read only for display\n\
            fn t(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run(above).findings.is_empty());
        let inline =
            "fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); } // relaxed-ok: telemetry read\n";
        assert!(run(inline).findings.is_empty());
        let bare = "fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        assert_eq!(rules_of(&run(bare)), vec!["relaxed-ordering-comment"]);
    }

    #[test]
    fn safety_comment_gates_unsafe() {
        let good = "// SAFETY: the pointer is valid for the lifetime of the call\n\
                    fn t(p: *const u8) { unsafe { p.read() }; }\n";
        assert!(run(good).findings.is_empty());
        let bad = "fn t(p: *const u8) { unsafe { p.read() }; }\n";
        assert_eq!(rules_of(&run(bad)), vec!["unsafe-safety-comment"]);
    }

    #[test]
    fn path_scoping_respects_config() {
        let cfg = Config::repo_default();
        let src = "fn t(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_source(&cfg, "crates/serve/src/queue.rs", src)
            .findings
            .iter()
            .any(|f| f.rule == "serve-no-panic"));
        assert!(lint_source(&cfg, "crates/core/src/schedule.rs", src).findings.is_empty());
        // The artifact serializer writes content-addressed payloads, so
        // hash-order iteration there is a byte-stream hazard: it must
        // sit inside the deterministic-iteration scope.
        let hashed = "fn t() { let m: HashMap<u8, u8> = HashMap::new(); let _ = m; }\n";
        assert!(lint_source(&cfg, "crates/core/src/artifact.rs", hashed)
            .findings
            .iter()
            .any(|f| f.rule == "deterministic-iteration"));
    }
}
