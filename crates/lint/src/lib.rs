//! `pra-lint`: workspace-native static analysis for the pragmatic repo.
//!
//! Enforces the invariants the performance story of this codebase rests
//! on but which `clippy` cannot express: determinism hygiene (no
//! hash-order iteration or wall-clock reads in result paths),
//! panic-safety on the serve request path, justified relaxed atomics,
//! and a written-down safety argument for any future `unsafe`. See
//! DESIGN.md §11 for the policy and rationale per rule.
//!
//! The crate is deliberately dependency-free — not even the offline
//! shims — so it builds from a bare toolchain and cannot be broken by
//! the code it checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use config::Config;
use rules::{lint_source, Finding};

/// The result of linting a whole tree.
#[derive(Debug, Default)]
pub struct WorkspaceOutcome {
    /// All findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by well-formed, reasoned suppressions.
    pub suppressed: usize,
}

/// Lints every `.rs` file under `root`, honoring `cfg.exclude`.
///
/// # Errors
///
/// Returns a message when `root` cannot be read. Individual unreadable
/// files abort with the same error rather than being skipped — a lint
/// pass that silently misses files is worse than one that fails.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceOutcome, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    // The walk already sorts each directory, but sorting the flat list
    // by relative path makes the overall order independent of traversal
    // shape too.
    files.sort();
    let mut out = WorkspaceOutcome::default();
    for rel in &files {
        let abs = root.join(rel);
        let src =
            fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let file_out = lint_source(cfg, rel, &src);
        out.findings.extend(file_out.findings);
        out.suppressed += file_out.suppressed;
        out.files_scanned += 1;
    }
    Ok(out)
}

/// Recursively collects repo-relative `/`-separated paths of `.rs`
/// files, in sorted order, skipping hidden entries and excluded
/// prefixes.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') {
            continue;
        }
        let rel = relative_slash_path(root, &path);
        if cfg.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().filter_map(|c| c.as_os_str().to_str()).collect::<Vec<_>>().join("/")
}

/// Loads the effective config for `root`: repo defaults, then
/// `pra-lint.toml` at the root if present, then `config_path` if given.
///
/// # Errors
///
/// Returns a message when a config file exists but cannot be read or
/// parsed.
pub fn load_config(root: &Path, config_path: Option<&Path>) -> Result<Config, String> {
    let mut cfg = Config::repo_default();
    let default_path = root.join("pra-lint.toml");
    let chosen = match config_path {
        Some(p) => Some(p.to_path_buf()),
        None if default_path.is_file() => Some(default_path),
        None => None,
    };
    if let Some(path) = chosen {
        let body =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        cfg.apply_toml(&body).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(cfg)
}
