//! Rendering: human-readable and `--json` output.
//!
//! Both forms are emitted in a fixed order (file, then line, then rule)
//! so lint output is itself deterministic — the tool has to clear the
//! bar it sets.

use crate::config::{Config, Severity};
use crate::rules::Finding;

/// Renders findings as `path:line: [severity/rule] message` lines plus
/// a one-line summary.
pub fn human(findings: &[Finding], cfg: &Config, files: usize, suppressed: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let sev = match cfg.rule(&f.rule).severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        out.push_str(&format!("{}:{}: [{sev}/{}] {}\n", f.file, f.line, f.rule, f.message));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str(&format!(
        "pra-lint: {} finding{} across {files} file{}{}\n",
        findings.len(),
        plural(findings.len()),
        plural(files),
        if suppressed > 0 {
            format!(" ({suppressed} suppressed with written reasons)")
        } else {
            String::new()
        },
    ));
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders findings as a stable JSON document for tooling.
pub fn json(findings: &[Finding], cfg: &Config, files: usize, suppressed: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sev = match cfg.rule(&f.rule).severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": \"{sev}\", \
             \"message\": {}}}",
            escape(&f.file),
            f.line,
            escape(&f.rule),
            escape(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {files},\n  \"suppressed\": {suppressed},\n  \
         \"total\": {}\n}}\n",
        findings.len(),
    ));
    out
}

/// Escapes a string as a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: "no-wall-clock".to_string(),
            message: "a \"quoted\" reason".to_string(),
        }
    }

    #[test]
    fn human_lines_carry_location_and_rule() {
        let cfg = Config::repo_default();
        let text = human(&[finding()], &cfg, 3, 1);
        assert!(text.contains("crates/x/src/lib.rs:7: [deny/no-wall-clock]"), "{text}");
        assert!(text.contains("1 finding across 3 files (1 suppressed"), "{text}");
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let cfg = Config::repo_default();
        let text = json(&[finding()], &cfg, 3, 0);
        assert!(text.contains("\"a \\\"quoted\\\" reason\""), "{text}");
        assert!(text.contains("\"total\": 1"), "{text}");
        assert!(text.contains("\"files_scanned\": 3"), "{text}");
    }

    #[test]
    fn empty_run_renders_cleanly() {
        let cfg = Config::repo_default();
        assert!(human(&[], &cfg, 10, 0).contains("0 findings across 10 files"));
        assert!(json(&[], &cfg, 10, 0).contains("\"findings\": [],"));
    }
}
