//! Rule configuration: which rules run where.
//!
//! The built-in defaults encode this repository's policy (see
//! DESIGN.md §11); a `pra-lint.toml` at the workspace root overrides
//! them so the policy is visible and reviewable in-tree. The parser
//! handles exactly the subset the config needs — `[rule.<name>]`
//! sections with string-list and boolean keys — because the workspace
//! builds offline and the linter must stay dependency-free.

use std::collections::BTreeMap;

/// How a rule's findings count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Findings fail the run (exit 1).
    Deny,
    /// Findings are printed but do not fail the run.
    Warn,
}

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleCfg {
    /// Whether the rule runs at all.
    pub enabled: bool,
    /// Whether findings fail the run.
    pub severity: Severity,
    /// Path prefixes (relative, `/`-separated) the rule applies to.
    /// Empty means the whole tree.
    pub include: Vec<String>,
    /// Path prefixes exempt from the rule (checked after `include`).
    pub exclude: Vec<String>,
}

impl Default for RuleCfg {
    fn default() -> Self {
        RuleCfg {
            enabled: true,
            severity: Severity::Deny,
            include: Vec::new(),
            exclude: Vec::new(),
        }
    }
}

impl RuleCfg {
    /// Whether the rule applies to the file at relative `path`.
    pub fn applies_to(&self, path: &str) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = |prefixes: &[String]| prefixes.iter().any(|p| path.starts_with(p.as_str()));
        (self.include.is_empty() || hit(&self.include)) && !hit(&self.exclude)
    }
}

/// The full linter configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes the walker never descends into.
    pub exclude: Vec<String>,
    /// Per-rule settings, keyed by rule id.
    pub rules: BTreeMap<String, RuleCfg>,
}

impl Config {
    /// This repository's policy (mirrored by the in-tree
    /// `pra-lint.toml`; see DESIGN.md §11 for the rationale per rule).
    pub fn repo_default() -> Config {
        let mut rules = BTreeMap::new();
        let with = |include: &[&str], exclude: &[&str]| RuleCfg {
            include: include.iter().map(|s| s.to_string()).collect(),
            exclude: exclude.iter().map(|s| s.to_string()).collect(),
            ..RuleCfg::default()
        };
        // Determinism-critical code: everything that can reach a CSV,
        // a digest, a serialized cache payload or a wire response.
        rules.insert(
            "deterministic-iteration".to_string(),
            with(
                &[
                    "crates/bench/src",
                    "crates/core/src",
                    "crates/engines/src",
                    "crates/lint/src",
                    "crates/router/src",
                    "crates/serve/src",
                    "crates/sim/src",
                    "crates/workloads/src",
                    "src",
                ],
                &[],
            ),
        );
        // Wall clocks are legitimate only where time *is* the payload:
        // the serve latency split and linger window, the sweep's phase
        // timings, the client-side load generator, the cache's
        // stale-temp GC, the supervisor's deadline/wedge bookkeeping,
        // the chaos layer's injected stalls, and the router's probe
        // scheduling and heartbeat deadlines.
        rules.insert(
            "no-wall-clock".to_string(),
            with(
                &[],
                &[
                    "crates/bench/src/sweep.rs",
                    "crates/chaos/src",
                    "crates/router/src",
                    "crates/serve/src/bench.rs",
                    "crates/serve/src/queue.rs",
                    "crates/serve/src/service.rs",
                    "crates/serve/src/supervisor.rs",
                    "crates/workloads/src/cache.rs",
                ],
            ),
        );
        rules.insert("no-thread-id".to_string(), RuleCfg::default());
        // The serve request path: a malformed request or a poisoned
        // lock must shed or answer a typed error, never kill a worker.
        // (The one deliberate panic — the chaos worker-panic site —
        // carries a written in-source allow-suppression.) The router's
        // data path is held to the same bar; its cluster module is
        // bench/test scaffolding and exempt.
        rules.insert(
            "serve-no-panic".to_string(),
            with(
                &[
                    "crates/router/src",
                    "crates/serve/src/protocol.rs",
                    "crates/serve/src/queue.rs",
                    "crates/serve/src/server.rs",
                    "crates/serve/src/service.rs",
                    "crates/serve/src/supervisor.rs",
                ],
                &["crates/router/src/cluster.rs"],
            ),
        );
        rules.insert("relaxed-ordering-comment".to_string(), RuleCfg::default());
        rules.insert("no-static-mut".to_string(), RuleCfg::default());
        rules.insert("unsafe-safety-comment".to_string(), RuleCfg::default());
        Config {
            exclude: vec![
                "target".to_string(),
                "shims".to_string(),
                "crates/lint/tests/fixtures".to_string(),
            ],
            rules,
        }
    }

    /// A permissive configuration for fixture tests: every rule applies
    /// everywhere, nothing is excluded.
    pub fn all_paths() -> Config {
        let mut cfg = Config::repo_default();
        cfg.exclude.clear();
        for rule in cfg.rules.values_mut() {
            rule.include.clear();
            rule.exclude.clear();
        }
        cfg
    }

    /// The settings for `rule`, defaulting to an everywhere-deny rule
    /// when the config does not mention it.
    pub fn rule(&self, rule: &str) -> RuleCfg {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Applies a `pra-lint.toml` body on top of `self`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unparsable line.
    pub fn apply_toml(&mut self, body: &str) -> Result<(), String> {
        let mut section: Option<String> = None;
        for (lineno, raw) in body.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(name.trim().to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`: {raw}", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let err = |what: &str| format!("line {}: {what}: {raw}", lineno + 1);
            match section.as_deref() {
                Some("lint") | None => match key {
                    "exclude" => self.exclude = parse_list(value).ok_or_else(|| err("bad list"))?,
                    _ => return Err(err("unknown key in [lint]")),
                },
                Some(s) => {
                    let rule_name = s
                        .strip_prefix("rule.")
                        .ok_or_else(|| err("unknown section (expected [lint] or [rule.<name>])"))?;
                    let rule = self.rules.entry(rule_name.to_string()).or_default();
                    match key {
                        "enabled" => {
                            rule.enabled = parse_bool(value).ok_or_else(|| err("bad bool"))?
                        }
                        "severity" => {
                            rule.severity = match value.trim_matches('"') {
                                "deny" => Severity::Deny,
                                "warn" => Severity::Warn,
                                _ => return Err(err("severity must be \"deny\" or \"warn\"")),
                            }
                        }
                        "include" => {
                            rule.include = parse_list(value).ok_or_else(|| err("bad list"))?
                        }
                        "exclude" => {
                            rule.exclude = parse_list(value).ok_or_else(|| err("bad list"))?
                        }
                        _ => return Err(err("unknown key in [rule.*]")),
                    }
                }
            }
        }
        Ok(())
    }
}

/// Drops a trailing `# comment`, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses `[ "a", "b" ]` (possibly empty) into its strings.
fn parse_list(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| Some(s.strip_prefix('"')?.strip_suffix('"')?.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_scopes_rules() {
        let cfg = Config::repo_default();
        assert!(cfg.rule("serve-no-panic").applies_to("crates/serve/src/queue.rs"));
        assert!(cfg.rule("serve-no-panic").applies_to("crates/serve/src/supervisor.rs"));
        assert!(!cfg.rule("serve-no-panic").applies_to("crates/serve/src/bench.rs"));
        assert!(cfg.rule("serve-no-panic").applies_to("crates/router/src/router.rs"));
        assert!(cfg.rule("serve-no-panic").applies_to("crates/router/src/health.rs"));
        assert!(!cfg.rule("serve-no-panic").applies_to("crates/router/src/cluster.rs"));
        assert!(cfg.rule("no-wall-clock").applies_to("crates/core/src/schedule.rs"));
        assert!(!cfg.rule("no-wall-clock").applies_to("crates/serve/src/queue.rs"));
        assert!(!cfg.rule("no-wall-clock").applies_to("crates/serve/src/supervisor.rs"));
        assert!(!cfg.rule("no-wall-clock").applies_to("crates/chaos/src/lib.rs"));
        assert!(!cfg.rule("no-wall-clock").applies_to("crates/router/src/health.rs"));
        assert!(cfg.rule("deterministic-iteration").applies_to("crates/bench/src/sweep.rs"));
        assert!(cfg.rule("deterministic-iteration").applies_to("crates/router/src/router.rs"));
        // The artifact serializer feeds content-addressed cache payloads:
        // iteration order there IS the byte stream, so it must stay in
        // scope (pra-lint.toml carries the same `crates/core/src` prefix).
        assert!(cfg.rule("deterministic-iteration").applies_to("crates/core/src/artifact.rs"));
        assert!(cfg.rule("unsafe-safety-comment").applies_to("anything/at/all.rs"));
    }

    #[test]
    fn toml_overrides_apply() {
        let mut cfg = Config::repo_default();
        cfg.apply_toml(
            "# policy\n[lint]\nexclude = [\"target\", \"shims\"]\n\n\
             [rule.no-wall-clock]\nexclude = [\"crates/x.rs\"]  # new allowlist\n\
             [rule.no-thread-id]\nenabled = false\nseverity = \"warn\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.exclude, vec!["target", "shims"]);
        assert!(cfg.rule("no-wall-clock").applies_to("crates/serve/src/queue.rs"));
        assert!(!cfg.rule("no-wall-clock").applies_to("crates/x.rs"));
        assert!(!cfg.rule("no-thread-id").enabled);
    }

    #[test]
    fn toml_rejects_unknown_keys() {
        let mut cfg = Config::repo_default();
        assert!(cfg.apply_toml("[rule.no-thread-id]\ncolour = \"blue\"\n").is_err());
        assert!(cfg.apply_toml("[weird]\nx = 1\n").is_err());
        assert!(cfg.apply_toml("just words\n").is_err());
    }

    #[test]
    fn empty_and_quoted_lists_parse() {
        assert_eq!(parse_list("[]"), Some(vec![]));
        assert_eq!(parse_list("[\"a\", \"b\"]"), Some(vec!["a".to_string(), "b".to_string()]));
        assert_eq!(parse_list("[bare]"), None);
    }
}
