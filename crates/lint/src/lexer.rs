//! A small Rust lexer: just enough to walk token streams without being
//! fooled by strings, comments, char literals or lifetimes.
//!
//! The rules in [`crate::rules`] match on *token* sequences
//! (`Ordering :: Relaxed`, `. unwrap (`), so the lexer's one job is to
//! classify every byte of a source file as token, comment or literal —
//! a mention of `HashMap` inside a string or a doc comment must never
//! fire a rule, and a `// relaxed-ok:` justification must be findable
//! by line. It is not a full lexer (numeric literals are approximate),
//! but it is exact where the rules need it: identifiers, punctuation,
//! string/char/lifetime disambiguation, and nested block comments.

/// Token classification, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `:`, `[`, `!`, …).
    Punct,
    /// String, char, byte or numeric literal (text not preserved for
    /// strings — rules must never match inside literals).
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (empty for string-ish literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A lexed file: the token stream plus the per-line comment text the
/// justification and suppression lookups read.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// Comment text per 1-based line, concatenated when a line holds
    /// several comments (or several lines of one block comment).
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// The concatenated comment text on `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        // Comments are pushed in line order; binary search keeps the
        // per-finding lookups cheap on big files.
        let idx = self.comments.partition_point(|&(l, _)| l < line);
        match self.comments.get(idx) {
            Some(&(l, ref text)) if l == line => Some(text),
            _ => None,
        }
    }
}

fn push_comment(out: &mut Lexed, line: u32, text: &str) {
    if let Some(last) = out.comments.last_mut() {
        if last.0 == line {
            last.1.push(' ');
            last.1.push_str(text);
            return;
        }
    }
    out.comments.push((line, text.to_string()));
}

/// Lexes `src` into tokens and per-line comments. Never fails: byte
/// sequences the lexer does not model (stray quotes in macros, exotic
/// literals) degrade into punct/literal tokens rather than errors.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                push_comment(&mut out, line, text.trim_start_matches('/').trim());
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comments, recorded line by line so a
                // multi-line justification is visible on each line.
                let mut depth = 1;
                i += 2;
                let mut seg = String::new();
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == '\n' {
                        push_comment(&mut out, line, seg.trim_matches(['*', ' '].as_ref()));
                        seg.clear();
                        line += 1;
                        i += 1;
                    } else {
                        seg.push(b[i]);
                        i += 1;
                    }
                }
                push_comment(&mut out, line, seg.trim_matches(['*', ' '].as_ref()));
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line: tok_line });
            }
            '\'' => {
                // Lifetime or char literal. `'a'` is a char, `'a` (no
                // closing quote right after) is a lifetime.
                if i + 1 < n && b[i + 1] == '\\' {
                    i = skip_char_literal(&b, i);
                    out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
                } else if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] != '\'' {
                    let start = i + 1;
                    i += 1;
                    while i < n && is_ident(b[i]) {
                        i += 1;
                    }
                    let text: String = b[start..i].iter().collect();
                    out.toks.push(Tok { kind: TokKind::Lifetime, text, line });
                } else {
                    i = skip_char_literal(&b, i);
                    out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(&b, i);
                let text: String = b[start..i].iter().collect();
                out.toks.push(Tok { kind: TokKind::Literal, text, line });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.toks.push(Tok { kind: TokKind::Ident, text, line });
            }
            c => {
                out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (on `r` or `b`) starts a raw/byte string:
/// `r"`, `r#`, `b"`, `br"`, `br#`.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let next = |k: usize| b.get(i + k).copied();
    match b[i] {
        'r' => matches!(next(1), Some('"') | Some('#')) && raw_hashes_then_quote(b, i + 1),
        'b' => match next(1) {
            Some('"') => true,
            Some('r') => raw_hashes_then_quote(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// After `r` (or `br`), raw strings are `#…#"`; checks the hashes do
/// lead to a quote so `r#[test]`-style tokens are not misread.
fn raw_hashes_then_quote(b: &[char], mut i: usize) -> bool {
    while b.get(i) == Some(&'#') {
        i += 1;
    }
    b.get(i) == Some(&'"')
}

/// Skips a plain `"…"` string with escapes; returns the index past the
/// closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`; returns the index past the
/// closing delimiter.
fn skip_raw_or_byte_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return i; // Not actually a string; treat consumed prefix as done.
    }
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut k = 0;
            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skips a `'…'` char literal (escapes included); returns the index past
/// the closing quote.
fn skip_char_literal(b: &[char], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a numeric literal conservatively: digits (hex/oct/bin bodies),
/// one fraction part only when a digit follows the dot (so `0..n` and
/// `x.0.unwrap()` keep their dots as punctuation), an exponent, and a
/// type suffix.
fn skip_number(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    if b[i] == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
        i += 2;
        while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
            i += 1;
        }
        return i;
    }
    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
        i += 1;
    }
    if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
            i += 1;
        }
    }
    if i < n && matches!(b[i], 'e' | 'E') {
        let mut k = i + 1;
        if k < n && matches!(b[k], '+' | '-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            i = k;
            while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                i += 1;
            }
        }
    }
    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
        i += 1; // Type suffix: u8, f64, usize…
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* Ordering::Relaxed in a block */
            let s = "HashMap::new()";
            let r = r#"unsafe { SystemTime::now() }"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|t| t == "unsafe"));
        assert!(ids.iter().any(|t| t == "BTreeMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Literal), "'x' is a char literal");
    }

    #[test]
    fn tuple_field_access_keeps_its_dots() {
        let lexed = lex("pair.0.unwrap()");
        let texts: Vec<_> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(2).any(|w| w == [".", "unwrap"]), "{texts:?}");
    }

    #[test]
    fn range_expressions_keep_their_dots() {
        let lexed = lex("for i in 0..24 {}");
        let dots = lexed.toks.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2, "0..24 must lex as literal, dot, dot, literal");
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let src = "let a = 1; // first\n// second\nlet b = 2;\n/* third\nfourth */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comment_on(1), Some("first"));
        assert_eq!(lexed.comment_on(2), Some("second"));
        assert_eq!(lexed.comment_on(3), None);
        assert_eq!(lexed.comment_on(4), Some("third"));
        assert_eq!(lexed.comment_on(5), Some("fourth"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still */ let x = 1;");
        assert!(lexed.toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet after = 1;");
        let after = lexed.toks.iter().find(|t| t.text == "after").expect("token");
        assert_eq!(after.line, 4);
    }
}
