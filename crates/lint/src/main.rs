//! CLI for `pra-lint`.
//!
//! ```text
//! pra-lint [ROOT] [--json] [--deny-all] [--config PATH] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (warn-severity findings may still print),
//! 1 deny-severity findings present, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pra_lint::config::Severity;
use pra_lint::{lint_workspace, load_config, report, rules};

struct Args {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    config: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        config: None,
        list_rules: false,
    };
    let mut root_set = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--config" => {
                let path = argv.next().ok_or("--config needs a path")?;
                args.config = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err("usage: pra-lint [ROOT] [--json] [--deny-all] [--config PATH] \
                            [--list-rules]"
                    .to_string())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            path if !root_set => {
                args.root = PathBuf::from(path);
                root_set = true;
            }
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("pra-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for spec in rules::RULES {
            println!(
                "{:<26} {}{}",
                spec.id,
                spec.description,
                if spec.checks_tests { " [applies to tests too]" } else { "" }
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = match load_config(&args.root, args.config.as_deref()) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("pra-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.deny_all {
        for rule in cfg.rules.values_mut() {
            rule.severity = Severity::Deny;
        }
    }

    let outcome = match lint_workspace(&args.root, &cfg) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("pra-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let rendered = if args.json {
        report::json(&outcome.findings, &cfg, outcome.files_scanned, outcome.suppressed)
    } else {
        report::human(&outcome.findings, &cfg, outcome.files_scanned, outcome.suppressed)
    };
    print!("{rendered}");

    // Meta findings (malformed suppressions) always deny: a suppression
    // that cites no reason or no real rule silences nothing and rots.
    let failing = outcome.findings.iter().any(|f| {
        args.deny_all
            || f.rule == rules::SUPPRESSION_WITHOUT_REASON
            || f.rule == rules::UNKNOWN_RULE
            || cfg.rule(&f.rule).severity == Severity::Deny
    });
    if failing && !outcome.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
