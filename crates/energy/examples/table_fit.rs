//! Prints the area/power model against every Table III/IV row of the
//! paper — the calibration record for the energy model.

fn main() {
    use pra_energy::chip::{chip_area_mm2, chip_power_w, paper_chip_area_mm2, paper_chip_power_w};
    use pra_energy::unit::{paper_unit_area_mm2, unit_area_mm2, Design};
    let pra = |l, s| Design::Pra { first_stage_bits: l, ssrs: s };
    let all = [
        Design::Dadn,
        Design::Stripes,
        pra(0, 0),
        pra(1, 0),
        pra(2, 0),
        pra(3, 0),
        pra(4, 0),
        pra(2, 1),
        pra(2, 4),
        pra(2, 16),
    ];
    for d in all {
        println!(
            "{:12} unit {:5.2} ({:5.2})  chip {:5.0} ({:5.0})  power {:5.1} ({:5.1})",
            d.label(),
            unit_area_mm2(d),
            paper_unit_area_mm2(d).unwrap(),
            chip_area_mm2(d),
            paper_chip_area_mm2(d).unwrap(),
            chip_power_w(d),
            paper_chip_power_w(d).unwrap()
        );
    }
}
