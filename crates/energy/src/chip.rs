//! Whole-chip area and power — the "Area T." / "Power T." rows of
//! Tables III and IV.

use crate::unit::{unit_area_mm2, Design};

/// Number of tiles on the chip.
pub const TILES: f64 = 16.0;

/// eDRAM area per MB at 65 nm (Destiny-class estimate, anchored so the
/// 36 MB of on-chip eDRAM matches the paper's constant memory footprint).
pub const EDRAM_MM2_PER_MB: f64 = 1.79;

/// Total on-chip memory area: 16 × 2 MB SB + 4 MB NM eDRAM plus the
/// NBin/NBout SRAM blocks. Constant across designs — the paper's chip
/// areas differ only by the unit logic.
pub const MEMORY_AREA_MM2: f64 = 36.0 * EDRAM_MM2_PER_MB + 0.8;

/// Memory-system power (eDRAM refresh + access at the paper's activity),
/// watts — the affine intercept of the power fit.
pub const MEMORY_POWER_W: f64 = 6.6;

/// Switching power density of unit logic, W/mm² at 980 MHz — the affine
/// slope of the power fit against Tables III/IV.
pub const POWER_DENSITY_W_PER_MM2: f64 = 0.50;

/// Chip area: 16 units plus the (design-independent) memory blocks.
pub fn chip_area_mm2(design: Design) -> f64 {
    TILES * unit_area_mm2(design) + MEMORY_AREA_MM2
}

/// Chip power at full activity: memory power plus unit logic scaled by
/// area (the paper's designs all run the same dataflow, so switching
/// activity per mm² is comparable across them).
pub fn chip_power_w(design: Design) -> f64 {
    MEMORY_POWER_W + POWER_DENSITY_W_PER_MM2 * TILES * unit_area_mm2(design)
}

/// The paper's Table III/IV chip areas (mm²).
pub fn paper_chip_area_mm2(design: Design) -> Option<f64> {
    Some(match design {
        Design::Dadn => 90.0,
        Design::Stripes => 114.0,
        Design::Pra { first_stage_bits: 0, ssrs: 0 } => 115.0,
        Design::Pra { first_stage_bits: 1, ssrs: 0 } => 116.0,
        Design::Pra { first_stage_bits: 2, ssrs: 0 } => 122.0,
        Design::Pra { first_stage_bits: 3, ssrs: 0 } => 136.0,
        Design::Pra { first_stage_bits: 4, ssrs: 0 } => 157.0,
        Design::Pra { first_stage_bits: 2, ssrs: 1 } => 122.0,
        Design::Pra { first_stage_bits: 2, ssrs: 4 } => 125.0,
        Design::Pra { first_stage_bits: 2, ssrs: 16 } => 134.0,
        _ => return None,
    })
}

/// The paper's Table III/IV chip powers (W).
pub fn paper_chip_power_w(design: Design) -> Option<f64> {
    Some(match design {
        Design::Dadn => 18.8,
        Design::Stripes => 30.2,
        Design::Pra { first_stage_bits: 0, ssrs: 0 } => 31.4,
        Design::Pra { first_stage_bits: 1, ssrs: 0 } => 34.5,
        Design::Pra { first_stage_bits: 2, ssrs: 0 } => 38.2,
        Design::Pra { first_stage_bits: 3, ssrs: 0 } => 43.8,
        Design::Pra { first_stage_bits: 4, ssrs: 0 } => 51.6,
        Design::Pra { first_stage_bits: 2, ssrs: 1 } => 38.8,
        Design::Pra { first_stage_bits: 2, ssrs: 4 } => 40.8,
        Design::Pra { first_stage_bits: 2, ssrs: 16 } => 49.1,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pra(l: u8, ssrs: usize) -> Design {
        Design::Pra { first_stage_bits: l, ssrs }
    }

    const ALL: [Design; 10] = [
        Design::Dadn,
        Design::Stripes,
        Design::Pra { first_stage_bits: 0, ssrs: 0 },
        Design::Pra { first_stage_bits: 1, ssrs: 0 },
        Design::Pra { first_stage_bits: 2, ssrs: 0 },
        Design::Pra { first_stage_bits: 3, ssrs: 0 },
        Design::Pra { first_stage_bits: 4, ssrs: 0 },
        Design::Pra { first_stage_bits: 2, ssrs: 1 },
        Design::Pra { first_stage_bits: 2, ssrs: 4 },
        Design::Pra { first_stage_bits: 2, ssrs: 16 },
    ];

    #[test]
    fn memory_dominates_chip_area() {
        // §VI-B2: "SB and NM dominate chip area".
        let a = chip_area_mm2(Design::Dadn);
        assert!(MEMORY_AREA_MM2 / a > 0.6);
    }

    #[test]
    fn chip_area_rows_within_tolerance() {
        for d in ALL {
            let model = chip_area_mm2(d);
            let paper = paper_chip_area_mm2(d).unwrap();
            let err = (model - paper).abs() / paper;
            assert!(err < 0.12, "{}: {model:.0} vs {paper:.0}", d.label());
        }
    }

    #[test]
    fn chip_power_rows_within_tolerance() {
        for d in ALL {
            let model = chip_power_w(d);
            let paper = paper_chip_power_w(d).unwrap();
            let err = (model - paper).abs() / paper;
            assert!(err < 0.25, "{}: {model:.1} vs {paper:.1}", d.label());
        }
    }

    #[test]
    fn pra2b_relative_overheads_match_headline() {
        // §VI-B2: PRA-2b chip area 1.35x DaDN, power ~2x.
        let area_ratio = chip_area_mm2(pra(2, 0)) / chip_area_mm2(Design::Dadn);
        let power_ratio = chip_power_w(pra(2, 0)) / chip_power_w(Design::Dadn);
        assert!((1.25..1.45).contains(&area_ratio), "area ratio {area_ratio}");
        assert!((1.7..2.4).contains(&power_ratio), "power ratio {power_ratio}");
    }

    #[test]
    fn power_ordering_follows_area() {
        let mut prev = 0.0;
        for d in [Design::Dadn, Design::Stripes, pra(2, 0), pra(3, 0), pra(4, 0)] {
            let p = chip_power_w(d);
            assert!(p > prev, "{}", d.label());
            prev = p;
        }
    }
}
