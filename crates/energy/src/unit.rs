//! Per-unit (tile NFU) area composition, excluding the SB/NBin/NBout
//! memory blocks — the "Area U." rows of Tables III and IV.

use serde::{Deserialize, Serialize};

use crate::primitives::{adder_tree, and_gates, barrel_shifter, multiplier, registers};

/// A design point whose area/power the model can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// DaDianNao: 256 16-bit multipliers + 16 17-input 32-bit adder trees.
    Dadn,
    /// Stripes: 256 bit-serial inner-product units.
    Stripes,
    /// Pragmatic with `first_stage_bits` = L and `ssrs` synapse set
    /// registers (0 = per-pallet synchronization, no SSRs).
    Pra {
        /// First-stage shifter bits (0..=4).
        first_stage_bits: u8,
        /// Synapse set registers for per-column synchronization.
        ssrs: usize,
    },
    /// Throughput-boosted Pragmatic: each lane consumes `per_cycle`
    /// oneffsets per cycle through replicated first-stage shifters and a
    /// `16 × per_cycle`-input adder tree (the extension the
    /// `ablation_throughput` bench evaluates).
    PraBoosted {
        /// First-stage shifter bits (0..=4).
        first_stage_bits: u8,
        /// Oneffsets per lane per cycle.
        per_cycle: u8,
    },
}

impl Design {
    /// The paper's label for the design.
    pub fn label(&self) -> String {
        match self {
            Design::Dadn => "DaDN".into(),
            Design::Stripes => "Stripes".into(),
            Design::Pra { first_stage_bits, ssrs: 0 } => format!("PRA-{first_stage_bits}b"),
            Design::Pra { first_stage_bits, ssrs } => format!("PRA-{first_stage_bits}b-{ssrs}R"),
            Design::PraBoosted { first_stage_bits, per_cycle } => {
                format!("PRA-{first_stage_bits}b-x{per_cycle}")
            }
        }
    }
}

/// Unit (NFU) area in µm² for one tile.
pub fn unit_area_um2(design: Design) -> f64 {
    match design {
        Design::Dadn => {
            // 256 multipliers, 16 filter-lane adder trees (16 products +
            // partial sum), pipeline registers.
            256.0 * multiplier(16) + 16.0 * adder_tree(17, 32) + registers(256 * 48)
        }
        Design::Stripes => {
            // 256 serial IPs: 16 lanes x 16-bit AND array, 16-input tree
            // of 17-bit terms, serializer adder, 32-bit shift-add
            // accumulator, double-buffered synapse registers.
            256.0
                * (and_gates(256)
                    + adder_tree(16, 17)
                    + 48.0 * crate::primitives::A_FA
                    + registers(2 * 256 + 64))
        }
        Design::Pra { first_stage_bits, ssrs } => {
            pra_pip_area(first_stage_bits, 1) * 256.0 + registers(4096) * ssrs as f64
        }
        Design::PraBoosted { first_stage_bits, per_cycle } => {
            pra_pip_area(first_stage_bits, per_cycle.max(1) as usize) * 256.0
        }
    }
}

/// Unit area in mm².
pub fn unit_area_mm2(design: Design) -> f64 {
    unit_area_um2(design) / 1e6
}

/// One Pragmatic Inner Product unit (Fig. 6 / Fig. 7a) with `l` first-stage
/// shifter bits and `per_cycle` oneffsets consumed per lane per cycle
/// (1 = the paper's PIP; >1 replicates the shifters and widens the tree).
fn pra_pip_area(l: u8, per_cycle: usize) -> f64 {
    let w_out = 16 + (1usize << l) - 1;
    let single_stage = (1u32 << l) > 15;
    let lanes = 16 * per_cycle;

    // First-stage shifters, one per consumed oneffset (absent at L = 0
    // where lanes can only take the common offset).
    let first = if l == 0 { 0.0 } else { lanes as f64 * barrel_shifter(16, 1 << l) };
    // Null-term AND plus the (cheaper) negation XOR per lane, across the
    // shifted width.
    let gates = and_gates(lanes * w_out * 3 / 2);
    // The adder tree over first-stage-shifted terms.
    let tree = adder_tree(lanes, w_out);
    // Common second-stage shifter over the tree output (tree adds 4 bits).
    let second = if single_stage { 0.0 } else { barrel_shifter(w_out + 4, 16) };
    // Accumulator: two 38-bit adders plus the max unit (Fig. 6).
    let acc = (38 * 2 + 16) as f64 * crate::primitives::A_FA;
    // Registers: accumulator, double-buffered oneffset lanes (pow + eon,
    // per consumed oneffset), synapse registers (SR).
    let regs = registers(38 * 2 + lanes * 5 * 2 + 16 * 16 + 4);
    // Column control (min tree + subtractors), amortized over 16 PIPs.
    let ctrl = 124.0 * crate::primitives::A_FA / 16.0 * per_cycle as f64;
    first + gates + tree + second + acc + regs + ctrl
}

/// The paper's Table III/IV unit areas in mm², used for paper-vs-measured
/// reporting.
pub fn paper_unit_area_mm2(design: Design) -> Option<f64> {
    Some(match design {
        Design::Dadn => 1.55,
        Design::Stripes => 3.05,
        Design::Pra { first_stage_bits: 0, ssrs: 0 } => 3.11,
        Design::Pra { first_stage_bits: 1, ssrs: 0 } => 3.16,
        Design::Pra { first_stage_bits: 2, ssrs: 0 } => 3.54,
        Design::Pra { first_stage_bits: 3, ssrs: 0 } => 4.41,
        Design::Pra { first_stage_bits: 4, ssrs: 0 } => 5.75,
        Design::Pra { first_stage_bits: 2, ssrs: 1 } => 3.58,
        Design::Pra { first_stage_bits: 2, ssrs: 4 } => 3.73,
        Design::Pra { first_stage_bits: 2, ssrs: 16 } => 4.33,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pra(l: u8, ssrs: usize) -> Design {
        Design::Pra { first_stage_bits: l, ssrs }
    }

    #[test]
    fn orderings_match_table3() {
        // DaDN < STR < PRA-0b < 1b < 2b < 3b < 4b.
        let mut prev = unit_area_mm2(Design::Dadn);
        for d in [Design::Stripes, pra(0, 0), pra(1, 0), pra(2, 0), pra(3, 0), pra(4, 0)] {
            let a = unit_area_mm2(d);
            assert!(a > prev, "{} not larger ({a} vs {prev})", d.label());
            prev = a;
        }
    }

    #[test]
    fn every_row_within_model_tolerance() {
        // Analytic model vs synthesis: each Table III/IV row within 25%
        // (most are under 12%; Stripes is the worst case, documented in
        // EXPERIMENTS.md).
        let designs = [
            Design::Dadn,
            Design::Stripes,
            pra(0, 0),
            pra(1, 0),
            pra(2, 0),
            pra(3, 0),
            pra(4, 0),
            pra(2, 1),
            pra(2, 4),
            pra(2, 16),
        ];
        for d in designs {
            let model = unit_area_mm2(d);
            let paper = paper_unit_area_mm2(d).unwrap();
            let err = (model - paper).abs() / paper;
            assert!(err < 0.25, "{}: model {model:.2} vs paper {paper:.2}", d.label());
        }
    }

    #[test]
    fn ssr_increments_match_table4() {
        let base = unit_area_mm2(pra(2, 0));
        let one = unit_area_mm2(pra(2, 1));
        let sixteen = unit_area_mm2(pra(2, 16));
        assert!((one - base - 0.05).abs() < 0.01);
        assert!((sixteen - base - 16.0 * 0.05).abs() < 0.05);
    }

    #[test]
    fn second_stage_disappears_at_single_stage() {
        // Going 3b -> 4b removes the second-stage shifter but more than
        // pays for it in wider lanes.
        let a3 = unit_area_mm2(pra(3, 0));
        let a4 = unit_area_mm2(pra(4, 0));
        assert!(a4 > a3);
    }

    #[test]
    fn labels() {
        assert_eq!(Design::Dadn.label(), "DaDN");
        assert_eq!(pra(2, 1).label(), "PRA-2b-1R");
        assert_eq!(pra(4, 0).label(), "PRA-4b");
    }
}
