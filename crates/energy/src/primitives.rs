//! Per-primitive area constants and compound component models (65 nm).

/// Area of one full adder, µm² (anchored on the Stripes unit's reported
/// area; a synthesized 65 nm mirror adder with routing lands near this).
pub const A_FA: f64 = 12.0;

/// Area of one AND gate (with local routing), µm².
pub const A_AND: f64 = 5.0;

/// Area of one 2:1 mux bit — one bit of one barrel-shifter stage, µm².
pub const A_MUX: f64 = 1.3;

/// Area of one register bit, µm² — derived from the paper's Table IV:
/// adding one 4096-bit synapse set register per unit costs ≈ 0.05 mm²,
/// i.e. ≈ 12.2 µm²/bit including the muxing in front of the SB.
pub const A_REG: f64 = 12.2;

/// Area of a `k`-input adder tree with `w`-bit inputs: `k−1` adders whose
/// widths grow by one bit per level, approximated as `w+2` average.
pub fn adder_tree(k: usize, w: usize) -> f64 {
    (k - 1) as f64 * (w + 2) as f64 * A_FA
}

/// Area of a barrel shifter over `w`-bit inputs with `positions` shift
/// positions: `log2(positions)` mux stages across the output width.
pub fn barrel_shifter(w: usize, positions: usize) -> f64 {
    if positions <= 1 {
        return 0.0;
    }
    let stages = (positions as f64).log2().ceil();
    (w + positions - 1) as f64 * stages * A_MUX
}

/// Area of a `w × w` array multiplier: `w²` full adders plus `w²` partial
/// product AND gates, with a 15% wiring/pipelining overhead typical of the
/// dense reduction array.
pub fn multiplier(w: usize) -> f64 {
    (w * w) as f64 * (A_FA + A_AND) * 1.15
}

/// Area of `bits` register bits.
pub fn registers(bits: usize) -> f64 {
    bits as f64 * A_REG
}

/// Area of `n` AND gates.
pub fn and_gates(n: usize) -> f64 {
    n as f64 * A_AND
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_grows_with_inputs_and_width() {
        assert!(adder_tree(16, 16) < adder_tree(17, 16));
        assert!(adder_tree(16, 16) < adder_tree(16, 31));
    }

    #[test]
    fn shifter_zero_positions_is_free() {
        assert_eq!(barrel_shifter(16, 1), 0.0);
        assert!(barrel_shifter(16, 2) > 0.0);
    }

    #[test]
    fn shifter_grows_with_range() {
        assert!(barrel_shifter(16, 4) < barrel_shifter(16, 16));
    }

    #[test]
    fn multiplier_is_quadratic() {
        assert!((multiplier(16) / multiplier(8) - 4.0).abs() < 0.01);
    }

    #[test]
    fn ssr_cost_matches_table4_delta() {
        // One SSR = 16 bricks x 16 synapses x 16 bits = 4096 register
        // bits; the paper's Table IV prices it at ~0.05 mm².
        let ssr_mm2 = registers(4096) / 1e6;
        assert!((ssr_mm2 - 0.05).abs() < 0.002, "SSR {ssr_mm2} mm²");
    }
}
