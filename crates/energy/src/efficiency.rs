//! Energy efficiency (§VI-D, Fig. 11).
//!
//! "Energy Efficiency, or simply efficiency for a system NEW relative to
//! BASE is defined as the ratio E_BASE / E_NEW of the energy required by
//! BASE to compute all of the convolution layers over that of NEW."
//! With both chips running at the same frequency, `E = P × cycles / f`,
//! so efficiency is the speedup divided by the power ratio.

use serde::{Deserialize, Serialize};

use crate::chip::chip_power_w;
use crate::unit::Design;

/// Energy accounting for one design on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Which design.
    pub design: Design,
    /// Execution cycles for the convolutional layers.
    pub cycles: u64,
    /// Chip power (W).
    pub power_w: f64,
}

impl EnergyReport {
    /// Builds a report from a design and its measured cycle count.
    pub fn new(design: Design, cycles: u64) -> Self {
        Self { design, cycles, power_w: chip_power_w(design) }
    }

    /// Energy in W·cycles (joules × frequency; the frequency cancels in
    /// every ratio the paper reports).
    pub fn energy(&self) -> f64 {
        self.power_w * self.cycles as f64
    }
}

/// Efficiency of `new` relative to `base`: `E_base / E_new`.
pub fn efficiency(base: &EnergyReport, new: &EnergyReport) -> f64 {
    base.energy() / new.energy()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pra(l: u8, ssrs: usize) -> Design {
        Design::Pra { first_stage_bits: l, ssrs }
    }

    #[test]
    fn efficiency_is_speedup_over_power_ratio() {
        let base = EnergyReport::new(Design::Dadn, 1000);
        let new = EnergyReport::new(pra(2, 0), 400);
        let speedup = 1000.0 / 400.0;
        let power_ratio = new.power_w / base.power_w;
        assert!((efficiency(&base, &new) - speedup / power_ratio).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_efficiencies_reproduce() {
        // Fig. 11 geo means with the paper's speedups: STR 1.16 (1.85x),
        // PRA-4b 0.95 (2.59x), PRA-2b 1.28 (2.59x), PRA-2b-1R 1.48 (3.1x).
        let base = EnergyReport::new(Design::Dadn, 1_000_000);
        let check = |design, speedup: f64, expected: f64, tol: f64| {
            let new = EnergyReport::new(design, (1_000_000.0 / speedup) as u64);
            let eff = efficiency(&base, &new);
            assert!(
                (eff - expected).abs() < tol,
                "{}: efficiency {eff:.2} vs paper {expected}",
                new.design.label()
            );
        };
        check(Design::Stripes, 1.85, 1.16, 0.20);
        check(pra(4, 0), 2.59, 0.95, 0.20);
        check(pra(2, 0), 2.59, 1.28, 0.20);
        check(pra(2, 1), 3.10, 1.48, 0.25);
    }

    #[test]
    fn identical_runs_have_unit_efficiency() {
        let a = EnergyReport::new(Design::Dadn, 12345);
        assert!((efficiency(&a, &a) - 1.0).abs() < 1e-12);
    }
}
