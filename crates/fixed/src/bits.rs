//! Essential-bit counting and stream statistics (§II-A, Table I).
//!
//! The *essential bit content* of a neuron stream is the average number of
//! bits that are 1. Table I reports it two ways: over all neurons ("All")
//! and over the non-zero neurons only ("NZ").

use serde::{Deserialize, Serialize};

/// Number of essential (non-zero) bits of a stored value — a popcount.
///
/// ```
/// assert_eq!(pra_fixed::essential_bits(0b0101_1000), 3);
/// assert_eq!(pra_fixed::essential_bits(0), 0);
/// ```
#[inline]
pub fn essential_bits(v: u16) -> u32 {
    v.count_ones()
}

/// Bit positions of the essential bits of `v` in ascending order
/// (least-significant first) — the order the oneffset generator emits them.
pub fn essential_bit_positions(v: u16) -> impl Iterator<Item = u8> {
    (0..16u8).filter(move |&b| v & (1 << b) != 0)
}

/// Running essential-bit statistics over a neuron stream.
///
/// Accumulates the quantities needed for one cell pair of Table I:
/// fraction of non-zero bits over all neurons and over non-zero neurons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitContentStats {
    /// Total neurons observed.
    pub neurons: u64,
    /// Neurons with a non-zero value.
    pub nonzero: u64,
    /// Total essential bits observed.
    pub bits: u64,
}

impl BitContentStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one neuron value.
    #[inline]
    pub fn record(&mut self, v: u16) {
        self.neurons += 1;
        if v != 0 {
            self.nonzero += 1;
            self.bits += u64::from(essential_bits(v));
        }
    }

    /// Records every value of a slice.
    pub fn record_all(&mut self, vs: &[u16]) {
        for &v in vs {
            self.record(v);
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &BitContentStats) {
        self.neurons += other.neurons;
        self.nonzero += other.nonzero;
        self.bits += other.bits;
    }

    /// Fraction of non-zero bits over **all** neurons, for a representation
    /// of `width` bits (Table I "All"). Returns 0 for an empty stream.
    pub fn fraction_all(&self, width: u32) -> f64 {
        if self.neurons == 0 {
            return 0.0;
        }
        self.bits as f64 / (self.neurons as f64 * width as f64)
    }

    /// Fraction of non-zero bits over the **non-zero** neurons only
    /// (Table I "NZ"). Returns 0 for a stream with no non-zero neurons.
    pub fn fraction_nonzero(&self, width: u32) -> f64 {
        if self.nonzero == 0 {
            return 0.0;
        }
        self.bits as f64 / (self.nonzero as f64 * width as f64)
    }

    /// Fraction of neurons that are zero-valued.
    pub fn zero_fraction(&self) -> f64 {
        if self.neurons == 0 {
            return 0.0;
        }
        1.0 - self.nonzero as f64 / self.neurons as f64
    }

    /// Mean essential bits per neuron (over all neurons).
    pub fn mean_bits(&self) -> f64 {
        if self.neurons == 0 {
            return 0.0;
        }
        self.bits as f64 / self.neurons as f64
    }
}

impl FromIterator<u16> for BitContentStats {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<u16> for BitContentStats {
    fn extend<I: IntoIterator<Item = u16>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essential_bits_counts_ones() {
        assert_eq!(essential_bits(0b101), 2);
        assert_eq!(essential_bits(u16::MAX), 16);
    }

    #[test]
    fn positions_ascend_from_lsb() {
        let p: Vec<u8> = essential_bit_positions(0b1001_0010).collect();
        assert_eq!(p, vec![1, 4, 7]);
    }

    #[test]
    fn positions_of_zero_is_empty() {
        assert_eq!(essential_bit_positions(0).count(), 0);
    }

    #[test]
    fn stats_all_vs_nonzero() {
        // Stream: 0, 0b11, 0b1 -> 3 neurons, 2 nonzero, 3 bits.
        let s: BitContentStats = [0u16, 0b11, 0b1].into_iter().collect();
        assert_eq!(s.neurons, 3);
        assert_eq!(s.nonzero, 2);
        assert_eq!(s.bits, 3);
        assert!((s.fraction_all(16) - 3.0 / 48.0).abs() < 1e-12);
        assert!((s.fraction_nonzero(16) - 3.0 / 32.0).abs() < 1e-12);
        assert!((s.zero_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_width_changes_denominator() {
        let s: BitContentStats = [0b1111u16].into_iter().collect();
        assert!((s.fraction_all(8) - 0.5).abs() < 1e-12);
        assert!((s.fraction_all(16) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = BitContentStats::new();
        assert_eq!(s.fraction_all(16), 0.0);
        assert_eq!(s.fraction_nonzero(16), 0.0);
        assert_eq!(s.zero_fraction(), 0.0);
        assert_eq!(s.mean_bits(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a: BitContentStats = [1u16, 2, 0].into_iter().collect();
        let b: BitContentStats = [3u16, 0, 7].into_iter().collect();
        a.merge(&b);
        let c: BitContentStats = [1u16, 2, 0, 3, 0, 7].into_iter().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn extend_matches_record_all() {
        let mut a = BitContentStats::new();
        a.extend([5u16, 9]);
        let mut b = BitContentStats::new();
        b.record_all(&[5, 9]);
        assert_eq!(a, b);
    }
}
