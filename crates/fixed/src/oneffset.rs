//! The oneffset representation (§V-A1).
//!
//! A neuron `n` is represented as an explicit list of the offsets of its
//! essential bits — its constituent powers of two. For example
//! `n = 101₂` is represented as `((0, eon=0), (2, eon=1))`: each oneffset is
//! a pair `(pow, eon)` where `pow` is a 4-bit power and `eon` ("end of
//! neuron") is a single out-of-band bit set on the neuron's last oneffset.
//!
//! Oneffsets are generated and processed **least-significant first**
//! (ascending powers), the order used by the 2-stage-shifting example of
//! Fig. 7 where the per-cycle minimum oneffset drives the common
//! second-stage shifter. (§V-C describes the generator as a "leading one
//! detector"; a trailing-one detector is the same structure on the
//! bit-reversed input and matches the worked example, so ascending order is
//! the crate default. [`OneffsetList::iter_descending`] provides the other
//! order for ablation.)
//!
//! In the worst case all 16 bits of a neuron are 1 and its PRA
//! representation holds 16 oneffsets.

use serde::{Deserialize, Serialize};

/// One oneffset: a power of two plus the end-of-neuron marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Oneffset {
    /// The power of two (0–15 for 16-bit neurons, 0–7 for 8-bit).
    pub pow: u8,
    /// Set on the last oneffset of a neuron (out-of-band wire in hardware).
    pub eon: bool,
}

/// The complete oneffset list of one neuron, in ascending power order.
///
/// A zero neuron has an empty list (the lane immediately signals
/// end-of-neuron and injects null terms while waiting, §V-A4).
///
/// ```
/// use pra_fixed::OneffsetList;
///
/// let n = OneffsetList::encode(0b0000_0101_1000_0000);
/// assert_eq!(n.powers(), &[7, 8, 10]);
/// assert_eq!(n.decode(), 0b0000_0101_1000_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OneffsetList {
    powers: [u8; 16],
    len: u8,
}

impl OneffsetList {
    /// Encodes a stored 16-bit value into its oneffset list.
    pub fn encode(v: u16) -> Self {
        let mut powers = [0u8; 16];
        let mut len = 0u8;
        let mut rest = v;
        while rest != 0 {
            let p = rest.trailing_zeros() as u8;
            powers[len as usize] = p;
            len += 1;
            rest &= rest - 1; // clear lowest set bit
        }
        Self { powers, len }
    }

    /// Number of oneffsets (the neuron's essential bit count).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the neuron is zero (no essential bits).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The powers in ascending order.
    pub fn powers(&self) -> &[u8] {
        &self.powers[..self.len as usize]
    }

    /// Reconstructs the stored value: `Σ 2^pow`.
    pub fn decode(&self) -> u16 {
        self.powers().iter().fold(0u16, |acc, &p| acc | (1 << p))
    }

    /// Iterates the oneffsets in ascending power order with `eon` set on
    /// the last one.
    pub fn iter(&self) -> impl Iterator<Item = Oneffset> + '_ {
        let n = self.len as usize;
        self.powers[..n].iter().enumerate().map(move |(k, &pow)| Oneffset { pow, eon: k + 1 == n })
    }

    /// Iterates the oneffsets in descending power order (MSB first), the
    /// literal "leading one detector" order of §V-C; provided for the
    /// encoding-order ablation.
    pub fn iter_descending(&self) -> impl Iterator<Item = Oneffset> + '_ {
        let n = self.len as usize;
        self.powers[..n]
            .iter()
            .rev()
            .enumerate()
            .map(move |(k, &pow)| Oneffset { pow, eon: k + 1 == n })
    }
}

impl From<u16> for OneffsetList {
    fn from(v: u16) -> Self {
        Self::encode(v)
    }
}

/// Streaming oneffset generator mimicking the hardware unit of §V-C: one
/// oneffset is produced per neuron per cycle by a trailing/leading-one
/// detector over the remaining bits.
///
/// ```
/// use pra_fixed::oneffset::OneffsetGenerator;
///
/// let mut g = OneffsetGenerator::new(0b101);
/// let a = g.next_oneffset().unwrap();
/// assert_eq!((a.pow, a.eon), (0, false));
/// let b = g.next_oneffset().unwrap();
/// assert_eq!((b.pow, b.eon), (2, true));
/// assert!(g.next_oneffset().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneffsetGenerator {
    remaining: u16,
}

impl OneffsetGenerator {
    /// Starts generating oneffsets for stored value `v`.
    pub fn new(v: u16) -> Self {
        Self { remaining: v }
    }

    /// Whether all oneffsets have been emitted (a zero neuron is done
    /// immediately).
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// The next oneffset, ascending order, or `None` when exhausted.
    pub fn next_oneffset(&mut self) -> Option<Oneffset> {
        if self.remaining == 0 {
            return None;
        }
        let pow = self.remaining.trailing_zeros() as u8;
        self.remaining &= self.remaining - 1;
        Some(Oneffset { pow, eon: self.remaining == 0 })
    }

    /// The power of the next oneffset without consuming it.
    pub fn peek_pow(&self) -> Option<u8> {
        if self.remaining == 0 {
            None
        } else {
            Some(self.remaining.trailing_zeros() as u8)
        }
    }
}

impl Iterator for OneffsetGenerator {
    type Item = Oneffset;

    fn next(&mut self) -> Option<Oneffset> {
        self.next_oneffset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_paper_example() {
        // §V-A1: n = 101₂ is represented as ((0010, 0), (0000, 1)) in
        // MSB-first order; ascending order is pow 0 then pow 2.
        let l = OneffsetList::encode(0b101);
        assert_eq!(l.powers(), &[0, 2]);
        let offs: Vec<_> = l.iter().collect();
        assert_eq!(offs[0], Oneffset { pow: 0, eon: false });
        assert_eq!(offs[1], Oneffset { pow: 2, eon: true });
    }

    #[test]
    fn encode_five_point_five() {
        // §V-A1: n = 5.5 = 0101.1₂ -> oneffsets (2, 0, −1); with a 1-bit
        // fraction the stored integer is 1011₂ -> powers 0, 1, 3.
        let l = OneffsetList::encode(0b1011);
        assert_eq!(l.powers(), &[0, 1, 3]);
    }

    #[test]
    fn zero_has_empty_list() {
        let l = OneffsetList::encode(0);
        assert!(l.is_empty());
        assert_eq!(l.decode(), 0);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn worst_case_sixteen_oneffsets() {
        let l = OneffsetList::encode(u16::MAX);
        assert_eq!(l.len(), 16);
        assert_eq!(l.decode(), u16::MAX);
    }

    #[test]
    fn round_trip_exhaustive() {
        for v in 0..=u16::MAX {
            assert_eq!(OneffsetList::encode(v).decode(), v);
        }
    }

    #[test]
    fn powers_strictly_ascending() {
        for v in [0x8001u16, 0xABCD, 0x00FF, 0x8000] {
            let l = OneffsetList::encode(v);
            for w in l.powers().windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn eon_set_only_on_last() {
        let l = OneffsetList::encode(0b111);
        let eons: Vec<bool> = l.iter().map(|o| o.eon).collect();
        assert_eq!(eons, vec![false, false, true]);
    }

    #[test]
    fn descending_iter_reverses() {
        let l = OneffsetList::encode(0b1001_0010);
        let powers: Vec<u8> = l.iter_descending().map(|o| o.pow).collect();
        assert_eq!(powers, vec![7, 4, 1]);
        let eons: Vec<bool> = l.iter_descending().map(|o| o.eon).collect();
        assert_eq!(eons, vec![false, false, true]);
    }

    #[test]
    fn generator_matches_list() {
        for v in [0u16, 1, 0xF0F0, u16::MAX, 42] {
            let from_gen: Vec<_> = OneffsetGenerator::new(v).collect();
            let from_list: Vec<_> = OneffsetList::encode(v).iter().collect();
            assert_eq!(from_gen, from_list);
        }
    }

    #[test]
    fn generator_peek_does_not_consume() {
        let mut g = OneffsetGenerator::new(0b110);
        assert_eq!(g.peek_pow(), Some(1));
        assert_eq!(g.peek_pow(), Some(1));
        assert_eq!(g.next_oneffset().unwrap().pow, 1);
        assert_eq!(g.peek_pow(), Some(2));
    }

    #[test]
    fn list_len_equals_popcount() {
        for v in 0..1024u16 {
            assert_eq!(OneffsetList::encode(v).len(), v.count_ones() as usize);
        }
    }
}
