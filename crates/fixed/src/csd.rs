//! Canonical-signed-digit (CSD) recoding — the modified-Booth extension.
//!
//! The PIP of Fig. 6 carries `neg` wires on its inputs, allowing a term to
//! be *subtracted* rather than added. With signed terms a neuron can be
//! recoded so that runs of ones collapse: `0111₂ = 2³ − 2⁰` needs two terms
//! instead of three. CSD is the unique minimal such recoding with no two
//! adjacent non-zero digits; its expected term count for random values is
//! ~n/3 versus ~n/2 for plain oneffsets.
//!
//! The MICRO version of the paper evaluates plain oneffsets only; this
//! module implements the recoding as the natural extension and the
//! `ablation_booth` bench quantifies what it would buy.

use serde::{Deserialize, Serialize};

/// One signed power-of-two term: `±2^pow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedPower {
    /// The power of two. For 16-bit inputs this can be 16 (e.g.
    /// `0xFFFF = 2¹⁶ − 2⁰`).
    pub pow: u8,
    /// Whether the term is subtracted.
    pub neg: bool,
}

impl SignedPower {
    /// The term's signed value.
    pub fn value(&self) -> i32 {
        let m = 1i32 << self.pow;
        if self.neg {
            -m
        } else {
            m
        }
    }
}

/// Encodes `v` into canonical signed-digit form, ascending power order.
///
/// The result satisfies [`decode`]`(..) == v` and has no two adjacent
/// non-zero digits.
///
/// ```
/// use pra_fixed::csd::{encode, decode};
///
/// let terms = encode(0b0111); // 7 = 8 - 1
/// assert_eq!(terms.len(), 2);
/// assert_eq!(decode(&terms), 7);
/// ```
pub fn encode(v: u16) -> Vec<SignedPower> {
    let mut out = Vec::new();
    let mut x = v as u32;
    let mut pow = 0u8;
    while x != 0 {
        if x & 1 == 0 {
            x >>= 1;
            pow += 1;
            continue;
        }
        // x is odd: emit +1 if x mod 4 == 1, else -1 (and carry).
        if x & 0b11 == 0b01 {
            out.push(SignedPower { pow, neg: false });
            x -= 1;
        } else {
            out.push(SignedPower { pow, neg: true });
            x += 1;
        }
    }
    out
}

/// Power-set bit mask of the CSD recoding of `v`: bit `k` is set iff the
/// recoding contains `±2^k`. This is the allocation-free form the cycle
/// simulator schedules from (signs do not affect timing); it equals
/// folding [`encode`]`(v)` over `1 << pow`.
///
/// ```
/// use pra_fixed::csd::{encode, mask};
///
/// let v = 0b0111_0110;
/// let folded = encode(v).iter().fold(0u32, |m, t| m | (1 << t.pow));
/// assert_eq!(mask(v), folded);
/// ```
pub fn mask(v: u16) -> u32 {
    let mut out = 0u32;
    let mut x = v as u32;
    let mut pow = 0u32;
    while x != 0 {
        if x & 1 == 0 {
            x >>= 1;
            pow += 1;
            continue;
        }
        out |= 1 << pow;
        // Same digit rule as `encode`: +1 if x mod 4 == 1, else -1 + carry.
        if x & 0b11 == 0b01 {
            x -= 1;
        } else {
            x += 1;
        }
    }
    out
}

/// Reconstructs the value of a signed-power list.
pub fn decode(terms: &[SignedPower]) -> i32 {
    terms.iter().map(SignedPower::value).sum()
}

/// Number of CSD terms of `v` — the essential term count under signed
/// recoding. Always `<= v.count_ones()`.
pub fn term_count(v: u16) -> u32 {
    encode(v).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_equals_encode_fold_exhaustively() {
        for v in 0..=u16::MAX {
            let folded = encode(v).iter().fold(0u32, |m, t| m | (1 << t.pow));
            assert_eq!(mask(v), folded, "v = {v:#06x}");
        }
    }

    #[test]
    fn seven_needs_two_terms() {
        let t = encode(7);
        assert_eq!(t.len(), 2);
        assert_eq!(decode(&t), 7);
    }

    #[test]
    fn all_ones_collapses() {
        // 0xFFFF = 2^16 - 2^0.
        let t = encode(u16::MAX);
        assert_eq!(t.len(), 2);
        assert_eq!(decode(&t), 65535);
        assert_eq!(t[0], SignedPower { pow: 0, neg: true });
        assert_eq!(t[1], SignedPower { pow: 16, neg: false });
    }

    #[test]
    fn zero_is_empty() {
        assert!(encode(0).is_empty());
        assert_eq!(decode(&[]), 0);
    }

    #[test]
    fn round_trip_exhaustive() {
        for v in 0..=u16::MAX {
            assert_eq!(decode(&encode(v)), v as i32, "value {v}");
        }
    }

    #[test]
    fn no_adjacent_nonzero_digits() {
        for v in (0..=u16::MAX).step_by(17) {
            let t = encode(v);
            for w in t.windows(2) {
                assert!(w[1].pow >= w[0].pow + 2, "adjacent digits in CSD of {v}");
            }
        }
    }

    #[test]
    fn never_more_terms_than_popcount() {
        for v in 0..=u16::MAX {
            assert!(term_count(v) <= v.count_ones() || v.count_ones() == 0);
        }
    }

    #[test]
    fn isolated_bits_unchanged() {
        // A value with no adjacent ones is its own CSD form.
        let v = 0b0101_0101_0101_0101u16;
        let t = encode(v);
        assert_eq!(t.len() as u32, v.count_ones());
        assert!(t.iter().all(|s| !s.neg));
    }

    #[test]
    fn expected_density_below_oneffsets() {
        // Average CSD terms over all u16 should be well below average
        // popcount (8.0): the asymptotic CSD density is n/3 + O(1).
        let total: u64 = (0..=u16::MAX).map(|v| term_count(v) as u64).sum();
        let avg = total as f64 / 65536.0;
        assert!(avg < 6.0, "avg CSD terms {avg}");
    }
}
