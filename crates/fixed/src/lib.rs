//! Numeric substrate for the Pragmatic (MICRO 2017) reproduction.
//!
//! The paper's key observation (§II) is that conventional positional binary
//! representations process many *ineffectual* bits: a `p`-bit multiplier
//! computes `p` terms `n_i · (s << i)`, one per multiplicator bit, and every
//! zero bit of `n` yields a zero term. Pragmatic instead converts neurons
//! on-the-fly into an explicit list of their constituent powers of two —
//! *oneffsets* — and processes only those (§V-A1).
//!
//! This crate provides the number-representation machinery shared by all
//! accelerator models:
//!
//! * [`oneffset`] — the explicit powers-of-two representation `(pow, eon)`
//!   and streaming generators that mimic the hardware oneffset generators.
//! * [`bits`] — essential-bit counting and the Table I statistics.
//! * [`quant`] — the 8-bit quantized representation of TensorFlow/gemmlowp
//!   used in §VI-F.
//! * [`precision`] — per-layer precision windows (Stripes-style reduced
//!   precision, and the software-guided prefix/suffix trimming of §V-F).
//! * [`csd`] — canonical-signed-digit (modified Booth) recoding, the
//!   extension suggested by the PIP's `neg` wires (Fig. 6), evaluated as an
//!   ablation.
//! * [`fixed16`] — conversions between real values and the 16-bit
//!   fixed-point storage representation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod csd;
pub mod fixed16;
pub mod oneffset;
pub mod precision;
pub mod quant;

pub use bits::{essential_bits, BitContentStats};
pub use csd::SignedPower;
pub use oneffset::{Oneffset, OneffsetList};
pub use precision::PrecisionWindow;
pub use quant::QuantParams;
