//! The 8-bit quantized representation of §VI-F.
//!
//! TensorFlow/gemmlowp quantization uses 8 bits to specify arbitrary
//! minimum and maximum limits per layer and maps the 256 available 8-bit
//! values linearly into the resulting interval. The limits are set to the
//! minimum and maximum neuron values of each layer and rounding uses the
//! recommended round-half-away-from-zero mode.

use serde::{Deserialize, Serialize};

/// Per-layer linear quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    min: f32,
    max: f32,
}

impl QuantParams {
    /// Creates parameters for the interval `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or either bound is not finite.
    pub fn new(min: f32, max: f32) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min < max, "min {min} must be below max {max}");
        Self { min, max }
    }

    /// Derives parameters from observed data (the paper sets the limits to
    /// the layer's minimum and maximum neuron values). Returns `[0, 1]` for
    /// an empty or constant stream so quantization stays well-defined.
    pub fn of_values(values: &[f32]) -> Self {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Self { min: 0.0, max: 1.0 };
        }
        Self { min: lo, max: hi }
    }

    /// The interval minimum.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// The interval maximum.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// The step between adjacent quantized codes.
    pub fn scale(&self) -> f32 {
        (self.max - self.min) / 255.0
    }

    /// Quantizes a real value to its 8-bit code (clamping to the interval).
    ///
    /// ```
    /// use pra_fixed::QuantParams;
    ///
    /// let q = QuantParams::new(0.0, 2.55);
    /// assert_eq!(q.quantize(0.0), 0);
    /// assert_eq!(q.quantize(2.55), 255);
    /// assert_eq!(q.quantize(1.275), 128); // round half away from zero
    /// ```
    pub fn quantize(&self, v: f32) -> u8 {
        let clamped = v.clamp(self.min, self.max);
        ((clamped - self.min) / self.scale()).round() as u8
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, code: u8) -> f32 {
        self.min + code as f32 * self.scale()
    }

    /// Maximum absolute reconstruction error, half the scale.
    pub fn max_error(&self) -> f32 {
        self.scale() / 2.0
    }

    /// A *symmetric, power-of-two* quantizer covering the same data — the
    /// Stripes-style reduced-precision alternative §VI-F contrasts with:
    /// the range must be symmetric around zero and its magnitude rounds up
    /// to the next power of two, wasting codes whenever the data is
    /// one-sided or its maximum is not a power of two.
    pub fn symmetric_pow2_covering(values: &[f32]) -> Self {
        let mag = values.iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        let pow2 = 2f32.powi(mag.log2().ceil() as i32);
        Self { min: -pow2, max: pow2 }
    }

    /// Fraction of the 256 codes that can actually occur for data in
    /// `[lo, hi]` — the "better utilization" §VI-F claims for the
    /// flexible representation.
    pub fn code_utilization(&self, lo: f32, hi: f32) -> f64 {
        let lo_code = self.quantize(lo) as f64;
        let hi_code = self.quantize(hi) as f64;
        (hi_code - lo_code + 1.0) / 256.0
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self { min: 0.0, max: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_map_to_0_and_255() {
        let q = QuantParams::new(-1.0, 3.0);
        assert_eq!(q.quantize(-1.0), 0);
        assert_eq!(q.quantize(3.0), 255);
    }

    #[test]
    fn asymmetric_range_supported() {
        // §VI-F: "the range doesn't have to be symmetrical and the limits
        // don't have to be powers of two".
        let q = QuantParams::new(-0.37, 1.93);
        let code = q.quantize(0.5);
        assert!((q.dequantize(code) - 0.5).abs() <= q.max_error() * 1.0001);
    }

    #[test]
    fn out_of_range_clamps() {
        let q = QuantParams::new(0.0, 1.0);
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(9.0), 255);
    }

    #[test]
    fn round_trip_error_bounded() {
        let q = QuantParams::new(0.0, 6.0);
        for k in 0..1000 {
            let v = k as f32 * 6.0 / 999.0;
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            assert!(err <= q.max_error() * 1.0001, "v={v} err={err}");
        }
    }

    #[test]
    fn of_values_uses_min_max() {
        let q = QuantParams::of_values(&[0.5, -2.0, 7.25, 1.0]);
        assert_eq!(q.min(), -2.0);
        assert_eq!(q.max(), 7.25);
    }

    #[test]
    fn of_values_degenerate_falls_back() {
        assert_eq!(QuantParams::of_values(&[]), QuantParams::default());
        assert_eq!(QuantParams::of_values(&[3.0, 3.0]), QuantParams::default());
    }

    #[test]
    fn codes_monotone_in_value() {
        let q = QuantParams::new(0.0, 10.0);
        let mut prev = 0u8;
        for k in 0..=100 {
            let c = q.quantize(k as f32 / 10.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn inverted_bounds_panic() {
        let _ = QuantParams::new(2.0, 1.0);
    }

    #[test]
    fn flexible_quantizer_beats_symmetric_pow2_on_relu_data() {
        // Post-ReLU activations in [0, 5.3]: the flexible quantizer uses
        // all 256 codes; the symmetric power-of-two one wastes the
        // negative half and the [5.3, 8) headroom — §VI-F's "higher
        // flexibility and better utilization" claim.
        let data: Vec<f32> = (0..100).map(|k| k as f32 * 5.3 / 99.0).collect();
        let flexible = QuantParams::of_values(&data);
        let symmetric = QuantParams::symmetric_pow2_covering(&data);
        let u_flex = flexible.code_utilization(0.0, 5.3);
        let u_sym = symmetric.code_utilization(0.0, 5.3);
        assert!(u_flex > 0.99, "flexible utilization {u_flex}");
        assert!(u_sym < 0.45, "symmetric utilization {u_sym}");
        // And the flexible one reconstructs more accurately.
        assert!(flexible.max_error() < symmetric.max_error());
    }

    #[test]
    fn symmetric_pow2_range_is_power_of_two() {
        let q = QuantParams::symmetric_pow2_covering(&[0.1, 3.7, -1.0]);
        assert_eq!(q.max(), 4.0);
        assert_eq!(q.min(), -4.0);
    }
}
