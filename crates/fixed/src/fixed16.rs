//! 16-bit fixed-point storage representation (DaDianNao's format, §I).
//!
//! Neurons are stored as unsigned 16-bit integers with an implied binary
//! point: a [`FixedSpec`] with `frac_bits = f` stores real value `v` as
//! `round(v · 2^f)`. Activations are non-negative after the rectifier, so
//! an unsigned representation suffices for the neuron stream; synapses stay
//! bit-parallel signed 16-bit and need no conversion.

use serde::{Deserialize, Serialize};

/// Fixed-point format: number of fraction bits in the 16-bit container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedSpec {
    frac_bits: u8,
}

impl FixedSpec {
    /// Creates a format with `frac_bits` fraction bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15`.
    pub fn new(frac_bits: u8) -> Self {
        assert!(frac_bits <= 15, "frac_bits {frac_bits} exceeds 15");
        Self { frac_bits }
    }

    /// Number of fraction bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Smallest representable step, `2^-frac_bits`.
    pub fn resolution(&self) -> f32 {
        1.0 / (1u32 << self.frac_bits) as f32
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        u16::MAX as f32 * self.resolution()
    }

    /// Converts a real value to the stored integer, rounding to nearest
    /// and saturating at the representable range (negatives clamp to 0:
    /// the neuron stream is post-rectifier).
    ///
    /// ```
    /// use pra_fixed::fixed16::FixedSpec;
    ///
    /// let s = FixedSpec::new(4);
    /// // 5.5 = 0101.1000 -> stored 0b0101_1000
    /// assert_eq!(s.to_stored(5.5), 0b0101_1000);
    /// ```
    pub fn to_stored(&self, v: f32) -> u16 {
        let scaled = (v * (1u32 << self.frac_bits) as f32).round();
        scaled.clamp(0.0, u16::MAX as f32) as u16
    }

    /// Converts a stored integer back to its real value.
    pub fn to_value(&self, stored: u16) -> f32 {
        stored as f32 * self.resolution()
    }
}

impl Default for FixedSpec {
    /// The paper's running example format: 8 integer and 8 fraction bits.
    fn default() -> Self {
        Self { frac_bits: 8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_five_point_five() {
        // §V-A1: n = 5.5 = 0101.1₂; with 1 fraction bit stored = 1011₂.
        let s = FixedSpec::new(1);
        assert_eq!(s.to_stored(5.5), 0b1011);
        assert_eq!(s.to_value(0b1011), 5.5);
    }

    #[test]
    fn negative_clamps_to_zero() {
        let s = FixedSpec::default();
        assert_eq!(s.to_stored(-3.0), 0);
    }

    #[test]
    fn saturates_at_max() {
        let s = FixedSpec::new(8);
        assert_eq!(s.to_stored(1e9), u16::MAX);
    }

    #[test]
    fn round_trip_within_resolution() {
        let s = FixedSpec::new(8);
        for k in 0..1000 {
            let v = k as f32 * 0.237;
            if v < s.max_value() {
                let back = s.to_value(s.to_stored(v));
                assert!((back - v).abs() <= s.resolution() / 2.0 * 1.0001);
            }
        }
    }

    #[test]
    fn resolution_halves_per_bit() {
        assert_eq!(FixedSpec::new(0).resolution(), 1.0);
        assert_eq!(FixedSpec::new(1).resolution(), 0.5);
        assert_eq!(FixedSpec::new(8).resolution(), 1.0 / 256.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 15")]
    fn too_many_frac_bits_panics() {
        let _ = FixedSpec::new(16);
    }
}
