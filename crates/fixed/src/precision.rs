//! Per-layer precision windows (§II, §V-F).
//!
//! Fixed-length hardware processes an *Excess of Precision*: unless a layer
//! needs the full 16-bit range, some prefix (most-significant) and suffix
//! (least-significant) bits are always zero or never affect accuracy.
//! Stripes exploits this with a per-layer precision `p`; Pragmatic's
//! software guidance (§V-F) goes further and *zeroes out* prefix and suffix
//! bits at the output of each layer using AND gates and precision-derived
//! bit masks, reducing essential bit content.
//!
//! A [`PrecisionWindow`] is the inclusive bit range `[lsb, msb]` a layer
//! needs; [`PrecisionWindow::trim`] is the hardware masking operation.

use serde::{Deserialize, Serialize};

/// An inclusive range of significant bit positions `[lsb, msb]` within a
/// 16-bit stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrecisionWindow {
    msb: u8,
    lsb: u8,
}

impl PrecisionWindow {
    /// Creates a window covering bits `lsb..=msb`.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb` or `msb > 15`.
    pub fn new(msb: u8, lsb: u8) -> Self {
        assert!(msb >= lsb, "msb {msb} below lsb {lsb}");
        assert!(msb <= 15, "msb {msb} exceeds 15");
        Self { msb, lsb }
    }

    /// A window of `p` bits anchored at `lsb`, i.e. bits `lsb..lsb+p`.
    ///
    /// # Panics
    ///
    /// Panics if the window would extend past bit 15 or `p == 0`.
    pub fn with_width(p: u8, lsb: u8) -> Self {
        assert!(p >= 1, "precision must be at least 1 bit");
        Self::new(lsb + p - 1, lsb)
    }

    /// The full 16-bit window (no trimming).
    pub fn full() -> Self {
        Self { msb: 15, lsb: 0 }
    }

    /// Most-significant bit position of the window.
    pub fn msb(&self) -> u8 {
        self.msb
    }

    /// Least-significant bit position of the window.
    pub fn lsb(&self) -> u8 {
        self.lsb
    }

    /// The window width in bits — the layer's precision `p`.
    pub fn width(&self) -> u8 {
        self.msb - self.lsb + 1
    }

    /// The AND mask that implements trimming.
    pub fn mask(&self) -> u16 {
        let ones = if self.width() >= 16 { u16::MAX } else { (1u16 << self.width()) - 1 };
        ones << self.lsb
    }

    /// Zeroes all bits outside the window — the §V-F output trimming.
    ///
    /// ```
    /// use pra_fixed::PrecisionWindow;
    ///
    /// let w = PrecisionWindow::new(5, 2);
    /// assert_eq!(w.trim(0b1111_1111), 0b0011_1100);
    /// ```
    #[inline]
    pub fn trim(&self, v: u16) -> u16 {
        v & self.mask()
    }

    /// Number of prefix (most-significant) bits removed by the window.
    pub fn prefix_bits(&self) -> u8 {
        15 - self.msb
    }

    /// Number of suffix (least-significant) bits removed by the window.
    pub fn suffix_bits(&self) -> u8 {
        self.lsb
    }
}

impl Default for PrecisionWindow {
    fn default() -> Self {
        Self::full()
    }
}

/// Number of bits needed to represent `v` exactly (position of the leading
/// one plus one); 0 for `v == 0`.
pub fn required_bits(v: u16) -> u8 {
    (16 - v.leading_zeros()) as u8
}

/// Profiles the minimal precision window for a stream of stored values
/// using the magnitude criterion only: the narrowest window such that the
/// total magnitude lost to masking is at most `tolerance` of the total
/// magnitude of the stream. See [`profile_window_clipped`] for the
/// variant that additionally tolerates clipping rare large values, which
/// is what recovers Table II-style precisions on realistic streams.
///
/// The search shrinks the suffix first (dropping low-order bits loses the
/// least magnitude per bit), then the prefix, mirroring how reduced
/// fraction/integer bit counts are chosen in the profiling papers.
///
/// Returns the full window for an empty or all-zero stream with any
/// `tolerance >= 0`.
pub fn profile_window(values: &[u16], tolerance: f64) -> PrecisionWindow {
    assert!((0.0..1.0).contains(&tolerance), "tolerance must be in [0, 1)");
    let total: u64 = values.iter().map(|&v| v as u64).sum();
    if total == 0 {
        return PrecisionWindow::full();
    }
    let budget = (total as f64 * tolerance) as u64;

    // Shrink the suffix: raising lsb loses the masked low bits.
    let mut lsb = 0u8;
    let mut lost: u64 = 0;
    while lsb < 15 {
        let extra: u64 = values.iter().map(|&v| (v & ((1u16 << (lsb + 1)) - 1)) as u64).sum();
        if extra > budget {
            break;
        }
        lost = extra;
        lsb += 1;
    }

    // Shrink the prefix: lowering msb loses the masked high bits.
    let mut msb = 15u8;
    while msb > lsb {
        let mask_hi = !(((1u32 << msb) - 1) as u16); // bits msb..15
        let extra: u64 = values.iter().map(|&v| (v & mask_hi) as u64).sum();
        if lost + extra > budget {
            break;
        }
        msb -= 1;
    }
    PrecisionWindow::new(msb, lsb)
}

/// Profiles a precision window following the methodology of Judd et al.
/// (the paper's refs 2 and 4) as applied to real activation streams: network
/// accuracy tolerates *clipping* a small share of outlier values to the
/// window maximum, so the prefix is chosen by a quantile criterion — the
/// smallest `msb` such that at most `clip_quantile` of the values carry
/// bits above it — while the suffix uses the magnitude criterion of
/// [`profile_window`] over the non-clipped values.
pub fn profile_window_clipped(
    values: &[u16],
    tolerance: f64,
    clip_quantile: f64,
) -> PrecisionWindow {
    assert!((0.0..1.0).contains(&clip_quantile), "clip quantile must be in [0, 1)");
    let n = values.len();
    if n == 0 || values.iter().all(|&v| v == 0) {
        return PrecisionWindow::full();
    }
    let budget = (n as f64 * clip_quantile) as usize;
    // Smallest msb such that at most `budget` values carry bits above it
    // (a window topping at `m` clips every value >= 2^(m+1)).
    let mut msb = 15u8;
    while msb > 0 {
        let candidate = msb - 1;
        let clipped = values.iter().filter(|&&v| u32::from(v) >= 1u32 << (candidate + 1)).count();
        if clipped > budget {
            break;
        }
        msb = candidate;
    }
    // Suffix over the surviving (non-clipped) values.
    let kept: Vec<u16> =
        values.iter().copied().filter(|&v| u32::from(v) < 1u32 << (msb + 1)).collect();
    let suffix = profile_window(&kept, tolerance);
    PrecisionWindow::new(msb, suffix.lsb().min(msb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_mask() {
        let w = PrecisionWindow::new(8, 2);
        assert_eq!(w.width(), 7);
        assert_eq!(w.mask(), 0b0000_0001_1111_1100);
        assert_eq!(w.prefix_bits(), 7);
        assert_eq!(w.suffix_bits(), 2);
    }

    #[test]
    fn full_window_is_identity() {
        let w = PrecisionWindow::full();
        assert_eq!(w.width(), 16);
        for v in [0u16, 1, 0xFFFF, 0x8000] {
            assert_eq!(w.trim(v), v);
        }
    }

    #[test]
    fn with_width_anchors_at_lsb() {
        let w = PrecisionWindow::with_width(5, 2);
        assert_eq!(w.msb(), 6);
        assert_eq!(w.lsb(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds 15")]
    fn overwide_window_panics() {
        let _ = PrecisionWindow::with_width(15, 2);
    }

    #[test]
    fn trim_figure1_example() {
        // Fig. 1: an 8-bit value with 4 integer / 4 fraction bits where only
        // bits 1..=5 (of the stored integer) are required. Trimming keeps
        // exactly the essential window.
        let stored = 0b0010_1010u16; // 0010.1010 with two prefix, one suffix zero
        let w = PrecisionWindow::new(5, 1);
        assert_eq!(w.trim(stored), stored); // window covers all essential bits
        let narrower = PrecisionWindow::new(5, 2);
        assert_eq!(narrower.trim(stored), 0b0010_1000);
    }

    #[test]
    fn required_bits_examples() {
        assert_eq!(required_bits(0), 0);
        assert_eq!(required_bits(1), 1);
        assert_eq!(required_bits(0b101), 3);
        assert_eq!(required_bits(u16::MAX), 16);
    }

    #[test]
    fn profile_exact_stream_zero_tolerance() {
        // Values use bits 2..=6 only; with zero tolerance the window must
        // cover exactly that range.
        let vals = vec![0b100u16, 0b1000100, 0b10100, 0];
        let w = profile_window(&vals, 0.0);
        assert_eq!(w.lsb(), 2);
        assert_eq!(w.msb(), 6);
    }

    #[test]
    fn profile_tolerance_drops_noise_bits() {
        // Large values at bits 8..=11 plus tiny bit-0 noise: 1% tolerance
        // should drop the noise bits but keep the signal.
        let mut vals = vec![];
        for k in 0..100u16 {
            vals.push((0b1001 << 8) | (k % 2));
        }
        let w = profile_window(&vals, 0.01);
        assert!(w.lsb() >= 1, "lsb {} should skip noise", w.lsb());
        assert_eq!(w.msb(), 11);
    }

    #[test]
    fn profile_all_zero_stream_is_full() {
        assert_eq!(profile_window(&[0, 0, 0], 0.01), PrecisionWindow::full());
        assert_eq!(profile_window(&[], 0.0), PrecisionWindow::full());
    }

    #[test]
    fn profile_trimming_loss_within_tolerance() {
        let vals: Vec<u16> = (1..2000u16).map(|k| k.wrapping_mul(2654435761u32 as u16)).collect();
        let tol = 0.02;
        let w = profile_window(&vals, tol);
        let total: u64 = vals.iter().map(|&v| v as u64).sum();
        let lost: u64 = vals.iter().map(|&v| (v - w.trim(v)) as u64).sum();
        assert!(lost as f64 <= total as f64 * tol + 1.0);
    }

    #[test]
    fn clipped_profile_ignores_rare_outliers() {
        // 1000 values in bits 2..=8, plus 5 outliers with bit 14 set: the
        // magnitude criterion must keep bit 14, the 1% clip quantile drops
        // it.
        let mut vals: Vec<u16> = (0..1000u16).map(|k| ((k % 120) + 4) << 2).collect();
        for _ in 0..5 {
            vals.push(1 << 14);
        }
        let magnitude_only = profile_window(&vals, 0.01);
        assert_eq!(magnitude_only.msb(), 14);
        let clipped = profile_window_clipped(&vals, 0.01, 0.01);
        assert!(clipped.msb() <= 9, "msb {}", clipped.msb());
    }

    #[test]
    fn clipped_profile_keeps_common_high_bits() {
        // 30% of values at bit 12: far above any sane clip quantile.
        let vals: Vec<u16> =
            (0..1000u16).map(|k| if k % 3 == 0 { 1 << 12 } else { 1 << 4 }).collect();
        let w = profile_window_clipped(&vals, 0.0, 0.01);
        assert_eq!(w.msb(), 12);
        assert_eq!(w.lsb(), 4);
    }

    #[test]
    fn clipped_profile_all_zero_is_full() {
        assert_eq!(profile_window_clipped(&[0, 0], 0.01, 0.01), PrecisionWindow::full());
    }

    #[test]
    fn trim_never_increases_essential_bits() {
        let w = PrecisionWindow::new(9, 3);
        for v in (0..=u16::MAX).step_by(7) {
            assert!(w.trim(v).count_ones() <= v.count_ones());
        }
    }
}
