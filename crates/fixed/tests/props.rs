//! Property-based tests for the numeric substrate invariants listed in
//! DESIGN.md §6.

use proptest::prelude::*;

use pra_fixed::csd;
use pra_fixed::oneffset::OneffsetGenerator;
use pra_fixed::precision::{profile_window, required_bits};
use pra_fixed::{essential_bits, OneffsetList, PrecisionWindow, QuantParams};

proptest! {
    /// Oneffset round-trip: Σ 2^pow reconstructs the value exactly.
    #[test]
    fn oneffset_round_trip(v in any::<u16>()) {
        prop_assert_eq!(OneffsetList::encode(v).decode(), v);
    }

    /// The oneffset count is the essential-bit count.
    #[test]
    fn oneffset_len_is_popcount(v in any::<u16>()) {
        prop_assert_eq!(OneffsetList::encode(v).len() as u32, essential_bits(v));
    }

    /// Powers are strictly ascending and eon marks exactly the last.
    #[test]
    fn oneffset_order_and_eon(v in 1u16..) {
        let l = OneffsetList::encode(v);
        let offs: Vec<_> = l.iter().collect();
        for w in offs.windows(2) {
            prop_assert!(w[0].pow < w[1].pow);
            prop_assert!(!w[0].eon);
        }
        prop_assert!(offs.last().unwrap().eon);
    }

    /// The streaming generator emits the same sequence as the list.
    #[test]
    fn generator_matches_list(v in any::<u16>()) {
        let g: Vec<_> = OneffsetGenerator::new(v).collect();
        let l: Vec<_> = OneffsetList::encode(v).iter().collect();
        prop_assert_eq!(g, l);
    }

    /// CSD round-trip and canonical form: value reconstructs, no adjacent
    /// non-zero digits, term count never exceeds popcount.
    #[test]
    fn csd_canonical(v in any::<u16>()) {
        let t = csd::encode(v);
        prop_assert_eq!(csd::decode(&t), v as i32);
        for w in t.windows(2) {
            prop_assert!(w[1].pow >= w[0].pow + 2);
        }
        if v != 0 {
            prop_assert!(t.len() as u32 <= essential_bits(v));
        }
    }

    /// Trimming is idempotent and only removes bits.
    #[test]
    fn trim_idempotent(v in any::<u16>(), msb in 0u8..16, lsb in 0u8..16) {
        prop_assume!(msb >= lsb);
        let w = PrecisionWindow::new(msb, lsb);
        let t = w.trim(v);
        prop_assert_eq!(w.trim(t), t);
        prop_assert_eq!(t & !v, 0); // no new bits
        prop_assert!(essential_bits(t) <= essential_bits(v));
    }

    /// A profiled window with zero tolerance preserves every value.
    #[test]
    fn profile_zero_tolerance_lossless(values in prop::collection::vec(any::<u16>(), 1..200)) {
        let w = profile_window(&values, 0.0);
        for &v in &values {
            prop_assert_eq!(w.trim(v), v);
        }
    }

    /// A profiled window never loses more magnitude than the tolerance.
    #[test]
    fn profile_respects_tolerance(
        values in prop::collection::vec(any::<u16>(), 1..200),
        tol_milli in 0u32..200,
    ) {
        let tol = tol_milli as f64 / 1000.0;
        let w = profile_window(&values, tol);
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        let lost: u64 = values.iter().map(|&v| (v - w.trim(v)) as u64).sum();
        prop_assert!(lost as f64 <= total as f64 * tol + 1.0);
    }

    /// required_bits is the minimal width that can hold the value.
    #[test]
    fn required_bits_minimal(v in 1u16..) {
        let b = required_bits(v);
        prop_assert!((v as u32) < (1u32 << b));
        prop_assert!(v as u32 > (1u32 << (b - 1)) - 1);
    }

    /// Quantization round-trip error stays within half a step.
    #[test]
    fn quant_error_bounded(lo in -100.0f32..100.0, span in 0.1f32..100.0, frac in 0.0f32..1.0) {
        let q = QuantParams::new(lo, lo + span);
        let v = lo + span * frac;
        let err = (q.dequantize(q.quantize(v)) - v).abs();
        prop_assert!(err <= q.max_error() * 1.01);
    }

    /// Quantized codes are monotone in the input value.
    #[test]
    fn quant_monotone(lo in -10.0f32..10.0, span in 0.5f32..50.0, a in 0.0f32..1.0, b in 0.0f32..1.0) {
        let q = QuantParams::new(lo, lo + span);
        let (a, b) = (lo + span * a.min(b), lo + span * a.max(b));
        prop_assert!(q.quantize(a) <= q.quantize(b));
    }
}
