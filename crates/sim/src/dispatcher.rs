//! Dispatcher model (§V-C, §V-A4).
//!
//! The dispatcher reads a pallet's 16 neuron bricks from NM, converts them
//! on-the-fly to oneffsets (the oneffset generators pipeline behind the
//! fetch and their latency is hidden), and broadcasts one oneffset per
//! neuron per cycle to all tiles. Its performance-visible behaviour is the
//! fetch latency: `NMC` cycles — one per NM row touched — which overlaps
//! with processing of the current pallet, so a pallet step costs
//! `max(NMC, PC)` cycles.

use serde::{Deserialize, Serialize};

use pra_tensor::brick::{BrickStep, PalletRef};
use pra_tensor::ConvLayerSpec;

use crate::neuron_memory::NeuronMemory;

/// The dispatcher: wraps the NM model and implements the overlap rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Dispatcher {
    nm: NeuronMemory,
}

impl Dispatcher {
    /// Creates a dispatcher over the given NM model.
    pub fn new(nm: NeuronMemory) -> Self {
        Self { nm }
    }

    /// The underlying NM model.
    pub fn neuron_memory(&self) -> &NeuronMemory {
        &self.nm
    }

    /// NM fetch cycles (`NMC`) for one pallet's bricks at one brick step:
    /// one cycle per distinct row activated, zero when every brick is
    /// padding.
    pub fn fetch_cycles(&self, spec: &ConvLayerSpec, pallet: PalletRef, step: BrickStep) -> u64 {
        self.nm.pallet_fetch_rows(spec, pallet, step) as u64
    }

    /// The §V-A4 overlap rule: processing the current step takes `pc`
    /// cycles while the next fetch takes `nmc`; the observed cost is the
    /// maximum, and any excess of `nmc` over `pc` is an NM stall.
    pub fn overlapped_cost(pc: u64, nmc: u64) -> (u64, u64) {
        let cost = pc.max(nmc);
        (cost, cost - pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron_memory::NmLayout;
    use pra_tensor::ConvLayerSpec;

    #[test]
    fn overlap_hides_fast_fetches() {
        assert_eq!(Dispatcher::overlapped_cost(10, 2), (10, 0));
        assert_eq!(Dispatcher::overlapped_cost(2, 10), (10, 8));
        assert_eq!(Dispatcher::overlapped_cost(3, 3), (3, 0));
    }

    #[test]
    fn fetch_cycles_track_rows() {
        let spec = ConvLayerSpec::new("t", (64, 64, 64), (3, 3), 16, 1, 0).unwrap();
        let d = Dispatcher::new(NeuronMemory::new(NmLayout::PalletMajor, 256));
        let pallet = PalletRef { wx0: 0, wy: 2, lanes: 16 };
        let step = BrickStep { fx: 0, fy: 0, i0: 0 };
        let c = d.fetch_cycles(&spec, pallet, step);
        assert!((1..=2).contains(&c), "cycles {c}");
    }
}
