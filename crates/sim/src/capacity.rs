//! On-chip memory capacity model (§IV-B).
//!
//! DaDianNao's design goal was "minimizing off-chip bandwidth while
//! maximizing on-chip compute utilization": synapses live in the 16 × 2 MB
//! eDRAM SBs and all inter-layer neurons in the 4 MB central NM, so
//! off-chip accesses happen only for the input image, each layer's
//! synapses once, and the final output. This module checks those
//! assumptions per layer — which real networks violate for early, large
//! layers — and quantifies the spill traffic when they do. Pragmatic
//! inherits the memory system unchanged, so the analysis applies to every
//! modelled engine equally.

use serde::{Deserialize, Serialize};

use pra_tensor::{ConvLayerSpec, BRICK};

use crate::config::ChipConfig;

/// Memory footprint of one layer and how it maps onto the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes of input neurons as stored in NM (ragged channel bricks are
    /// padded to whole bricks by the pallet-major layout).
    pub input_neuron_bytes: usize,
    /// Bytes of output neurons written back to NM.
    pub output_neuron_bytes: usize,
    /// Bytes of synapses for the whole layer.
    pub synapse_bytes: usize,
    /// NM bytes needed while the layer runs (input + output live
    /// simultaneously, double-buffered across layers).
    pub nm_required_bytes: usize,
    /// Whether input + output fit the central NM.
    pub fits_nm: bool,
    /// Whether the layer's synapses fit the combined SBs.
    pub fits_sb: bool,
    /// Neuron bytes that must spill off-chip (read + written back) when
    /// the NM overflows.
    pub nm_spill_bytes: usize,
    /// Times the SBs must be refilled from off-chip during the layer
    /// (1 = loaded once, the DaDN assumption).
    pub sb_refills: usize,
}

/// Computes the footprint of `spec` under `cfg` with `bits`-wide neurons
/// and 16-bit synapses.
pub fn layer_footprint(cfg: &ChipConfig, spec: &ConvLayerSpec, bits: u32) -> MemoryFootprint {
    let neuron_bytes = bits as usize / 8;
    let padded_depth = spec.input.i.div_ceil(BRICK) * BRICK;
    let input_neuron_bytes = spec.input.x * spec.input.y * padded_depth * neuron_bytes;
    let out = spec.output_dim();
    let out_padded_depth = out.i.div_ceil(BRICK) * BRICK;
    let output_neuron_bytes = out.x * out.y * out_padded_depth * neuron_bytes;
    // Synapses stay 16-bit in every configuration of the paper.
    let synapse_bytes = spec.num_filters * spec.synapses_per_filter() * 2;

    let nm_required_bytes = input_neuron_bytes + output_neuron_bytes;
    let nm_capacity = cfg.nm_bytes;
    let sb_capacity = cfg.sb_bytes_per_tile * cfg.tiles;
    let fits_nm = nm_required_bytes <= nm_capacity;
    let fits_sb = synapse_bytes <= sb_capacity;
    MemoryFootprint {
        input_neuron_bytes,
        output_neuron_bytes,
        synapse_bytes,
        nm_required_bytes,
        fits_nm,
        fits_sb,
        nm_spill_bytes: nm_required_bytes.saturating_sub(nm_capacity),
        sb_refills: synapse_bytes.div_ceil(sb_capacity).max(1),
    }
}

/// Network-level capacity summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Layers whose neurons overflow NM.
    pub nm_overflow_layers: usize,
    /// Layers whose synapses overflow the SBs.
    pub sb_overflow_layers: usize,
    /// Total off-chip neuron spill traffic (bytes).
    pub total_spill_bytes: usize,
    /// Peak NM requirement across layers (bytes).
    pub peak_nm_bytes: usize,
    /// Peak synapse footprint across layers (bytes).
    pub peak_sb_bytes: usize,
}

/// Summarizes [`layer_footprint`] over a network's layers.
pub fn network_report<'a>(
    cfg: &ChipConfig,
    specs: impl IntoIterator<Item = &'a ConvLayerSpec>,
    bits: u32,
) -> CapacityReport {
    let mut r = CapacityReport::default();
    for spec in specs {
        let f = layer_footprint(cfg, spec, bits);
        if !f.fits_nm {
            r.nm_overflow_layers += 1;
        }
        if !f.fits_sb {
            r.sb_overflow_layers += 1;
        }
        r.total_spill_bytes += f.nm_spill_bytes;
        r.peak_nm_bytes = r.peak_nm_bytes.max(f.nm_required_bytes);
        r.peak_sb_bytes = r.peak_sb_bytes.max(f.synapse_bytes);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nx: usize, i: usize, f: usize, n: usize) -> ConvLayerSpec {
        ConvLayerSpec::new("cap", (nx, nx, i), (f, f), n, 1, f / 2).unwrap()
    }

    #[test]
    fn small_layer_fits_everything() {
        let cfg = ChipConfig::dadn();
        let fp = layer_footprint(&cfg, &spec(13, 256, 3, 384), 16);
        assert!(fp.fits_nm);
        assert!(fp.fits_sb);
        assert_eq!(fp.nm_spill_bytes, 0);
        assert_eq!(fp.sb_refills, 1);
    }

    #[test]
    fn vgg19_early_layers_overflow_nm() {
        // conv1_2: 224x224x64 in + 224x224x64 out = 12.8 MB >> 4 MB NM.
        let cfg = ChipConfig::dadn();
        let fp = layer_footprint(&cfg, &spec(224, 64, 3, 64), 16);
        assert!(!fp.fits_nm);
        assert!(fp.nm_spill_bytes > 8 << 20);
        assert!(fp.fits_sb);
    }

    #[test]
    fn quantized_halves_neuron_footprint() {
        let cfg = ChipConfig::dadn();
        let s = spec(112, 128, 3, 128);
        let f16 = layer_footprint(&cfg, &s, 16);
        let f8 = layer_footprint(&cfg, &s, 8);
        assert_eq!(f8.input_neuron_bytes * 2, f16.input_neuron_bytes);
        assert!(f8.nm_required_bytes < f16.nm_required_bytes);
    }

    #[test]
    fn ragged_depth_pads_to_bricks() {
        let cfg = ChipConfig::dadn();
        let s = ConvLayerSpec::new("r", (10, 10, 3), (3, 3), 16, 1, 1).unwrap();
        let fp = layer_footprint(&cfg, &s, 16);
        // 3 channels stored as one 16-deep brick.
        assert_eq!(fp.input_neuron_bytes, 10 * 10 * 16 * 2);
    }

    #[test]
    fn fully_connected_synapses_overflow_sb() {
        // A VGG-style FC layer: 25088 inputs x 4096 outputs of 16-bit
        // synapses = ~205 MB, far beyond the 32 MB of SBs.
        let cfg = ChipConfig::dadn();
        let fc = ConvLayerSpec::new("fc6", (1, 1, 25088), (1, 1), 4096, 1, 0).unwrap();
        let fp = layer_footprint(&cfg, &fc, 16);
        assert!(!fp.fits_sb);
        assert!(fp.sb_refills >= 6);
    }

    #[test]
    fn network_report_aggregates() {
        let cfg = ChipConfig::dadn();
        let specs = vec![spec(224, 64, 3, 64), spec(13, 256, 3, 384)];
        let r = network_report(&cfg, &specs, 16);
        assert_eq!(r.nm_overflow_layers, 1);
        assert_eq!(r.sb_overflow_layers, 0);
        assert!(r.peak_nm_bytes > 12 << 20);
        assert!(r.total_spill_bytes > 0);
    }
}
