//! Simulation substrate for the Pragmatic (MICRO 2017) reproduction.
//!
//! Everything the accelerator models share: the chip configuration of the
//! DaDianNao baseline (§IV-B), the memory system — central eDRAM Neuron
//! Memory (NM), per-tile eDRAM Synapse Buffers (SB), NBin/NBout SRAM — with
//! the address layouts and row-activation math behind §V-A4's pallet-fetch
//! analysis, the dispatcher fetch model, access counters consumed by the
//! energy model, and the run-result/metrics types every engine reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod config;
pub mod counters;
pub mod dispatcher;
pub mod metrics;
pub mod neuron_memory;

pub use capacity::{layer_footprint, CapacityReport, MemoryFootprint};
pub use config::ChipConfig;
pub use counters::AccessCounters;
pub use dispatcher::Dispatcher;
pub use metrics::{geomean, LayerResult, RunResult};
pub use neuron_memory::{NeuronMemory, NmLayout};
