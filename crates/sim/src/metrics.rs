//! Run results and derived metrics.

use serde::{Deserialize, Serialize};

use crate::counters::AccessCounters;

/// Result of simulating one convolutional layer on one engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerResult {
    /// The layer's name.
    pub layer: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Multiplications the layer performs (engine-independent).
    pub multiplications: u64,
    /// Access/activity counters for the energy model.
    pub counters: AccessCounters,
}

/// Result of simulating a network's convolutional layers on one engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Engine label, e.g. `"DaDN"`, `"Stripes"`, `"PRA-2b"`.
    pub engine: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
}

impl RunResult {
    /// Creates a result with no layers.
    pub fn new(engine: impl Into<String>) -> Self {
        Self { engine: engine.into(), layers: Vec::new() }
    }

    /// Total cycles over all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total effectual terms processed.
    pub fn total_terms(&self) -> u64 {
        self.layers.iter().map(|l| l.counters.terms).sum()
    }

    /// Aggregated counters over all layers.
    pub fn total_counters(&self) -> AccessCounters {
        let mut c = AccessCounters::new();
        for l in &self.layers {
            c.merge(&l.counters);
        }
        c
    }

    /// Speedup of this run relative to `baseline` over the whole
    /// convolutional stack (the paper's performance metric).
    ///
    /// # Panics
    ///
    /// Panics if this run has zero total cycles.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let own = self.total_cycles();
        assert!(own > 0, "speedup undefined for a zero-cycle run");
        baseline.total_cycles() as f64 / own as f64
    }

    /// Per-layer speedups relative to `baseline` (layers matched by
    /// position).
    pub fn layer_speedups(&self, baseline: &RunResult) -> Vec<f64> {
        self.layers
            .iter()
            .zip(&baseline.layers)
            .map(|(a, b)| b.cycles as f64 / a.cycles as f64)
            .collect()
    }
}

/// Geometric mean, the paper's cross-network summary statistic ("geo" bars
/// in Figs. 9–12).
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(engine: &str, cycles: &[u64]) -> RunResult {
        RunResult {
            engine: engine.into(),
            layers: cycles
                .iter()
                .enumerate()
                .map(|(i, &c)| LayerResult {
                    layer: format!("l{i}"),
                    cycles: c,
                    multiplications: 100,
                    counters: AccessCounters { terms: c * 2, ..Default::default() },
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_layers() {
        let r = run("e", &[10, 20, 30]);
        assert_eq!(r.total_cycles(), 60);
        assert_eq!(r.total_terms(), 120);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = run("base", &[100, 100]);
        let fast = run("fast", &[40, 60]);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn layer_speedups_align_by_position() {
        let base = run("base", &[100, 90]);
        let fast = run("fast", &[50, 30]);
        assert_eq!(fast.layer_speedups(&base), vec![2.0, 3.0]);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.5, 2.5, 2.5]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn total_counters_merge() {
        let r = run("e", &[5, 7]);
        assert_eq!(r.total_counters().terms, 24);
    }
}
