//! Neuron Memory (NM) layout and row-activation model (§IV-B, §V-A4).
//!
//! All inter-layer neuron outputs live in a 4 MB central eDRAM Neuron
//! Memory connected to the tiles by a broadcast interconnect. The
//! dispatcher assembles a pallet's 16 neuron bricks per brick step; how
//! many NM *rows* those bricks touch determines the fetch latency `NMC`
//! that overlaps with the compute time `PC` (§V-A4: the next pallet begins
//! after `max(NMC, PC)`).
//!
//! Two layouts are modelled:
//!
//! * [`NmLayout::PalletMajor`] (default) — brick-interleaved storage
//!   `((y · ceil(I/16) + i/16) · Nx + x) · 16 + i mod 16`: bricks of
//!   adjacent windows (same `y`, `i`, consecutive `x`) are contiguous, so a
//!   unit-stride pallet lands in one or two rows exactly as §V-A4 claims.
//! * [`NmLayout::RowMajor`] — plain `i`-fastest order, the naive layout;
//!   a pallet's bricks are `I` neurons apart and spread over many rows.
//!   Kept as the `ablation_nm_layout` study.

use serde::{Deserialize, Serialize};

use pra_tensor::brick::{brick_for, BrickStep, PalletRef};
use pra_tensor::{ConvLayerSpec, BRICK, PALLET};

/// Storage order of a layer's neuron array inside NM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NmLayout {
    /// Brick-interleaved layout optimised for pallet fetches (default).
    #[default]
    PalletMajor,
    /// Naive `i`-fastest layout (ablation).
    RowMajor,
}

/// The Neuron Memory model: layout plus row geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronMemory {
    layout: NmLayout,
    /// Neurons per row (row bytes over neuron width).
    row_neurons: usize,
}

impl NeuronMemory {
    /// Creates a model with the given layout and `row_neurons` per row.
    ///
    /// # Panics
    ///
    /// Panics if `row_neurons` is not a positive multiple of the brick
    /// size (rows hold whole bricks).
    pub fn new(layout: NmLayout, row_neurons: usize) -> Self {
        assert!(
            row_neurons >= BRICK && row_neurons.is_multiple_of(BRICK),
            "row must hold whole bricks, got {row_neurons}"
        );
        Self { layout, row_neurons }
    }

    /// The configured layout.
    pub fn layout(&self) -> NmLayout {
        self.layout
    }

    /// Neurons per NM row.
    pub fn row_neurons(&self) -> usize {
        self.row_neurons
    }

    /// Linear neuron address of `(x, y, i)` for a layer stored with this
    /// layout.
    pub fn address(&self, spec: &ConvLayerSpec, x: usize, y: usize, i: usize) -> usize {
        let (nx, ni) = (spec.input.x, spec.input.i);
        match self.layout {
            NmLayout::RowMajor => (y * nx + x) * ni + i,
            NmLayout::PalletMajor => {
                let bricks_deep = ni.div_ceil(BRICK);
                let ib = i / BRICK;
                ((y * bricks_deep + ib) * nx + x) * BRICK + (i % BRICK)
            }
        }
    }

    /// NM row index containing `(x, y, i)`.
    pub fn row_of(&self, spec: &ConvLayerSpec, x: usize, y: usize, i: usize) -> usize {
        self.address(spec, x, y, i) / self.row_neurons
    }

    /// Number of distinct NM rows touched when fetching one pallet's
    /// bricks for one brick step. Padding bricks (out-of-bounds) need no
    /// fetch; a fully padded step returns 0.
    pub fn pallet_fetch_rows(
        &self,
        spec: &ConvLayerSpec,
        pallet: PalletRef,
        step: BrickStep,
    ) -> usize {
        // A brick occupies BRICK consecutive addresses in PalletMajor
        // layout but spans no row boundary there (rows hold whole bricks
        // and bricks are aligned); in RowMajor it is also contiguous and
        // brick-aligned because `i0` is a multiple of BRICK. So each brick
        // touches exactly one row unless it straddles (non-aligned I); we
        // conservatively count both ends. At most two rows per lane fit on
        // the stack, keeping this call allocation-free — it runs once per
        // brick step in the cycle simulator's hot loop.
        // The 2-rows-per-lane stack buffer relies on the PalletRef
        // invariant every generator upholds (at most PALLET lanes);
        // enforce it rather than silently truncating a hand-built pallet.
        assert!(pallet.lanes <= PALLET, "pallet has {} lanes, max {PALLET}", pallet.lanes);
        let mut rows = [0usize; 2 * PALLET];
        let mut n = 0usize;
        for lane in 0..pallet.lanes {
            let b = brick_for(spec, pallet, lane, step);
            if b.x < 0 || b.y < 0 || b.x as usize >= spec.input.x || b.y as usize >= spec.input.y {
                continue; // padding: dispatcher injects zeros
            }
            let (x, y) = (b.x as usize, b.y as usize);
            let first = self.row_of(spec, x, y, b.i);
            let last_i = (b.i + BRICK - 1).min(spec.input.i - 1);
            let last = self.row_of(spec, x, y, last_i);
            rows[n] = first;
            n += 1;
            if last != first {
                rows[n] = last;
                n += 1;
            }
        }
        let rows = &mut rows[..n];
        rows.sort_unstable();
        let mut distinct = 0usize;
        for k in 0..rows.len() {
            if k == 0 || rows[k] != rows[k - 1] {
                distinct += 1;
            }
        }
        distinct
    }
}

impl Default for NeuronMemory {
    /// DaDN's 512-byte rows of 16-bit neurons: 256 neurons per row.
    fn default() -> Self {
        Self::new(NmLayout::PalletMajor, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_tensor::ConvLayerSpec;

    fn spec(nx: usize, i: usize, stride: usize) -> ConvLayerSpec {
        ConvLayerSpec::new("t", (nx, nx, i), (3, 3), 16, stride, 1).unwrap()
    }

    #[test]
    fn pallet_major_unit_stride_hits_at_most_two_rows() {
        // §V-A4: "with unit stride the 256 neurons would be typically all
        // stored in the same NM row or at most over two adjacent NM rows".
        let s = spec(64, 256, 1);
        let nm = NeuronMemory::default();
        let pallet = PalletRef { wx0: 8, wy: 3, lanes: 16 };
        for step in pra_tensor::brick::brick_steps(&s).iter().take(24) {
            let rows = nm.pallet_fetch_rows(&s, pallet, *step);
            assert!(rows <= 2, "step {step:?} touched {rows} rows");
        }
    }

    #[test]
    fn larger_stride_touches_more_rows() {
        let nm = NeuronMemory::default();
        let s1 = ConvLayerSpec::new("s1", (128, 128, 64), (3, 3), 16, 1, 0).unwrap();
        let s4 = ConvLayerSpec::new("s4", (128, 128, 64), (3, 3), 16, 4, 0).unwrap();
        let pallet = PalletRef { wx0: 0, wy: 1, lanes: 16 };
        let step = BrickStep { fx: 1, fy: 1, i0: 0 };
        let r1 = nm.pallet_fetch_rows(&s1, pallet, step);
        let r4 = nm.pallet_fetch_rows(&s4, pallet, step);
        assert!(r4 > r1, "stride-4 rows {r4} vs stride-1 rows {r1}");
        assert!(r4 <= 4);
    }

    #[test]
    fn row_major_spreads_pallets_when_deep() {
        // With I = 256 the naive layout separates adjacent windows' bricks
        // by 256 neurons = one full row each.
        let s = spec(64, 256, 1);
        let rm = NeuronMemory::new(NmLayout::RowMajor, 256);
        let pm = NeuronMemory::new(NmLayout::PalletMajor, 256);
        let pallet = PalletRef { wx0: 8, wy: 3, lanes: 16 };
        let step = BrickStep { fx: 1, fy: 1, i0: 16 };
        assert!(rm.pallet_fetch_rows(&s, pallet, step) > pm.pallet_fetch_rows(&s, pallet, step));
    }

    #[test]
    fn padding_bricks_need_no_rows() {
        let s = spec(20, 16, 1);
        let nm = NeuronMemory::default();
        // Window row wy = 0 with fy = 0 reads y = -1: all padding.
        let pallet = PalletRef { wx0: 0, wy: 0, lanes: 16 };
        let rows = nm.pallet_fetch_rows(&s, pallet, BrickStep { fx: 0, fy: 0, i0: 0 });
        assert_eq!(rows, 0);
    }

    #[test]
    fn addresses_are_unique_and_dense() {
        let s = spec(6, 24, 1); // ragged depth: 24 channels = 1.5 bricks
        for layout in [NmLayout::PalletMajor, NmLayout::RowMajor] {
            let nm = NeuronMemory::new(layout, 256);
            let mut seen = std::collections::HashSet::new();
            for y in 0..6 {
                for x in 0..6 {
                    for i in 0..24 {
                        assert!(seen.insert(nm.address(&s, x, y, i)), "{layout:?} duplicate");
                    }
                }
            }
            // PalletMajor pads ragged bricks to full 16: addresses reach
            // 6*6*2*16; RowMajor is fully dense.
            let max = seen.iter().max().unwrap() + 1;
            match layout {
                NmLayout::RowMajor => assert_eq!(max, 6 * 6 * 24),
                NmLayout::PalletMajor => assert!(max <= 6 * 6 * 32),
            }
        }
    }

    #[test]
    #[should_panic(expected = "whole bricks")]
    fn rejects_partial_brick_rows() {
        let _ = NeuronMemory::new(NmLayout::PalletMajor, 24);
    }
}
