//! Access and activity counters consumed by the energy model.

use serde::{Deserialize, Serialize};

/// Event counts accumulated while simulating a layer.
///
/// The scheduling convention (matching §VI-A's "computation was scheduled
/// such that all designs see the same reuse of synapses and thus the same
/// SB read energy") is that one *synapse-set read* covers the 256 synapses
/// a tile consumes for one brick step, and every engine performs the same
/// number of such reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounters {
    /// Neuron bricks fetched from NM (padding bricks excluded — they are
    /// injected as zeros by the dispatcher without an NM access).
    pub nm_brick_reads: u64,
    /// NM row activations performed for those fetches.
    pub nm_row_activations: u64,
    /// Output neuron bricks written back to NM through NBout.
    pub nm_brick_writes: u64,
    /// Synapse-set reads (one per tile per brick step per pallet per
    /// filter group).
    pub sb_set_reads: u64,
    /// Effectual terms processed (oneffset × synapse pairs, or
    /// bit × synapse pairs for serial engines; `bits` per multiplication
    /// for bit-parallel engines).
    pub terms: u64,
    /// Lane-cycles spent injecting null terms while waiting for
    /// synchronization (§V-A4's "a neuron lane that has detected the end of
    /// its neuron forces zero terms while waiting").
    pub idle_lane_cycles: u64,
    /// Cycles the compute array stalled waiting for NM (pallet fetch
    /// slower than processing, §V-A4) or for the SB port (per-column
    /// collisions, §V-E).
    pub stall_cycles: u64,
}

impl AccessCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &AccessCounters) {
        self.nm_brick_reads += other.nm_brick_reads;
        self.nm_row_activations += other.nm_row_activations;
        self.nm_brick_writes += other.nm_brick_writes;
        self.sb_set_reads += other.sb_set_reads;
        self.terms += other.terms;
        self.idle_lane_cycles += other.idle_lane_cycles;
        self.stall_cycles += other.stall_cycles;
    }

    /// Scales every counter by an integer factor (used when a sampled
    /// simulation extrapolates to the full layer).
    pub fn scaled(&self, num: u64, den: u64) -> AccessCounters {
        let s = |v: u64| (v as u128 * num as u128 / den as u128) as u64;
        AccessCounters {
            nm_brick_reads: s(self.nm_brick_reads),
            nm_row_activations: s(self.nm_row_activations),
            nm_brick_writes: s(self.nm_brick_writes),
            sb_set_reads: s(self.sb_set_reads),
            terms: s(self.terms),
            idle_lane_cycles: s(self.idle_lane_cycles),
            stall_cycles: s(self.stall_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = AccessCounters { terms: 5, sb_set_reads: 2, ..Default::default() };
        let b = AccessCounters { terms: 7, nm_brick_reads: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.terms, 12);
        assert_eq!(a.sb_set_reads, 2);
        assert_eq!(a.nm_brick_reads, 3);
    }

    #[test]
    fn scaled_applies_ratio() {
        let a = AccessCounters { terms: 10, stall_cycles: 4, ..Default::default() };
        let s = a.scaled(3, 2);
        assert_eq!(s.terms, 15);
        assert_eq!(s.stall_cycles, 6);
    }

    #[test]
    fn scaled_handles_large_counts_without_overflow() {
        let a = AccessCounters { terms: u64::MAX / 2, ..Default::default() };
        let s = a.scaled(2, 1);
        assert_eq!(s.terms, u64::MAX - 1);
    }
}
