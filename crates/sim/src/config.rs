//! Chip configuration (§IV-B).
//!
//! The baseline DaDianNao chip comprises 16 tiles. Each tile processes 16
//! filters concurrently, calculating 16 neuron×synapse products per filter
//! (one brick), for 256 products per tile per cycle and 4K synapses chip
//! wide. Pragmatic keeps all of these parameters and adds window
//! parallelism: each tile combines every synapse brick with 16 neuron
//! bricks, one per window of a pallet.

use serde::{Deserialize, Serialize};

/// Structural parameters shared by every modelled accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of tiles (DaDN: 16).
    pub tiles: usize,
    /// Filters processed concurrently per tile (DaDN: 16).
    pub filters_per_tile: usize,
    /// Elements per brick / lanes per filter (DaDN: 16).
    pub brick: usize,
    /// Windows per pallet — Pragmatic's window parallelism (16).
    pub windows_per_pallet: usize,
    /// Neuron Memory capacity in bytes (DaDN: 4 MB central eDRAM).
    pub nm_bytes: usize,
    /// Neuron Memory row width in bytes (one row activation fetches this
    /// much; 512 B = 16 bricks of 16-bit neurons).
    pub nm_row_bytes: usize,
    /// Synapse Buffer capacity per tile in bytes (DaDN: 2 MB eDRAM).
    pub sb_bytes_per_tile: usize,
    /// Clock frequency in GHz (DaDN: 0.980).
    pub frequency_ghz: f64,
}

impl ChipConfig {
    /// The DaDianNao configuration the paper modifies (§IV-B).
    pub fn dadn() -> Self {
        Self {
            tiles: 16,
            filters_per_tile: 16,
            brick: 16,
            windows_per_pallet: 16,
            nm_bytes: 4 << 20,
            nm_row_bytes: 512,
            sb_bytes_per_tile: 2 << 20,
            frequency_ghz: 0.980,
        }
    }

    /// Filters processed concurrently chip-wide (`tiles × filters_per_tile`
    /// = 256 for DaDN).
    pub fn filters_per_cycle(&self) -> usize {
        self.tiles * self.filters_per_tile
    }

    /// Number of filter groups a layer of `n` filters needs,
    /// `ceil(n / 256)` for the default configuration.
    pub fn filter_groups(&self, n: usize) -> usize {
        n.div_ceil(self.filters_per_cycle())
    }

    /// Neurons per NM row for a representation of `bits` width.
    pub fn nm_row_neurons(&self, bits: u32) -> usize {
        self.nm_row_bytes * 8 / bits as usize
    }

    /// Terms (1-bit × 16-bit products) the bit-parallel baseline is
    /// equivalent to per cycle: `tiles × filters × brick × bits`.
    pub fn baseline_terms_per_cycle(&self, bits: u32) -> u64 {
        (self.tiles * self.filters_per_tile * self.brick) as u64 * bits as u64
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::dadn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dadn_defaults_match_paper() {
        let c = ChipConfig::dadn();
        assert_eq!(c.tiles, 16);
        assert_eq!(c.filters_per_cycle(), 256);
        assert_eq!(c.nm_bytes, 4 * 1024 * 1024);
        assert_eq!(c.sb_bytes_per_tile, 2 * 1024 * 1024);
        // 4K terms-equivalent per cycle per the paper's §V-A3 (x16 bits).
        assert_eq!(c.baseline_terms_per_cycle(16), 4096 * 16);
    }

    #[test]
    fn filter_groups_round_up() {
        let c = ChipConfig::dadn();
        assert_eq!(c.filter_groups(256), 1);
        assert_eq!(c.filter_groups(257), 2);
        assert_eq!(c.filter_groups(96), 1);
        assert_eq!(c.filter_groups(1024), 4);
    }

    #[test]
    fn nm_row_neurons_by_width() {
        let c = ChipConfig::dadn();
        assert_eq!(c.nm_row_neurons(16), 256);
        assert_eq!(c.nm_row_neurons(8), 512);
    }
}
