//! Cluster-level chaos (DESIGN.md §13): a router in front of real shard
//! servers, asserting the sharding tier's invariants —
//!
//!  1. transparency: benching through the router produces the same
//!     response digest as benching a bare single server, and the digest
//!     is identical across 1/2/4-shard topologies;
//!  2. failover: killing a shard mid-run (`shard-kill`) loses no
//!     request — the router re-issues lost work on the fallback shard
//!     and every request still converges to the golden bits;
//!  3. health: probe deadline violations (`probe-stall`) flip shards to
//!     DOWN and probes flip them back UP, without a byte of response
//!     difference before or after;
//!  4. typed exhaustion: a key whose whole replica set is down answers
//!     `shed:no_shard` (retryable), never hangs and never errors;
//!  5. drain: one `{"ctl": "drain"}` at the router winds the whole
//!     cluster down within a bound, dead shards included.
//!
//! Lives in its own integration binary because the fault plan is
//! process-global; a `static` mutex serializes the tests on top.

use std::net::{SocketAddr, TcpListener};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use pra_chaos::{FaultPlan, Site};
use pra_core::Fidelity;
use pra_router::cluster::{control_line, digests_match, run_cluster_bench};
use pra_router::{Cluster, ClusterConfig, ProbeConfig, Router, RouterConfig};
use pra_serve::codec::json_num_field;
use pra_serve::{run_bench, BenchConfig, ControlRequest, ServeConfig, ServeMetrics, Server};

/// Serializes the tests in this binary around the global fault plan.
static CHAOS: Mutex<()> = Mutex::new(());

const SCENARIO_DEADLINE: Duration = Duration::from_secs(60);

fn server_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        queue_depth: 64,
        linger: Duration::from_millis(2),
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        ..ServeConfig::default()
    }
}

fn cluster_cfg(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        replicas: 2,
        serve: server_cfg(),
        probe: ProbeConfig {
            interval: Duration::from_millis(25),
            deadline: Duration::from_millis(250),
            seed: 0x9D,
        },
    }
}

fn bench_cfg(addr: String, retries: u32) -> BenchConfig {
    BenchConfig {
        addr,
        requests: 12,
        window: 4,
        seed: 0x50_AF_CA_FE,
        connect_timeout: Duration::from_secs(10),
        retries,
        backoff_ms: 5,
        v2: false,
    }
}

/// The golden fingerprint: the same 12-request bench against a bare
/// single server, no router anywhere. Everything the router serves must
/// be byte-identical to this.
fn golden() -> ServeMetrics {
    pra_chaos::disarm();
    let server = Server::bind("127.0.0.1:0", server_cfg()).expect("bind golden server");
    let addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run_once());
    let (m, _) = run_bench(&bench_cfg(addr.clone(), 0)).expect("golden bench");
    assert_eq!((m.ok, m.shed, m.errors), (12, 0, 0), "golden run must be clean");
    let reply = control_line(&addr.parse().expect("addr"), ControlRequest::Drain)
        .expect("drain golden server");
    assert!(reply.contains("\"status\": \"stats\""), "drain answers a snapshot: {reply}");
    join_within(join, "golden server");
    m
}

fn join_within(handle: std::thread::JoinHandle<std::io::Result<()>>, what: &str) {
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "{what} failed to stop within bound (hang)");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
        .join()
        .unwrap_or_else(|_| panic!("{what} panicked"))
        .unwrap_or_else(|e| panic!("{what} errored: {e}"));
}

/// Reads one numeric field out of a `router_stats` reply.
fn stat(addr: &SocketAddr, key: &str) -> u64 {
    let line = control_line(addr, ControlRequest::Stats).expect("router stats");
    assert!(line.contains("\"status\": \"router_stats\""), "router stats line: {line}");
    json_num_field(&line, key).unwrap_or_else(|| panic!("stats missing {key}: {line}")) as u64
}

#[test]
fn topologies_serve_bytes_identical_to_a_bare_server() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    let rows = run_cluster_bench(&[1, 2, 4], &bench_cfg(String::new(), 0), &cluster_cfg(0), None)
        .expect("cluster bench across topologies");
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert_eq!(
            (row.metrics.ok, row.metrics.shed, row.metrics.errors),
            (12, 0, 0),
            "{} shard(s): clean run",
            row.shards
        );
        assert_eq!(
            row.metrics.digest, golden.digest,
            "{} shard(s): router must be byte-transparent",
            row.shards
        );
    }
    assert!(digests_match(&rows));
}

#[test]
fn shard_kill_mid_run_converges_to_golden_via_failover() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    let cluster = Cluster::start(&cluster_cfg(2)).expect("boot 2-shard cluster");
    let addr = cluster.addr();
    // Rate 1.0 + one-shot semantics: exactly one shard dies, on the
    // first request line it reads — mid-run by construction, since the
    // bench keeps a window of 4 in flight.
    pra_chaos::arm(FaultPlan::new(0x8B).with_site(Site::ShardKill, 1.0, None));
    let bench = run_bench(&bench_cfg(addr.to_string(), 8));
    pra_chaos::disarm();
    let (m, _) = bench.expect("bench through the kill");

    assert_eq!(m.ok, 12, "every request must converge to ok (retried {})", m.retries);
    assert_eq!((m.shed, m.errors), (0, 0), "no terminal sheds or errors");
    assert_eq!(m.digest, golden.digest, "failed-over responses must carry golden bits");
    assert!(
        stat(&addr, "failovers") >= 1,
        "the router must have re-issued the killed shard's in-flight work"
    );
    // Hard data-path evidence downs the shard during failover; probes
    // can lag by a round, so poll rather than assert instantly.
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while stat(&addr, "down") != 1 {
        assert!(Instant::now() < deadline, "the killed shard was never marked down");
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown().expect("drain winds the cluster down, dead shard included");
}

#[test]
fn probe_stall_flips_health_both_ways_without_byte_changes() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    // A tight heartbeat deadline the injected stall always violates.
    let mut cfg = cluster_cfg(2);
    cfg.probe.deadline = Duration::from_millis(40);
    let cluster = Cluster::start(&cfg).expect("boot 2-shard cluster");
    let addr = cluster.addr();

    // Every probe stalls past its deadline: two consecutive misses per
    // shard must walk both shards UP → DEGRADED → DOWN, with nothing
    // actually wrong on the data path.
    pra_chaos::arm(FaultPlan::new(0x5A).with_site(Site::ProbeStall, 1.0, Some(120)));
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while stat(&addr, "down") < 2 {
        assert!(Instant::now() < deadline, "shards never reached DOWN under probe-stall");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Disarmed, the next successful probe per shard recovers it.
    pra_chaos::disarm();
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while stat(&addr, "up") < 2 {
        assert!(Instant::now() < deadline, "shards never recovered after probe-stall");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Health flapped both ways; the bytes never moved.
    let (m, _) = run_bench(&bench_cfg(addr.to_string(), 0)).expect("bench after recovery");
    assert_eq!((m.ok, m.shed, m.errors), (12, 0, 0));
    assert_eq!(m.digest, golden.digest, "health transitions must not change response bytes");
    cluster.shutdown().expect("clean drain");
}

#[test]
fn exhausted_replica_set_sheds_no_shard_and_still_drains() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    pra_chaos::disarm();

    // Two bind-then-dropped addresses: every shard of every replica set
    // is down before the first request.
    let dead = |_: usize| -> String {
        let l = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        l.local_addr().expect("addr").to_string()
    };
    let cfg = RouterConfig {
        shards: vec![dead(0), dead(1)],
        replicas: 2,
        probe: ProbeConfig {
            interval: Duration::from_millis(25),
            deadline: Duration::from_millis(100),
            seed: 0x11,
        },
        ..RouterConfig::default()
    };
    let router = Router::bind("127.0.0.1:0", cfg).expect("bind router");
    let addr = router.local_addr().expect("addr");
    let join = std::thread::spawn(move || router.run_once());

    // No retries: the typed shed is the final outcome under test. The
    // reason is retryable by contract — probes would bring a recovered
    // shard back — there just is nothing to recover here.
    let (m, responses) = run_bench(&bench_cfg(addr.to_string(), 0)).expect("bench to nowhere");
    assert_eq!((m.ok, m.shed, m.errors), (0, 12, 0), "all requests shed, none hang or error");
    for resp in &responses {
        match resp {
            pra_serve::Response::Shed { reason, .. } => {
                assert_eq!(reason.label(), "no_shard");
                assert!(reason.retryable(), "no_shard must invite a backed-off retry");
            }
            other => panic!("expected shed:no_shard, got {other:?}"),
        }
    }
    assert_eq!(stat(&addr, "no_shard"), 12);
    assert_eq!(stat(&addr, "down"), 2);

    // Drain still answers and stops the router even with every shard
    // unreachable (propagation is best-effort by design).
    let reply = control_line(&addr, ControlRequest::Drain).expect("drain router");
    assert!(reply.contains("\"status\": \"router_stats\""), "{reply}");
    join_within(join, "router over dead shards");
}
