//! # pra-router — sharded serving front end
//!
//! The cluster tier above `pra-serve` (DESIGN.md §13): a consistent-hash
//! router (`pra route`) that spreads simulation load over N independent
//! shard processes while keeping every guarantee the single-shard path
//! makes — exactly one response per request id, scheduling-independent
//! response bytes, typed sheds, graceful drain.
//!
//! * [`ring`] — the consistent-hash replica ring. Requests hash on the
//!   same workload key the batcher coalesces on ([`BatchKey`]: network
//!   geometry × representation × seed × mask-encoding slice), so every
//!   request a shard could batch together lands on the same shard and
//!   its [`ArtifactPool`] stays hot. Each key owns an ordered replica
//!   set (primary + fallbacks) of distinct shards.
//! * [`health`] — per-shard UP/DEGRADED/DOWN health driven by
//!   `{"ctl": "stats"}` heartbeats under a deadline, with hard
//!   data-path evidence short-circuiting straight to DOWN, boot-epoch
//!   restart detection, and seeded-deterministic probe scheduling.
//! * [`router`] — the front end itself: the per-client claim ledger
//!   (the serve supervisor's exactly-once discipline, applied across
//!   processes), failover that re-issues lost work on the key's
//!   fallback shard, `shed:no_shard` when a whole replica set is down,
//!   and drain propagation so one `{"ctl": "drain"}` winds the whole
//!   cluster down.
//! * [`cluster`] — the in-process cluster harness behind
//!   `pra bench-serve --cluster`: N shards + router in one process,
//!   proving response digests identical to the single-shard golden
//!   across 1/2/4-shard topologies, including under `shard-kill` chaos.
//!
//! Fault injection: the chaos sites `shard-kill` (a shard dies
//! mid-stream, severing every connection with work queued) and
//! `probe-stall` (a heartbeat exceeds its deadline without anything
//! actually failing) exercise exactly the failover and health paths
//! above, seeded and replayable like every other `pra-chaos` site.
//!
//! [`BatchKey`]: pra_serve::BatchKey
//! [`ArtifactPool`]: pra_core::ArtifactPool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod health;
pub mod ring;
pub mod router;

pub use cluster::{run_cluster_bench, Cluster, ClusterConfig, ClusterRow};
pub use health::{probe_once, HealthBoard, ProbeConfig, ShardHealth};
pub use ring::{key_hash, workload_key, HashRing, DEFAULT_VNODES};
pub use router::{Router, RouterConfig, RouterStats};
