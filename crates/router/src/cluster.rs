//! The in-process cluster harness: N shard servers plus a router in one
//! process, for `pra bench-serve --cluster` and the cluster chaos tests.
//!
//! This is bench/test scaffolding, not the serving path — it panics on
//! misuse like any harness and is excluded from the `serve-no-panic`
//! lint scope. The property it exists to prove is the acceptance gate:
//! the same bench run against 1, 2 and 4 shards produces byte-identical
//! response digests (responses are forwarded verbatim and the request
//! mix is a pure function of the bench seed), while throughput scales
//! with the shard count.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pra_serve::bench::{merge_bench_json, run_bench, BenchConfig, ServeMetrics};
use pra_serve::{ControlRequest, ServeConfig, Server};
use pra_workloads::cache::{ArtifactKind, ArtifactStore};

use crate::health::ProbeConfig;
use crate::router::{Router, RouterConfig};

/// How long [`Cluster::shutdown`] waits for each thread to stop.
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(60);

/// What a cluster looks like.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard count.
    pub shards: usize,
    /// Replica set size per key.
    pub replicas: usize,
    /// Per-shard service configuration (`shard`/`epoch` are overridden
    /// per shard: shard `s` gets id `s` and epoch `s + 1`).
    pub serve: ServeConfig,
    /// Router probe timing.
    pub probe: ProbeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            replicas: 2,
            serve: ServeConfig::default(),
            probe: ProbeConfig::default(),
        }
    }
}

/// A running cluster: the router address to aim clients at, plus the
/// join handles shutdown collects.
pub struct Cluster {
    addr: SocketAddr,
    shard_addrs: Vec<SocketAddr>,
    router: JoinHandle<std::io::Result<()>>,
    shards: Vec<JoinHandle<std::io::Result<()>>>,
}

impl Cluster {
    /// Boots `cfg.shards` shard servers on ephemeral loopback ports and
    /// a router in front of them, all on background threads in `--once`
    /// mode (one drain winds everything down).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: &ClusterConfig) -> std::io::Result<Cluster> {
        let mut shard_addrs = Vec::with_capacity(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards.max(1) {
            let serve_cfg = ServeConfig {
                shard: s as u64,
                // Nonzero so the router's restart detection (epoch
                // change on probe) is well-defined from the first probe.
                epoch: s as u64 + 1,
                store: shard_store(&cfg.serve.store, s),
                ..cfg.serve.clone()
            };
            let server = Server::bind("127.0.0.1:0", serve_cfg)?;
            shard_addrs.push(server.local_addr()?);
            shards.push(std::thread::spawn(move || server.run_once()));
        }
        let router_cfg = RouterConfig {
            shards: shard_addrs.iter().map(|a| a.to_string()).collect(),
            replicas: cfg.replicas,
            probe: cfg.probe.clone(),
            ..RouterConfig::default()
        };
        let router = Router::bind("127.0.0.1:0", router_cfg)?;
        let addr = router.local_addr()?;
        let router = std::thread::spawn(move || router.run_once());
        Ok(Cluster { addr, shard_addrs, router, shards })
    }

    /// The router's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard addresses, in shard-id order.
    pub fn shard_addrs(&self) -> &[SocketAddr] {
        &self.shard_addrs
    }

    /// Drains the router (which propagates the drain to every shard)
    /// and joins every thread within a deadline.
    ///
    /// # Errors
    ///
    /// Reports the first thread that failed or refused to stop. A shard
    /// that died under `shard-kill` chaos joins cleanly (its accept
    /// loop already exited), so chaos runs shut down like healthy ones.
    pub fn shutdown(self) -> Result<(), String> {
        control_line(&self.addr, ControlRequest::Drain)?;
        join_within(self.router, "router", SHUTDOWN_DEADLINE)?;
        for (s, handle) in self.shards.into_iter().enumerate() {
            join_within(handle, &format!("shard {s}"), SHUTDOWN_DEADLINE)?;
        }
        Ok(())
    }
}

/// Derives shard `s`'s private artifact store from the cluster-wide
/// one: the same tier set, rooted at `<dir>/shard-<s>` and pre-seeded
/// with a file copy of every entry the donor directory already holds
/// ([`ArtifactStore::seed_entries_from`]). Per-shard directories keep
/// one shard's corruption or stale entries from poisoning siblings,
/// while the seeding still makes every boot after the first one warm —
/// a shard whose copy fails just starts cold. A diskless store stays
/// diskless.
fn shard_store(parent: &ArtifactStore, s: usize) -> ArtifactStore {
    let Some(dir) = parent.dir() else {
        return parent.clone();
    };
    let mut store = ArtifactStore::new(dir.join(format!("shard-{s}")));
    for kind in ArtifactKind::ALL {
        if parent.tier_enabled(kind) {
            store = store.tier(kind);
        }
    }
    if let Err(e) = store.seed_entries_from(parent) {
        eprintln!("pra-router: shard {s} cache warm-up failed (starting cold): {e}");
    }
    store
}

/// Sends one control request and returns the raw reply line — how the
/// harness and tests talk to a router or shard out of band.
///
/// # Errors
///
/// Connection and read failures, or an empty reply.
pub fn control_line(addr: &SocketAddr, req: ControlRequest) -> Result<String, String> {
    let timeout = Duration::from_secs(10);
    let stream = TcpStream::connect_timeout(addr, timeout)
        .map_err(|e| format!("control connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("control deadline: {e}"))?;
    let mut out = stream.try_clone().map_err(|e| format!("control clone: {e}"))?;
    out.write_all((req.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("control send {addr}: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("control read {addr}: {e}"))?;
    if reply.trim().is_empty() {
        return Err(format!("control {addr}: connection closed without a reply"));
    }
    Ok(reply.trim_end().to_string())
}

fn join_within(
    handle: JoinHandle<std::io::Result<()>>,
    what: &str,
    deadline: Duration,
) -> Result<(), String> {
    let started = Instant::now();
    while !handle.is_finished() {
        if started.elapsed() > deadline {
            return Err(format!("{what} did not stop within {deadline:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    match handle.join() {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("{what}: {e}")),
        Err(_) => Err(format!("{what} panicked")),
    }
}

/// One topology's bench outcome.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// Shard count of this topology.
    pub shards: usize,
    /// The closed-loop bench metrics measured through the router.
    pub metrics: ServeMetrics,
}

/// Runs the same closed-loop bench against each topology in
/// `topologies` (e.g. `[1, 2, 4]`), booting and draining a fresh
/// cluster per row. With `chaos_spec`, the fault plan is armed for
/// every topology with more than one shard — a lone shard has no
/// fallback, so a `shard-kill` there would be unrecoverable *by
/// design*, not a failover bug — and disarmed again before the drain.
///
/// # Errors
///
/// The first boot, bench or shutdown failure, with the topology named.
pub fn run_cluster_bench(
    topologies: &[usize],
    bench: &BenchConfig,
    cluster: &ClusterConfig,
    chaos_spec: Option<&str>,
) -> Result<Vec<ClusterRow>, String> {
    let mut rows = Vec::with_capacity(topologies.len());
    for &shards in topologies {
        let cfg = ClusterConfig { shards, ..cluster.clone() };
        let cl = Cluster::start(&cfg).map_err(|e| format!("cluster of {shards}: {e}"))?;
        if let Some(spec) = chaos_spec.filter(|_| shards > 1) {
            pra_chaos::arm_spec(spec).map_err(|e| format!("chaos spec: {e}"))?;
        } else {
            pra_chaos::disarm();
        }
        let bench_cfg = BenchConfig { addr: cl.addr().to_string(), ..bench.clone() };
        let result = run_bench(&bench_cfg);
        // Disarm before the drain: winding the cluster down must not
        // trip further injected faults.
        pra_chaos::disarm();
        let shutdown = cl.shutdown();
        let (metrics, _responses) =
            result.map_err(|e| format!("bench against {shards} shard(s): {e}"))?;
        shutdown.map_err(|e| format!("shutdown of {shards} shard(s): {e}"))?;
        rows.push(ClusterRow { shards, metrics });
    }
    Ok(rows)
}

/// Whether every topology produced the same response digest — the
/// cluster acceptance gate.
pub fn digests_match(rows: &[ClusterRow]) -> bool {
    rows.windows(2).all(|w| w[0].metrics.digest == w[1].metrics.digest)
}

/// Renders the `"cluster"` section as one flat JSON line (no newline),
/// ready for [`merge_bench_json`] next to the `"serve"` section.
pub fn cluster_section(rows: &[ClusterRow]) -> String {
    let topologies: Vec<String> = rows
        .iter()
        .map(|r| {
            let m = &r.metrics;
            format!(
                "{{\"shards\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
                 \"retries\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"rps\": {:.2}, \
                 \"responses_sha256\": {}}}",
                r.shards,
                m.requests,
                m.ok,
                m.shed,
                m.errors,
                m.retries,
                m.p50_ms,
                m.p95_ms,
                m.rps,
                pra_bench::report::json_string(&m.digest),
            )
        })
        .collect();
    format!(
        "  \"cluster\": {{\"topologies\": [{}], \"digests_match\": {}}},",
        topologies.join(", "),
        digests_match(rows),
    )
}

/// Writes the cluster section into `bench.json` (merged, preserving the
/// sweep and serve sections) and pins `serve_responses.sha256` to the
/// first topology's digest — by the time this is called the CLI has
/// already asserted all topologies agree. Best-effort, like every
/// report; returns the bench.json path on success.
pub fn write_cluster_report(rows: &[ClusterRow]) -> Option<std::path::PathBuf> {
    let first = rows.first()?;
    let dir = pra_bench::report::report_dir();
    let existing = std::fs::read_to_string(dir.join("bench.json")).ok();
    let merged = merge_bench_json(existing.as_deref(), &cluster_section(rows));
    let _ = pra_bench::report::write_text(
        "serve_responses.sha256",
        "digest",
        &(first.metrics.digest.clone() + "\n"),
    );
    pra_bench::report::write_json("bench", &merged)
}

/// The per-topology summary table `pra bench-serve --cluster` prints.
pub fn cluster_table(rows: &[ClusterRow]) -> pra_bench::Table {
    let mut t = pra_bench::Table::new([
        "shards",
        "ok/shed/err",
        "retried",
        "p50 ms",
        "p95 ms",
        "req/s",
        "digest",
    ]);
    for r in rows {
        let m = &r.metrics;
        let digest_prefix: String = m.digest.chars().take(12).collect();
        t.row([
            &r.shards.to_string(),
            &format!("{}/{}/{}", m.ok, m.shed, m.errors),
            &m.retries.to_string(),
            &format!("{:.1}", m.p50_ms),
            &format!("{:.1}", m.p95_ms),
            &format!("{:.1}", m.rps),
            &format!("{digest_prefix}…"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(digest: &str, rps: f64) -> ServeMetrics {
        ServeMetrics {
            requests: 12,
            ok: 12,
            shed: 0,
            errors: 0,
            retries: 0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            mean_ms: 1.5,
            mean_enqueue_ms: 0.1,
            mean_batch_wait_ms: 0.2,
            mean_sim_ms: 1.0,
            mean_batch: 4.0,
            p50_first_frame_ms: 0.0,
            frames: 0,
            elapsed_ms: 100.0,
            rps,
            window: 4,
            digest: digest.to_string(),
        }
    }

    #[test]
    fn section_reports_identity_and_merges_next_to_serve() {
        let rows = vec![
            ClusterRow { shards: 1, metrics: metrics("aaa", 10.0) },
            ClusterRow { shards: 2, metrics: metrics("aaa", 19.0) },
        ];
        assert!(digests_match(&rows));
        let section = cluster_section(&rows);
        assert!(section.contains("\"digests_match\": true"), "{section}");
        assert!(section.contains("\"shards\": 2"), "{section}");
        let doc = merge_bench_json(None, &section);
        assert_eq!(doc.matches("\"cluster\":").count(), 1);

        let split = vec![
            ClusterRow { shards: 1, metrics: metrics("aaa", 10.0) },
            ClusterRow { shards: 2, metrics: metrics("bbb", 19.0) },
        ];
        assert!(!digests_match(&split));
        assert!(cluster_section(&split).contains("\"digests_match\": false"));
    }

    #[test]
    fn shard_stores_are_isolated_and_pre_seeded() {
        let dir =
            std::env::temp_dir().join(format!("pra-router-shard-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let parent = ArtifactStore::new(&dir).tier(ArtifactKind::Workload);
        let key = pra_workloads::cache::KeyHasher::new("test-shard-seed").finish();
        // `cache_for` is `None` only under a process-wide PRA_NO_CACHE;
        // the derivation below must behave either way.
        if let Some(cache) = parent.cache_for(ArtifactKind::Workload) {
            cache.store("wl", 1, &key, b"seed-me").expect("publish donor entry");
            let s0 = shard_store(&parent, 0);
            assert_eq!(s0.dir().unwrap(), dir.join("shard-0"));
            assert!(s0.tier_enabled(ArtifactKind::Workload));
            assert!(!s0.tier_enabled(ArtifactKind::Encoded), "tier set copies, not widens");
            assert_eq!(
                s0.cache_for(ArtifactKind::Workload).unwrap().load("wl", 1, &key).as_deref(),
                Some(b"seed-me".as_slice()),
                "shard store must inherit the donor's entries"
            );
        }
        assert!(
            shard_store(&parent.clone().no_disk(), 1).dir().is_none(),
            "a diskless cluster store derives diskless shard stores"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_has_one_row_per_topology() {
        let rows = vec![
            ClusterRow { shards: 1, metrics: metrics("aaaabbbbccccdddd", 10.0) },
            ClusterRow { shards: 2, metrics: metrics("aaaabbbbccccdddd", 19.0) },
            ClusterRow { shards: 4, metrics: metrics("aaaabbbbccccdddd", 36.0) },
        ];
        let rendered = cluster_table(&rows).render();
        assert_eq!(rendered.matches("aaaabbbbcccc…").count(), 3, "{rendered}");
    }
}
