//! The router proper: a JSON-lines TCP front end that consistent-hashes
//! each request's workload key onto a shard, owns the single answer per
//! id, and re-issues lost work on the key's fallback shard.
//!
//! Ownership rules (the exactly-once contract, lifted from the serve
//! supervisor's claim ledger): every admitted request line is an entry
//! in its client's ledger recording which shard it is currently
//! *assigned* to. A response from shard S claims the entry — and with
//! it the right to answer the client — only when the entry is still
//! assigned to S; whoever removes the entry owns the single answer.
//! Failover re-assigns the entry before re-sending, so a late response
//! from the old shard finds the assignment changed and is dropped as
//! stale (counted, never forwarded). The client sees exactly one
//! response per id no matter how many shards touched the request.
//!
//! Failure handling funnels through one path: any hard evidence that a
//! shard is gone (upstream connect/write/read failure, or two missed
//! heartbeats) downs it on the shared [`HealthBoard`], and the *first*
//! caller to make that transition sweeps every client's ledger,
//! re-dispatching the entries assigned to the dead shard. A request
//! whose whole replica set is down is answered `shed:no_shard`
//! (retryable — probes bring recovered shards back).
//!
//! Responses are forwarded byte-for-byte: the router never re-renders a
//! shard's response line, so response digests are identical to the
//! single-shard path by construction.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use pra_serve::codec::{raw_id_token, request_id};
use pra_serve::{BatchKey, ControlRequest, Request, Response, ShedReason};

use crate::health::{probe_jitter, probe_once, HealthBoard, ProbeConfig};
use crate::ring::{workload_key, HashRing, DEFAULT_VNODES};

/// How long an upstream connect (data path or drain propagation) may
/// take. Loopback refusals fail immediately; this only bounds the
/// black-hole case.
const UPSTREAM_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend shard addresses, in shard-id order (shard 0 first).
    pub shards: Vec<String>,
    /// Distinct shards per key (primary + fallbacks); clamped to the
    /// shard count by the ring.
    pub replicas: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Health probe timing.
    pub probe: ProbeConfig,
    /// Client connections served concurrently before new ones are
    /// refused with `shed:overloaded` (mirrors the shard-side cap).
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: Vec::new(),
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            probe: ProbeConfig::default(),
            max_connections: 64,
        }
    }
}

/// Router counters, reported on the `router_stats` control line.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Request lines admitted and hashed onto the ring.
    pub routed: AtomicU64,
    /// Responses claimed and forwarded to clients.
    pub answered: AtomicU64,
    /// Re-dispatches onto a fallback shard (failover events).
    pub failovers: AtomicU64,
    /// Requests answered `shed:no_shard` (whole replica set down).
    pub no_shard: AtomicU64,
    /// Upstream responses dropped because their entry was gone or
    /// re-assigned (late answers from a failed-over shard).
    pub stale_drops: AtomicU64,
    /// Shard restarts detected by epoch change on a probe.
    pub restarts_seen: AtomicU64,
    /// Client connections being served right now.
    pub live_connections: AtomicU64,
    /// Client connections refused at the cap.
    pub connections_shed: AtomicU64,
}

impl RouterStats {
    /// Renders the `{"status": "router_stats", ...}` control line.
    pub fn to_json_line(&self, board: &HealthBoard) -> String {
        let (up, degraded, down) = board.counts();
        // relaxed-ok: monotonic stat counters read for reporting;
        // nothing synchronizes through them.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "{{\"status\": \"router_stats\", \"shards\": {}, \"up\": {up}, \
             \"degraded\": {degraded}, \"down\": {down}, \"routed\": {}, \"answered\": {}, \
             \"failovers\": {}, \"no_shard\": {}, \"stale_drops\": {}, \"restarts_seen\": {}, \
             \"connections_shed\": {}}}",
            board.len(),
            ld(&self.routed),
            ld(&self.answered),
            ld(&self.failovers),
            ld(&self.no_shard),
            ld(&self.stale_drops),
            ld(&self.restarts_seen),
            ld(&self.connections_shed),
        )
    }
}

/// State every connection handler, upstream reader and the prober
/// share: the ring, the health board, the stats, and the client
/// registry the shard-down sweep walks.
struct Shared {
    ring: HashRing,
    board: HealthBoard,
    stats: RouterStats,
    shard_addrs: Vec<SocketAddr>,
    clients: Mutex<BTreeMap<u64, Arc<ClientCtx>>>,
}

impl Shared {
    fn lock_clients(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<ClientCtx>>> {
        self.clients.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard-death funnel: records hard evidence on the board and,
    /// iff this call made the UP/DEGRADED → DOWN transition, sweeps
    /// every client's ledger once. `sweeper` additionally re-sweeps its
    /// own ledger when the shard was already down — its entry may have
    /// been assigned after the transition sweep ran.
    fn on_shard_dead(&self, shard: usize, why: &str, sweeper: Option<&Arc<ClientCtx>>) {
        if self.board.mark_down(shard) {
            eprintln!("pra-router: shard {shard} down: {why}");
            self.sweep_all(shard);
        } else if let Some(ctx) = sweeper {
            ctx.sweep_shard(shard);
        }
    }

    /// Re-dispatches every client's entries assigned to `shard`. The
    /// client list is snapshotted so no lock is held across dispatch.
    fn sweep_all(&self, shard: usize) {
        let clients: Vec<Arc<ClientCtx>> = self.lock_clients().values().cloned().collect();
        for ctx in clients {
            ctx.sweep_shard(shard);
        }
    }
}

/// One in-flight request: the raw line (re-sent verbatim on failover),
/// its replica set, and where it currently lives.
struct Entry {
    line: String,
    replicas: Vec<usize>,
    /// The shard whose response may claim this entry.
    assigned: Option<usize>,
    /// How many replicas have been tried (index into `replicas`).
    attempt: usize,
}

/// The shared write half of a client connection.
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

fn write_line(out: &SharedWriter, line: &str) -> std::io::Result<()> {
    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
    g.write_all(line.as_bytes())?;
    g.write_all(b"\n")?;
    g.flush()
}

/// Per-client-connection state: the claim ledger and this client's
/// upstream connections (one lazily-opened connection per shard, so
/// response ids never collide across clients).
struct ClientCtx {
    out: SharedWriter,
    ledger: Mutex<BTreeMap<u64, Entry>>,
    /// Live upstream senders by shard; the writer thread on the other
    /// end owns the socket's write half.
    senders: Mutex<BTreeMap<usize, Sender<String>>>,
    /// Stream clones for the same shards, so client EOF can shut the
    /// sockets down and unblock the upstream reader threads.
    streams: Mutex<BTreeMap<usize, TcpStream>>,
    shared: Arc<Shared>,
}

impl ClientCtx {
    fn new(out: SharedWriter, shared: Arc<Shared>) -> ClientCtx {
        ClientCtx {
            out,
            ledger: Mutex::new(BTreeMap::new()),
            senders: Mutex::new(BTreeMap::new()),
            streams: Mutex::new(BTreeMap::new()),
            shared,
        }
    }

    fn lock_ledger(&self) -> MutexGuard<'_, BTreeMap<u64, Entry>> {
        self.ledger.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_senders(&self) -> MutexGuard<'_, BTreeMap<usize, Sender<String>>> {
        self.senders.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_streams(&self) -> MutexGuard<'_, BTreeMap<usize, TcpStream>> {
        self.streams.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one parsed request: ledger entry, route, first dispatch.
    fn admit(self: &Arc<Self>, req: &Request, line: &str) {
        let id = req.id;
        let replicas = self.shared.ring.route(workload_key(&BatchKey::of(req)));
        {
            let mut g = self.lock_ledger();
            if g.contains_key(&id) {
                drop(g);
                let resp = Response::Error {
                    id,
                    message: format!("duplicate in-flight id {id} on this connection"),
                };
                let _ = write_line(&self.out, &resp.to_json_line());
                return;
            }
            g.insert(id, Entry { line: line.to_string(), replicas, assigned: None, attempt: 0 });
        }
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        self.shared.stats.routed.fetch_add(1, Ordering::Relaxed);
        self.dispatch(id, None);
    }

    /// (Re-)dispatches entry `id` to the next live replica. `expect`
    /// guards sweep-driven re-dispatch: when set, the entry must still
    /// be assigned to that shard, or another path already moved it and
    /// this call is a no-op (prevents double-advancing the attempt
    /// cursor when two sweeps race).
    fn dispatch(self: &Arc<Self>, id: u64, expect: Option<usize>) {
        let picked = {
            let mut g = self.lock_ledger();
            let Some(entry) = g.get_mut(&id) else { return };
            if let Some(exp) = expect {
                if entry.assigned != Some(exp) {
                    return;
                }
            }
            let mut choice = None;
            while entry.attempt < entry.replicas.len() {
                let candidate = entry.replicas.get(entry.attempt).copied();
                entry.attempt += 1;
                if let Some(shard) = candidate {
                    if !self.shared.board.is_down(shard) {
                        choice = Some(shard);
                        break;
                    }
                }
            }
            match choice {
                Some(shard) => {
                    entry.assigned = Some(shard);
                    Some((shard, entry.line.clone()))
                }
                None => {
                    g.remove(&id);
                    None
                }
            }
        };
        match picked {
            Some((shard, line)) => {
                if let Err(why) = self.send_upstream(shard, &line) {
                    // Hard evidence; the resulting sweep re-dispatches
                    // this entry (still assigned to `shard`). Recursion
                    // is bounded: the attempt cursor only advances.
                    self.drop_upstream(shard);
                    self.shared.on_shard_dead(shard, &why, Some(self));
                }
            }
            None => {
                // relaxed-ok: monotonic stat counter.
                self.shared.stats.no_shard.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Shed { id, reason: ShedReason::NoShard };
                let _ = write_line(&self.out, &resp.to_json_line());
            }
        }
    }

    /// Re-dispatches this client's entries assigned to a dead `shard`.
    fn sweep_shard(self: &Arc<Self>, shard: usize) {
        let ids: Vec<u64> = self
            .lock_ledger()
            .iter()
            .filter(|(_, e)| e.assigned == Some(shard))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            // relaxed-ok: monotonic stat counter.
            self.shared.stats.failovers.fetch_add(1, Ordering::Relaxed);
            self.dispatch(id, Some(shard));
        }
    }

    /// Queues `line` on the shard's upstream connection, opening it on
    /// first use.
    fn send_upstream(self: &Arc<Self>, shard: usize, line: &str) -> Result<(), String> {
        let tx = self.ensure_upstream(shard)?;
        tx.send(line.to_string()).map_err(|_| format!("upstream writer to shard {shard} gone"))
    }

    fn ensure_upstream(self: &Arc<Self>, shard: usize) -> Result<Sender<String>, String> {
        if let Some(tx) = self.lock_senders().get(&shard) {
            return Ok(tx.clone());
        }
        let addr = self
            .shared
            .shard_addrs
            .get(shard)
            .copied()
            .ok_or_else(|| format!("shard {shard} is not configured"))?;
        // Connect outside the lock: a slow or dead shard must not stall
        // dispatch to the others.
        let stream = TcpStream::connect_timeout(&addr, UPSTREAM_CONNECT_TIMEOUT)
            .map_err(|e| format!("connect shard {shard} at {addr}: {e}"))?;
        let write_half = stream.try_clone().map_err(|e| format!("clone shard {shard}: {e}"))?;
        let (tx, rx) = channel::<String>();
        {
            let mut senders = self.lock_senders();
            if let Some(existing) = senders.get(&shard) {
                // Lost a connect race; use the winner, drop our socket.
                return Ok(existing.clone());
            }
            senders.insert(shard, tx.clone());
        }
        if let Ok(clone) = stream.try_clone() {
            self.lock_streams().insert(shard, clone);
        }
        let ctx = Arc::clone(self);
        std::thread::spawn(move || {
            let mut out = BufWriter::new(write_half);
            for line in rx {
                let sent = out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush());
                if let Err(e) = sent {
                    ctx.drop_upstream(shard);
                    ctx.shared.on_shard_dead(shard, &format!("write: {e}"), Some(&ctx));
                    return;
                }
            }
        });
        let ctx = Arc::clone(self);
        std::thread::spawn(move || {
            for line in BufReader::new(stream).lines() {
                match line {
                    Ok(line) if !line.trim().is_empty() => ctx.handle_upstream_line(shard, &line),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            // EOF or read error: if the client is simply gone the
            // ledger is empty and the sweep is a no-op; otherwise this
            // is the shard dying mid-stream with responses still owed.
            ctx.drop_upstream(shard);
            if !ctx.lock_ledger().is_empty() {
                ctx.shared.on_shard_dead(shard, "connection closed", Some(&ctx));
            }
        });
        Ok(tx)
    }

    /// Forgets the upstream connection to `shard` so the next dispatch
    /// (e.g. after a probe brings the shard back UP) reconnects.
    fn drop_upstream(&self, shard: usize) {
        self.lock_senders().remove(&shard);
        if let Some(stream) = self.lock_streams().remove(&shard) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Client hung up: shut every upstream socket so the reader and
    /// writer threads holding this context exit promptly.
    fn close_upstreams(&self) {
        self.lock_senders().clear();
        let streams = std::mem::take(&mut *self.lock_streams());
        for stream in streams.into_values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// One response line arrived from `shard`.
    fn handle_upstream_line(self: &Arc<Self>, shard: usize, line: &str) {
        let id = match Response::parse(line) {
            // `shed:shutting_down` means the shard is draining and will
            // never serve this request — that is the router's signal to
            // fail over, not the client's to give up.
            Ok(Response::Shed { id, reason: ShedReason::ShuttingDown }) => {
                let owned = self.lock_ledger().get(&id).is_some_and(|e| e.assigned == Some(shard));
                if owned {
                    // relaxed-ok: monotonic stat counter.
                    self.shared.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    self.dispatch(id, Some(shard));
                } else {
                    // relaxed-ok: monotonic stat counter.
                    self.shared.stats.stale_drops.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Ok(Response::MalformedId { .. }) | Err(_) => {
                // No trustworthy id to correlate on: nothing to claim.
                // relaxed-ok: monotonic stat counter.
                self.shared.stats.stale_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // v2 progress frames forward verbatim *without* claiming:
            // the ledger entry stays live until the terminal `done`
            // frame (which takes the claim path below), so failover
            // still covers a stream the shard dies in the middle of.
            Ok(Response::LayerResult { id, .. }) => {
                let owned = self.lock_ledger().get(&id).is_some_and(|e| e.assigned == Some(shard));
                if owned {
                    let _ = write_line(&self.out, line);
                } else {
                    // relaxed-ok: monotonic stat counter.
                    self.shared.stats.stale_drops.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Ok(resp) => resp.id(),
        };
        // The claim: remove the entry iff it is still assigned to the
        // responding shard. Whoever removes it owns the single answer.
        let claimed = {
            let mut g = self.lock_ledger();
            if g.get(&id).is_some_and(|e| e.assigned == Some(shard)) {
                g.remove(&id);
                true
            } else {
                false
            }
        };
        if claimed {
            // relaxed-ok: monotonic stat counter.
            self.shared.stats.answered.fetch_add(1, Ordering::Relaxed);
            // Forwarded verbatim: the router never re-renders response
            // bytes, so digests match the single-shard path exactly.
            let _ = write_line(&self.out, line);
        } else {
            // relaxed-ok: monotonic stat counter.
            self.shared.stats.stale_drops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Accept-loop control, mirroring the shard server's.
struct RouterCtl {
    draining: AtomicBool,
    once: bool,
    addr: SocketAddr,
}

/// A bound, not-yet-serving router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: RouterConfig,
}

impl Router {
    /// Binds the client-facing listener and resolves every shard
    /// address. Health starts optimistic (all shards UP); the prober
    /// corrects it within a couple of rounds.
    ///
    /// # Errors
    ///
    /// Rejects an empty shard list and propagates bind/resolve
    /// failures.
    pub fn bind(listen: &str, cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one --shard address",
            ));
        }
        let mut shard_addrs = Vec::with_capacity(cfg.shards.len());
        for spec in &cfg.shards {
            let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("shard address '{spec}' resolves to nothing"),
                )
            })?;
            shard_addrs.push(addr);
        }
        let listener = TcpListener::bind(listen)?;
        let shared = Arc::new(Shared {
            ring: HashRing::new(shard_addrs.len(), cfg.replicas, cfg.vnodes),
            board: HealthBoard::new(shard_addrs.len()),
            stats: RouterStats::default(),
            shard_addrs,
            clients: Mutex::new(BTreeMap::new()),
        });
        Ok(Router { listener, shared, cfg })
    }

    /// The bound client-facing address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever; `{"ctl": "drain"}` is refused.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure.
    pub fn run(self) -> std::io::Result<()> {
        self.serve(false)
    }

    /// Serves until a `{"ctl": "drain"}` arrives; the drain is
    /// propagated to every shard (best effort) before the router stops
    /// accepting — one control request winds the whole cluster down.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure.
    pub fn run_once(self) -> std::io::Result<()> {
        self.serve(true)
    }

    fn serve(self, once: bool) -> std::io::Result<()> {
        let ctl = Arc::new(RouterCtl {
            draining: AtomicBool::new(false),
            once,
            addr: self.local_addr()?,
        });
        let prober = spawn_prober(Arc::clone(&self.shared), Arc::clone(&ctl), self.cfg.probe);
        let max_connections = self.cfg.max_connections.max(1) as u64;
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        let mut conn_serial: u64 = 0;
        for stream in self.listener.incoming() {
            if ctl.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let mut live_handles = Vec::with_capacity(handles.len());
            for h in handles {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live_handles.push(h);
                }
            }
            handles = live_handles;

            // relaxed-ok: admission gauge; only this accept thread
            // enforces the cap, handlers only decrement.
            let live = self.shared.stats.live_connections.load(Ordering::Relaxed);
            if live >= max_connections {
                // relaxed-ok: monotonic stat counter.
                self.shared.stats.connections_shed.fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let line = Response::Shed { id: 0, reason: ShedReason::Overloaded }.to_json_line();
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                continue;
            }
            // relaxed-ok: admission gauge (see the load above).
            self.shared.stats.live_connections.fetch_add(1, Ordering::Relaxed);
            conn_serial += 1;
            let serial = conn_serial;
            let shared = Arc::clone(&self.shared);
            let ctl = Arc::clone(&ctl);
            handles.push(std::thread::spawn(move || {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "<unknown>".to_string());
                if let Err(e) = handle_client(stream, serial, &shared, &ctl) {
                    eprintln!("pra-router: connection {peer}: {e}");
                }
                // relaxed-ok: admission gauge (see the load above).
                shared.stats.live_connections.fetch_sub(1, Ordering::Relaxed);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        ctl.draining.store(true, Ordering::SeqCst);
        let _ = prober.join();
        Ok(())
    }
}

/// The prober thread: one probe round per interval (plus seeded
/// jitter), walking every shard. A fresh DOWN transition sweeps the
/// ledgers exactly like a data-path failure would.
fn spawn_prober(shared: Arc<Shared>, ctl: Arc<RouterCtl>, probe: ProbeConfig) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut round: u64 = 0;
        while !ctl.draining.load(Ordering::SeqCst) {
            std::thread::sleep(probe.interval + probe_jitter(probe.seed, round, probe.interval));
            round += 1;
            for (shard, addr) in shared.shard_addrs.iter().enumerate() {
                if ctl.draining.load(Ordering::SeqCst) {
                    return;
                }
                match probe_once(addr, probe.deadline) {
                    Ok(snap) => {
                        if shared.board.mark_probe_ok(shard, snap.epoch) {
                            // relaxed-ok: monotonic stat counter.
                            shared.stats.restarts_seen.fetch_add(1, Ordering::Relaxed);
                            eprintln!("pra-router: shard {shard} restarted (epoch {})", snap.epoch);
                        }
                    }
                    Err(why) => {
                        if shared.board.mark_probe_failed(shard) {
                            eprintln!("pra-router: shard {shard} down (probes): {why}");
                            shared.sweep_all(shard);
                        }
                    }
                }
            }
        }
    })
}

/// Propagates a drain to every shard, best effort: a shard that is
/// already dead is skipped with a log line (it has nothing to drain).
fn propagate_drain(shared: &Shared) {
    for (shard, addr) in shared.shard_addrs.iter().enumerate() {
        if let Err(why) = drain_one(addr) {
            eprintln!("pra-router: drain of shard {shard} failed: {why}");
        }
    }
}

fn drain_one(addr: &SocketAddr) -> Result<(), String> {
    let stream = TcpStream::connect_timeout(addr, UPSTREAM_CONNECT_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(UPSTREAM_CONNECT_TIMEOUT))
        .map_err(|e| format!("deadline: {e}"))?;
    let mut out = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    out.write_all((ControlRequest::Drain.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).map_err(|e| format!("read: {e}"))?;
    Ok(())
}

/// Serves one client connection.
fn handle_client(
    stream: TcpStream,
    serial: u64,
    shared: &Arc<Shared>,
    ctl: &Arc<RouterCtl>,
) -> std::io::Result<()> {
    let out: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let ctx = Arc::new(ClientCtx::new(Arc::clone(&out), Arc::clone(shared)));
    shared.lock_clients().insert(serial, Arc::clone(&ctx));

    let result = client_read_loop(stream, &ctx, shared, ctl);

    shared.lock_clients().remove(&serial);
    // Entries left in the ledger belong to a client that hung up; the
    // upstream shutdown below also stops their responses from arriving.
    ctx.lock_ledger().clear();
    ctx.close_upstreams();
    result
}

fn client_read_loop(
    stream: TcpStream,
    ctx: &Arc<ClientCtx>,
    shared: &Arc<Shared>,
    ctl: &Arc<RouterCtl>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(ctl_req) = ControlRequest::parse(&line) {
            let reply = match ctl_req {
                ControlRequest::Stats => shared.stats.to_json_line(&shared.board),
                ControlRequest::Drain if ctl.once => {
                    // One drain winds the whole cluster down: shards
                    // first (they answer their queues and exit), then
                    // this router's accept loop.
                    propagate_drain(shared);
                    let reply = shared.stats.to_json_line(&shared.board);
                    ctl.draining.store(true, Ordering::SeqCst);
                    // Wake the blocking accept so it observes the flag.
                    let _ = TcpStream::connect(ctl.addr);
                    reply
                }
                ControlRequest::Drain => Response::Error {
                    id: 0,
                    message: "drain refused: router is not running in --once mode".to_string(),
                }
                .to_json_line(),
            };
            write_line(&ctx.out, &reply)?;
            continue;
        }
        match Request::parse(&line) {
            Ok(req) => ctx.admit(&req, &line),
            // Mirror the shard server's rejection shapes so a client
            // cannot tell a router from a bare shard on the error path.
            Err(e) => {
                let resp = match request_id(&line) {
                    Ok(id) => Response::Error { id, message: e.to_string() },
                    Err(_) => Response::MalformedId {
                        raw_id: raw_id_token(&line).unwrap_or_else(|| "<missing>".to_string()),
                        message: e.to_string(),
                    },
                };
                write_line(&ctx.out, &resp.to_json_line())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_an_empty_shard_list() {
        let err = match Router::bind("127.0.0.1:0", RouterConfig::default()) {
            Ok(_) => panic!("an empty shard list must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bind_resolves_shards_and_reports_its_address() {
        let cfg = RouterConfig {
            shards: vec!["127.0.0.1:19331".to_string(), "127.0.0.1:19332".to_string()],
            ..RouterConfig::default()
        };
        let router = Router::bind("127.0.0.1:0", cfg).expect("bind");
        assert_ne!(router.local_addr().expect("addr").port(), 0);
        assert_eq!(router.shared.ring.shards(), 2);
        assert_eq!(router.shared.board.len(), 2);
    }

    #[test]
    fn stats_line_carries_health_counts() {
        let stats = RouterStats::default();
        stats.routed.store(5, Ordering::Relaxed);
        stats.no_shard.store(2, Ordering::Relaxed);
        let board = HealthBoard::new(3);
        board.mark_down(2);
        let line = stats.to_json_line(&board);
        assert!(line.contains("\"status\": \"router_stats\""), "{line}");
        assert!(line.contains("\"shards\": 3"), "{line}");
        assert!(line.contains("\"up\": 2"), "{line}");
        assert!(line.contains("\"down\": 1"), "{line}");
        assert!(line.contains("\"routed\": 5"), "{line}");
        assert!(line.contains("\"no_shard\": 2"), "{line}");
    }
}
