//! Per-shard health: the UP/DEGRADED/DOWN state machine the prober and
//! the failover path both drive.
//!
//! The machine is deliberately small: a probe success puts a shard UP;
//! one probe failure demotes UP → DEGRADED (still routable — a single
//! missed heartbeat is usually a GC-shaped blip, and yanking traffic on
//! it would turn every blip into a failover storm); a second
//! consecutive failure demotes DEGRADED → DOWN (not routable). A hard
//! connection failure observed by the data path skips the intermediate
//! step via [`HealthBoard::mark_down`] — a dead socket is evidence, not
//! suspicion. Every UP transition also compares the shard's reported
//! boot epoch: a changed epoch under the same shard id means the shard
//! restarted (cold artifact pool, in-flight work lost) even though no
//! probe ever failed.
//!
//! Probe *scheduling* is seeded-deterministic: the jitter applied to
//! the n-th probe round is a pure function of `(seed, round)` (same
//! construction as `pra-chaos` draws), so two runs of a chaos scenario
//! probe at the same offsets and the soak replays.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use pra_serve::{ControlRequest, StatsSnapshot};

/// One shard's routability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Answering probes; routable.
    Up,
    /// Missed one heartbeat; still routable (primary for its keys).
    Degraded,
    /// Missed two consecutive heartbeats or hard-failed a connection;
    /// not routable until a probe succeeds again.
    Down,
}

const UP: u8 = 0;
const DEGRADED: u8 = 1;
const DOWN: u8 = 2;

/// The shared health table: one state byte and one last-seen epoch per
/// shard. Writers are the prober thread and any data-path thread that
/// observes a hard failure; readers are every dispatch decision.
#[derive(Debug)]
pub struct HealthBoard {
    states: Vec<AtomicU8>,
    epochs: Vec<AtomicU64>,
}

impl HealthBoard {
    /// A board for `shards` shards, all initially UP (optimistic start:
    /// the first dispatch races the first probe round, and refusing all
    /// traffic until a probe lands would shed the entire warmup).
    pub fn new(shards: usize) -> HealthBoard {
        HealthBoard {
            states: (0..shards).map(|_| AtomicU8::new(UP)).collect(),
            epochs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Shard count the board tracks.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the board tracks no shards.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// `shard`'s current state (DOWN for out-of-range ids, which can
    /// never be routed to anyway).
    pub fn state(&self, shard: usize) -> ShardHealth {
        // relaxed-ok: health is advisory routing input; a stale read
        // delays one failover decision by one probe period at worst.
        match self.states.get(shard).map(|s| s.load(Ordering::Relaxed)) {
            Some(UP) => ShardHealth::Up,
            Some(DEGRADED) => ShardHealth::Degraded,
            _ => ShardHealth::Down,
        }
    }

    /// Whether dispatch must skip `shard`.
    pub fn is_down(&self, shard: usize) -> bool {
        self.state(shard) == ShardHealth::Down
    }

    /// Records a successful probe of `shard` reporting `epoch`.
    /// Returns `true` when the shard visibly *restarted* (same id, new
    /// epoch) — callers may want to log it; routing needs no action
    /// (the shard is UP either way, just cold).
    pub fn mark_probe_ok(&self, shard: usize, epoch: u64) -> bool {
        if let Some(s) = self.states.get(shard) {
            // relaxed-ok: see `state`.
            s.store(UP, Ordering::Relaxed);
        }
        match self.epochs.get(shard) {
            Some(e) => {
                // relaxed-ok: the epoch cell is an advisory last-seen
                // value; the swap just makes read-and-update one step.
                let prev = e.swap(epoch, Ordering::Relaxed);
                prev != 0 && prev != epoch
            }
            None => false,
        }
    }

    /// Records a failed probe of `shard`: UP → DEGRADED → DOWN.
    /// Returns `true` when this failure *transitioned* the shard to
    /// DOWN (the caller re-dispatches that shard's in-flight work).
    pub fn mark_probe_failed(&self, shard: usize) -> bool {
        let Some(s) = self.states.get(shard) else { return false };
        // relaxed-ok: the CAS chain only moves one state machine whose
        // exact interleaving with routing reads is immaterial (a racing
        // dispatch to a just-downed shard is caught by the data path).
        if s.compare_exchange(UP, DEGRADED, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return false;
        }
        // relaxed-ok: see above.
        s.compare_exchange(DEGRADED, DOWN, Ordering::Relaxed, Ordering::Relaxed).is_ok()
    }

    /// Hard-downs `shard` (a data-path connection died — stronger
    /// evidence than a missed heartbeat, no DEGRADED stopover).
    /// Returns `true` when this call made the transition (exactly one
    /// caller wins, so the re-dispatch sweep runs once per outage).
    pub fn mark_down(&self, shard: usize) -> bool {
        let Some(s) = self.states.get(shard) else { return false };
        // relaxed-ok: see `mark_probe_failed`.
        s.swap(DOWN, Ordering::Relaxed) != DOWN
    }

    /// (up, degraded, down) counts for the router stats line.
    pub fn counts(&self) -> (u64, u64, u64) {
        let (mut up, mut degraded, mut down) = (0, 0, 0);
        for i in 0..self.states.len() {
            match self.state(i) {
                ShardHealth::Up => up += 1,
                ShardHealth::Degraded => degraded += 1,
                ShardHealth::Down => down += 1,
            }
        }
        (up, degraded, down)
    }
}

/// Probe timing knobs.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Base interval between probe rounds.
    pub interval: Duration,
    /// Heartbeat deadline: connect + stats round trip must finish
    /// inside it or the probe counts as failed — including time lost
    /// to the chaos `probe-stall` site, which is the point of that
    /// site.
    pub deadline: Duration,
    /// Seed for the deterministic probe jitter.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: Duration::from_millis(100),
            deadline: Duration::from_millis(500),
            seed: 0,
        }
    }
}

/// Deterministic jitter for probe round `round`: a pure function of
/// `(seed, round)` in `[0, interval/4]`, so probe schedules replay
/// across runs of a seeded scenario (no wall-clock entropy).
pub fn probe_jitter(seed: u64, round: u64, interval: Duration) -> Duration {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let span = (interval.as_millis() / 4) as u64;
    Duration::from_millis(if span == 0 { 0 } else { z % (span + 1) })
}

/// One heartbeat: connect, send `{"ctl": "stats"}`, read the snapshot —
/// all inside `deadline` (wall-clock overall, not just per syscall).
/// The chaos `probe-stall` site stalls at the top, so a stall longer
/// than the deadline fails the probe even though the shard itself is
/// healthy — the seeded way to exercise DEGRADED/DOWN without killing
/// anything.
///
/// # Errors
///
/// A message naming the failing step; every error counts as one missed
/// heartbeat.
pub fn probe_once(addr: &SocketAddr, deadline: Duration) -> Result<StatsSnapshot, String> {
    let started = Instant::now();
    pra_chaos::stall(pra_chaos::Site::ProbeStall);
    let stream = TcpStream::connect_timeout(addr, deadline)
        .map_err(|e| format!("probe connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(deadline)).map_err(|e| format!("probe deadline: {e}"))?;
    stream.set_write_timeout(Some(deadline)).map_err(|e| format!("probe deadline: {e}"))?;
    let mut out = stream.try_clone().map_err(|e| format!("probe clone: {e}"))?;
    out.write_all((ControlRequest::Stats.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("probe send {addr}: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).map_err(|e| format!("probe read {addr}: {e}"))?;
    if reply.is_empty() {
        return Err(format!("probe {addr}: connection closed before the snapshot"));
    }
    let snap = StatsSnapshot::parse(&reply).map_err(|e| format!("probe {addr}: {e}"))?;
    if started.elapsed() > deadline {
        return Err(format!("probe {addr}: heartbeat exceeded {deadline:?}"));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_degrades_then_downs_and_recovers() {
        let b = HealthBoard::new(2);
        assert_eq!(b.state(0), ShardHealth::Up);
        assert!(!b.mark_probe_failed(0), "first miss only degrades");
        assert_eq!(b.state(0), ShardHealth::Degraded);
        assert!(!b.is_down(0), "degraded is still routable");
        assert!(b.mark_probe_failed(0), "second consecutive miss downs");
        assert_eq!(b.state(0), ShardHealth::Down);
        assert!(!b.mark_probe_failed(0), "already down: no new transition");
        assert!(!b.mark_probe_ok(0, 7), "recovery, first epoch seen");
        assert_eq!(b.state(0), ShardHealth::Up);
        assert_eq!(b.state(1), ShardHealth::Up, "other shards untouched");
    }

    #[test]
    fn hard_down_skips_degraded_and_wins_once() {
        let b = HealthBoard::new(1);
        assert!(b.mark_down(0), "first caller makes the transition");
        assert!(!b.mark_down(0), "second caller sees it already down");
        assert_eq!(b.counts(), (0, 0, 1));
        assert!(b.is_down(9), "out-of-range shards are never routable");
        assert!(!b.mark_down(9));
    }

    #[test]
    fn epoch_change_reports_a_restart() {
        let b = HealthBoard::new(1);
        assert!(!b.mark_probe_ok(0, 100), "first sighting is not a restart");
        assert!(!b.mark_probe_ok(0, 100), "stable epoch is not a restart");
        assert!(b.mark_probe_ok(0, 101), "epoch bump is a restart");
        assert_eq!(b.state(0), ShardHealth::Up, "a restarted shard is up, just cold");
    }

    #[test]
    fn probe_jitter_is_deterministic_and_bounded() {
        let interval = Duration::from_millis(100);
        for round in 0..64 {
            let j = probe_jitter(7, round, interval);
            assert_eq!(j, probe_jitter(7, round, interval), "pure function of (seed, round)");
            assert!(j <= interval / 4, "jitter bounded by a quarter interval");
        }
        let distinct: std::collections::BTreeSet<_> =
            (0..64).map(|r| probe_jitter(7, r, interval)).collect();
        assert!(distinct.len() > 4, "jitter actually varies across rounds");
        assert_eq!(probe_jitter(7, 3, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn probe_of_nothing_fails_cleanly() {
        // Bind-then-drop reserves an address nobody is listening on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let err = probe_once(&addr, Duration::from_millis(250)).unwrap_err();
        assert!(err.contains("probe"), "error names the probe step: {err}");
    }
}
