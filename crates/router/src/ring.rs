//! The consistent-hash replica ring: workload keys onto shards.
//!
//! Each shard owns `vnodes` points on a 64-bit ring (hashes of
//! `shard/vnode`); a request key hashes to a point and walks clockwise
//! collecting the first `replicas` *distinct* shards — the primary and
//! its fallbacks. Consistent hashing is the right shape here for the
//! same reason the batcher coalesces on [`BatchKey`]: a shard that
//! keeps seeing the same workload keys keeps its [`ArtifactPool`] hot,
//! so routing stability is throughput (the paper's per-tile composition
//! argument, lifted to processes). Adding or removing one shard moves
//! only the keys whose arcs it owned, not the whole keyspace.
//!
//! [`BatchKey`]: pra_serve::BatchKey
//! [`ArtifactPool`]: pra_core::ArtifactPool

use pra_serve::BatchKey;
use pra_workloads::cache::sha256;

/// Virtual nodes per shard: enough that a 2–8 shard ring balances
/// within a few percent, cheap enough that ring construction is
/// negligible.
pub const DEFAULT_VNODES: usize = 64;

/// The ring: sorted (point, shard) pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
    replicas: usize,
}

/// First eight bytes of the SHA-256 of `canonical`, as the ring's
/// 64-bit point space. A cryptographic hash is overkill for balance but
/// the workspace already carries it, and it makes key placement
/// platform- and process-independent (the cluster bench relies on the
/// same request hitting the same shard across runs).
pub fn key_hash(canonical: &str) -> u64 {
    let digest = sha256(canonical.as_bytes());
    let mut bytes = [0u8; 8];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = digest.get(i).copied().unwrap_or(0);
    }
    u64::from_le_bytes(bytes)
}

/// The canonical routing string for a request's workload key — exactly
/// the coalescing key the batcher uses ([`BatchKey`]: network geometry
/// × representation × seed × mask-encoding slice), so every request a
/// shard could batch together routes to the same shard.
pub fn workload_key(key: &BatchKey) -> u64 {
    key_hash(&format!("{key:?}"))
}

impl HashRing {
    /// A ring over `shards` shards with `replicas` distinct shards per
    /// key (clamped to the shard count) and `vnodes` points per shard.
    pub fn new(shards: usize, replicas: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((key_hash(&format!("shard-{shard}/vnode-{vnode}")), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards, replicas: replicas.clamp(1, shards) }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Replica set size per key.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replica set for `key`: the first `replicas` distinct shards
    /// clockwise from the key's point, primary first.
    pub fn route(&self, key: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.replicas);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        for i in 0..self.points.len() {
            let at = (start + i) % self.points.len();
            if let Some(&(_, shard)) = self.points.get(at) {
                if !out.contains(&shard) {
                    out.push(shard);
                    if out.len() == self.replicas {
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_serve::Request;

    fn ring(shards: usize, replicas: usize) -> HashRing {
        HashRing::new(shards, replicas, DEFAULT_VNODES)
    }

    #[test]
    fn route_returns_distinct_shards_primary_first() {
        let r = ring(4, 2);
        for key in (0..512u64).map(|i| key_hash(&format!("k{i}"))) {
            let set = r.route(key);
            assert_eq!(set.len(), 2);
            assert_ne!(set[0], set[1], "primary and fallback must differ");
            assert!(set.iter().all(|&s| s < 4));
        }
    }

    #[test]
    fn routing_is_deterministic_and_replicas_clamp() {
        let a = ring(3, 2);
        let b = ring(3, 2);
        let key = key_hash("stable");
        assert_eq!(a.route(key), b.route(key), "same ring, same placement");
        assert_eq!(ring(1, 5).route(key).len(), 1, "replicas clamp to shard count");
        assert_eq!(ring(2, 0).replicas(), 1, "at least one replica");
    }

    #[test]
    fn load_spreads_across_shards() {
        let r = ring(4, 1);
        let mut counts = [0usize; 4];
        for i in 0..4096u64 {
            let set = r.route(key_hash(&format!("load{i}")));
            if let Some(c) = set.first().and_then(|&s| counts.get_mut(s)) {
                *c += 1;
            }
        }
        for (shard, &c) in counts.iter().enumerate() {
            // 4096/4 = 1024 expected; vnode balance keeps every shard
            // within a factor of two of fair share.
            assert!((512..=2048).contains(&c), "shard {shard} got {c}/4096 keys");
        }
    }

    #[test]
    fn workload_key_tracks_the_batch_key() {
        let req = |engine: &str, seed: u64| Request {
            id: 0,
            network: pra_workloads::Network::AlexNet,
            repr: pra_workloads::Representation::Fixed16,
            engine: engine.to_string(),
            seed,
            v: 1,
        };
        let k = |engine: &str, seed: u64| workload_key(&BatchKey::of(&req(engine, seed)));
        // The value-blind baselines share the default encoding slice:
        // they coalesce in one batch, so they must route together.
        assert_eq!(k("DaDN", 1), k("Stripes", 1));
        assert_ne!(k("DaDN", 1), k("DaDN", 2), "seed splits the key");
    }
}
