//! The supplemental-worker ceiling (DESIGN.md §12): when every worker
//! wedges, the supervisor may spawn bounded supplemental workers — at
//! most `base_workers * 2` total slots, ever — and everything the
//! wedged workers owe still drains as typed `shed:deadline` answers,
//! exactly once per request.
//!
//! The scenario: one base worker, batch size one, and a seeded
//! `slow-sim` stall far past the wedge timeout. The first batch wedges
//! the base worker; the supervisor spawns the one supplemental slot the
//! ceiling allows; the supplemental worker wedges on the next batch;
//! and from then on the supervisor must sit on its hands no matter how
//! many wedge windows pass. Deadlines — not thread kills — age the
//! wedged work out.
//!
//! Lives in its own integration binary because the fault plan is
//! process-global; a `static` mutex serializes the tests on top.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use pra_chaos::{FaultPlan, Site};
use pra_core::Fidelity;
use pra_serve::{ControlRequest, Request, Response, ServeConfig, Server, StatsSnapshot};
use pra_workloads::{Network, Representation};

/// Serializes the tests in this binary around the global fault plan.
static CHAOS: Mutex<()> = Mutex::new(());

const SCENARIO_DEADLINE: Duration = Duration::from_secs(60);

/// How long a worker must sit on one batch before it counts as wedged.
const WEDGE_TIMEOUT: Duration = Duration::from_millis(20);

/// One-shot stats poll: connect, ask, parse, close.
fn stats(addr: &str) -> StatsSnapshot {
    let stream = TcpStream::connect(addr).expect("connect for stats");
    stream.set_read_timeout(Some(SCENARIO_DEADLINE)).expect("read timeout");
    let mut out = stream.try_clone().expect("clone stats stream");
    out.write_all((ControlRequest::Stats.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .expect("send stats");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("stats reply");
    StatsSnapshot::parse(&reply).expect("parse stats snapshot")
}

/// Sends `{"ctl": "drain"}` and waits for the one-line reply.
fn drain(addr: &str) {
    let stream = TcpStream::connect(addr).expect("connect for drain");
    let mut out = stream.try_clone().expect("clone drain stream");
    out.write_all((ControlRequest::Drain.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .expect("send drain");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("drain reply");
    assert!(reply.contains("\"status\": \"stats\""), "drain must answer a snapshot: {reply}");
}

#[test]
fn supplemental_worker_ceiling_holds_and_owed_answers_drain() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    pra_chaos::disarm();

    // One base worker ⇒ the ceiling (base * 2) allows exactly one
    // supplemental slot; batch size one keeps every request its own
    // batch; the deadline is what eventually answers the wedged work.
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 1,
        queue_depth: 64,
        linger: Duration::ZERO,
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        deadline: Some(Duration::from_millis(150)),
        wedge_timeout: WEDGE_TIMEOUT,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let join = std::thread::spawn(move || server.run_once());

    // Every simulation stalls for longer than any phase of this test
    // (disarming releases the stalls early): batch one wedges the base
    // worker, batch two wedges the supplemental one.
    pra_chaos::arm(FaultPlan::new(0xCA).with_site(Site::SlowSim, 1.0, Some(30_000)));

    // Four requests with distinct workload seeds: distinct batch keys,
    // so no coalescing — four one-request batches in admission order.
    let stream = TcpStream::connect(&addr).expect("connect client");
    stream.set_read_timeout(Some(SCENARIO_DEADLINE)).expect("read timeout");
    let mut out = stream.try_clone().expect("clone client stream");
    for id in 1..=4u64 {
        let req = Request {
            id,
            network: Network::AlexNet,
            repr: Representation::Fixed16,
            engine: "DaDN".to_string(),
            seed: id,
            v: 1,
        };
        out.write_all((req.to_json_line() + "\n").as_bytes()).expect("send request");
    }
    out.flush().expect("flush requests");

    // The base worker wedges on batch one; the supervisor must notice
    // and spawn the single supplemental slot the ceiling allows.
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while stats(&addr).worker_restarts < 1 {
        assert!(Instant::now() < deadline, "supervisor never spawned a supplemental worker");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The cap: sit through many more wedge windows with both slots
    // wedged — the supervisor must never spawn a second supplemental
    // worker, however long the wedge persists.
    let hold = Instant::now() + WEDGE_TIMEOUT * 15;
    while Instant::now() < hold {
        assert_eq!(
            stats(&addr).worker_restarts,
            1,
            "supplemental spawns must stop at base_workers * 2 total slots"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Release the stalls: the wedged batches finish into already-claimed
    // (deadline-swept) entries and the remaining queue drains.
    pra_chaos::disarm();

    // Owed answers: all four requests aged past their deadline — the two
    // wedged in flight are swept by the supervisor, the two still queued
    // are swept by the worker that eventually picks them up. Exactly one
    // answer per id, every one a retryable `shed:deadline`.
    let mut reader = BufReader::new(stream);
    let mut seen = BTreeSet::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        match Response::parse(&line).expect("parse response") {
            Response::Shed { id, reason } => {
                assert_eq!(reason.label(), "deadline", "id {id} must shed on its deadline");
                assert!(reason.retryable(), "shed:deadline must invite a retry");
                assert!(seen.insert(id), "id {id} answered more than once");
            }
            other => panic!("expected shed:deadline, got {other:?}"),
        }
    }
    assert_eq!(seen, (1..=4).collect::<BTreeSet<u64>>(), "every request answered exactly once");

    let snap = stats(&addr);
    assert_eq!(snap.worker_restarts, 1, "the ceiling held to the end");
    assert_eq!(snap.deadline_expired, 4, "all owed answers drained via the deadline sweep");

    // Close the client before draining: `--once` joins every open
    // connection handler, and ours blocks on this socket until EOF.
    drop(out);
    drop(reader);
    drain(&addr);
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while !join.is_finished() {
        assert!(Instant::now() < deadline, "server failed to drain after the wedge (hang)");
        std::thread::sleep(Duration::from_millis(10));
    }
    join.join().expect("server thread").expect("server run");
}
