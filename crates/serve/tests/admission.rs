//! Admission-control invariants (ISSUE 5 satellite): queue-full
//! shedding, linger expiry, and — property-tested over random request
//! mixes — that incompatible requests are never coalesced into one
//! batch and every queue invariant survives arbitrary traffic shapes.

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pra_serve::queue::{BatchKey, RequestQueue};
use pra_serve::{Request, ShedReason};
use pra_workloads::{Network, Representation};

fn request(id: u64, net: usize, repr: bool, engine: usize, seed: u64) -> Request {
    let repr = if repr { Representation::Fixed16 } else { Representation::Quant8 };
    let labels = pra_serve::protocol::engine_labels(repr);
    Request {
        id,
        network: Network::ALL[net % Network::ALL.len()],
        repr,
        engine: labels[engine % labels.len()].clone(),
        seed,
        v: 1,
    }
}

#[test]
fn queue_full_requests_shed_with_queue_full() {
    let q = RequestQueue::new(4);
    let (tx, _rx) = channel();
    for id in 0..4 {
        assert!(q.submit(request(id, 0, true, 0, 1), tx.clone()).is_ok());
    }
    for id in 4..8 {
        assert_eq!(
            q.submit(request(id, 0, true, 0, 1), tx.clone()),
            Err(ShedReason::QueueFull),
            "request {id} beyond the depth must shed"
        );
    }
    assert_eq!(q.len(), 4, "shed requests leave no residue");
}

#[test]
fn linger_expires_and_seals_a_partial_batch() {
    let q = RequestQueue::new(8);
    let (tx, _rx) = channel();
    q.submit(request(0, 2, true, 1, 9), tx).unwrap();
    let linger = Duration::from_millis(30);
    let start = Instant::now();
    let batch = q.next_batch(4, linger).unwrap();
    assert!(start.elapsed() >= linger, "a non-full batch must wait out the linger");
    assert_eq!(batch.requests.len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over arbitrary request mixes, drained batches (a) are never
    /// empty, (b) never exceed the batch cap, (c) are key-homogeneous —
    /// incompatible geometry/representation/seed/encoding never rides
    /// in one batch — (d) preserve FIFO order within a key, and
    /// (e) together hand back every admitted request exactly once.
    #[test]
    fn random_mixes_batch_soundly(
        mix in prop::collection::vec((0usize..6, any::<bool>(), 0usize..5, 0u64..3), 1..40),
        max_batch in 1usize..10,
    ) {
        let q = RequestQueue::new(mix.len());
        let (tx, _rx) = channel();
        for (id, &(net, repr, engine, seed)) in mix.iter().enumerate() {
            prop_assert!(q.submit(request(id as u64, net, repr, engine, seed), tx.clone()).is_ok());
        }
        q.close();
        let mut seen: Vec<u64> = Vec::new();
        while let Some(batch) = q.next_batch(max_batch, Duration::ZERO) {
            prop_assert!(!batch.requests.is_empty(), "batches are never empty");
            prop_assert!(batch.requests.len() <= max_batch, "the cap binds");
            for p in &batch.requests {
                prop_assert_eq!(
                    BatchKey::of(&p.req), batch.key,
                    "incompatible request coalesced: {:?} into {:?}", p.req, batch.key
                );
            }
            let ids: Vec<u64> = batch.requests.iter().map(|p| p.req.id).collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "FIFO within a key: {:?}", ids);
            seen.extend(ids);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seen.len(), "a request was batched twice");
        prop_assert_eq!(seen.len(), mix.len(), "a request was lost");
    }

    /// The compatibility key is exactly (network, repr, seed, encoding):
    /// two requests coalesce iff they agree on all four — engines under
    /// one encoding group never split a batch key.
    #[test]
    fn batch_key_is_the_workload_identity(
        a in (0usize..6, any::<bool>(), 0usize..5, 0u64..4),
        b in (0usize..6, any::<bool>(), 0usize..5, 0u64..4),
    ) {
        let ra = request(0, a.0, a.1, a.2, a.3);
        let rb = request(1, b.0, b.1, b.2, b.3);
        let same_workload = ra.network == rb.network && ra.repr == rb.repr && ra.seed == rb.seed;
        // All standard engine labels share one encoding key, so the
        // batch key must collapse to the workload identity.
        prop_assert_eq!(BatchKey::of(&ra) == BatchKey::of(&rb), same_workload);
    }
}
