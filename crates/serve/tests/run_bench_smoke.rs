//! End-to-end smoke of the closed-loop load generator against an
//! in-process TCP server — the same path CI's `serve-smoke` job drives
//! across two OS processes, here at sampled fidelity. Notably pins the
//! connection teardown (write-side shutdown → server EOF → reader
//! exit), which a response-count-only test would never touch.

use std::time::Duration;

use pra_core::Fidelity;
use pra_serve::{BenchConfig, ServeConfig, Server};

fn server_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        queue_depth: 64,
        linger: Duration::from_millis(2),
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        ..ServeConfig::default()
    }
}

#[test]
fn closed_loop_bench_completes_and_digest_is_window_independent() {
    let server = Server::bind("127.0.0.1:0", server_cfg()).expect("bind ephemeral");
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let mut cfg = BenchConfig {
        addr,
        requests: 10,
        window: 4,
        seed: 0x5EED,
        connect_timeout: Duration::from_secs(10),
        retries: 0,
        backoff_ms: 25,
        v2: false,
    };
    let (m, responses) = pra_serve::run_bench(&cfg).expect("bench must complete");
    assert_eq!(m.requests, 10);
    assert_eq!(m.ok, 10);
    assert_eq!(m.shed, 0);
    assert_eq!(m.errors, 0);
    assert_eq!(responses.len(), 10);
    assert!(m.p50_ms > 0.0 && m.p50_ms <= m.p95_ms && m.p95_ms <= m.p99_ms);
    assert!(m.rps > 0.0);
    assert!(m.mean_batch >= 1.0);
    assert_eq!(m.digest.len(), 64);

    // A different in-flight window changes timing, never a response
    // byte: the combined digest is the acceptance invariant.
    cfg.window = 1;
    let (m1, _) = pra_serve::run_bench(&cfg).expect("window 1 run");
    assert_eq!(m1.digest, m.digest, "digest must be independent of the client window");
}
