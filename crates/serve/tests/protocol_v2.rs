//! Protocol-v2 wire invariants (ISSUE 9 satellite): property-tested
//! frame round-trips over random layer counts, shed interleavings and
//! unicode in error text, plus the acceptance gate in miniature — a v2
//! client's combined digest is byte-identical to the v1 path, and the
//! stream delivers ordered progress frames strictly before `done`.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use proptest::prelude::*;

use pra_core::Fidelity;
use pra_serve::bench::request_mix;
use pra_serve::{BenchConfig, Response, ServeConfig, Server, ShedReason};

/// Characters the error-text generator draws from: ASCII, JSON
/// metacharacters that must escape, a control char, and multi-byte
/// unicode (including an astral-plane emoji).
const PALETTE: &[char] =
    &['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'λ', 'ω', '层', '流', '🚀', '∞'];

fn text(idx: &[usize]) -> String {
    idx.iter().map(|&i| PALETTE[i % PALETTE.len()]).collect()
}

const REASONS: &[ShedReason] = &[
    ShedReason::QueueFull,
    ShedReason::ShuttingDown,
    ShedReason::Overloaded,
    ShedReason::Deadline,
    ShedReason::WorkerLost,
    ShedReason::NoShard,
];

/// The wire invariant for every frame: serialize → parse → serialize is
/// a fixed point (floats are formatted at fixed precision, so *line*
/// identity is the meaningful round-trip, not struct identity).
fn assert_line_fixed_point(resp: &Response) -> Response {
    let line = resp.to_json_line();
    let parsed =
        Response::parse(&line).unwrap_or_else(|e| panic!("frame must re-parse: {e}\nline: {line}"));
    assert_eq!(parsed.to_json_line(), line, "serialize∘parse must be the identity on lines");
    parsed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `layer_result` frames survive the wire byte-exactly for
    /// arbitrary ids, layer counts and cumulative counters.
    #[test]
    fn layer_frames_roundtrip(
        id in 0u64..,
        layer in 0usize..64,
        extra in 1usize..64,
        cycles in 0u64..,
        terms in 0u64..,
    ) {
        let frame = Response::LayerResult { id, layer, layers: layer + extra, cycles, terms };
        let parsed = assert_line_fixed_point(&frame);
        prop_assert_eq!(parsed, frame);
        let done = Response::Done {
            id,
            frames: layer + 1,
            inner: Box::new(Response::Error { id, message: "late".to_string() }),
        };
        prop_assert!(done.is_terminal());
        prop_assert!(!Response::LayerResult { id, layer, layers: layer + extra, cycles, terms }
            .is_terminal());
    }

    /// `done` frames wrapping error terminals with arbitrary unicode in
    /// the message round-trip: the JSON-escaped payload re-parses to the
    /// same inner response, byte for byte.
    #[test]
    fn done_frames_roundtrip_unicode_errors(
        id in 0u64..,
        frames in 0usize..64,
        txt in prop::collection::vec(0usize..14, 0..24),
    ) {
        let inner = Response::Error { id, message: text(&txt) };
        let done = Response::Done { id, frames, inner: Box::new(inner.clone()) };
        let parsed = assert_line_fixed_point(&done);
        match parsed {
            Response::Done { id: pid, frames: pframes, inner: pinner } => {
                prop_assert_eq!(pid, id);
                prop_assert_eq!(pframes, frames);
                prop_assert_eq!(*pinner, inner);
            }
            other => prop_assert!(false, "parsed to a non-done frame: {:?}", other),
        }
    }

    /// Random multi-request exchanges — streamed requests round-robin
    /// interleaved with monolithic sheds — replay soundly: every line
    /// parses, each id gets exactly one terminal, a `done`'s `frames`
    /// count matches the progress frames that preceded it, its payload
    /// reproduces the request's v1 line byte-exactly, and progress
    /// frames arrive in layer order with nondecreasing counters.
    #[test]
    fn shed_interleavings_replay_to_the_v1_byte_stream(
        reqs in prop::collection::vec(
            (any::<bool>(), 0usize..6, 1usize..6, prop::collection::vec(0usize..14, 0..12)),
            1..8,
        ),
    ) {
        let mut v1_lines: BTreeMap<u64, String> = BTreeMap::new();
        let mut queues: Vec<Vec<String>> = Vec::new();
        for (i, (shed, reason, layers, txt)) in reqs.iter().enumerate() {
            let id = i as u64;
            if *shed {
                // Sheds stay monolithic v1 even on a v2 stream.
                let s = Response::Shed { id, reason: REASONS[reason % REASONS.len()] };
                v1_lines.insert(id, s.to_json_line());
                queues.push(vec![s.to_json_line()]);
            } else {
                let mut q: Vec<String> = (0..*layers)
                    .map(|l| {
                        Response::LayerResult {
                            id,
                            layer: l,
                            layers: *layers,
                            cycles: (l as u64 + 1) * 7,
                            terms: (l as u64 + 1) * 3,
                        }
                        .to_json_line()
                    })
                    .collect();
                let inner = Response::Error { id, message: text(txt) };
                v1_lines.insert(id, inner.to_json_line());
                q.push(
                    Response::Done { id, frames: *layers, inner: Box::new(inner) }.to_json_line(),
                );
                queues.push(q);
            }
        }
        // Round-robin merge: sheds and other requests' frames land in
        // the middle of each stream, as they do on a shared connection.
        let mut wire: Vec<String> = Vec::new();
        while queues.iter().any(|q| !q.is_empty()) {
            for q in queues.iter_mut() {
                if !q.is_empty() {
                    wire.push(q.remove(0));
                }
            }
        }
        let mut progress_seen: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
        let mut terminals: BTreeMap<u64, usize> = BTreeMap::new();
        for line in &wire {
            match Response::parse(line).expect("every wire line parses") {
                Response::LayerResult { id, layer, layers, cycles, .. } => {
                    prop_assert!(!terminals.contains_key(&id), "frame after terminal for {}", id);
                    let (count, last_cycles) = progress_seen.get(&id).copied().unwrap_or((0, 0));
                    prop_assert_eq!(layer, count, "layer frames arrive in order");
                    prop_assert!(layer < layers);
                    prop_assert!(cycles >= last_cycles, "cumulative counters never regress");
                    progress_seen.insert(id, (count + 1, cycles));
                }
                Response::Done { id, frames, inner } => {
                    prop_assert_eq!(
                        frames,
                        progress_seen.get(&id).map_or(0, |&(c, _)| c),
                        "done.frames counts the preceding progress frames"
                    );
                    prop_assert_eq!(
                        &inner.to_json_line(),
                        v1_lines.get(&id).expect("known id"),
                        "the done payload is the v1 line, byte for byte"
                    );
                    prop_assert!(terminals.insert(id, frames).is_none(), "second terminal");
                }
                Response::Shed { id, .. } => {
                    prop_assert!(terminals.insert(id, 0).is_none(), "second terminal");
                }
                other => prop_assert!(false, "unexpected frame: {:?}", other),
            }
        }
        prop_assert_eq!(terminals.len(), reqs.len(), "every request got exactly one terminal");
    }
}

/// Nesting frames inside a `done` payload is a protocol violation: the
/// payload must be a *terminal* v1 response.
#[test]
fn done_payloads_must_be_terminal() {
    let nested_progress = Response::Done {
        id: 1,
        frames: 0,
        inner: Box::new(Response::LayerResult { id: 1, layer: 0, layers: 2, cycles: 1, terms: 1 }),
    };
    assert!(Response::parse(&nested_progress.to_json_line()).is_err());
    let nested_done = Response::Done {
        id: 1,
        frames: 0,
        inner: Box::new(Response::Done {
            id: 1,
            frames: 0,
            inner: Box::new(Response::Error { id: 1, message: "x".to_string() }),
        }),
    };
    assert!(Response::parse(&nested_done.to_json_line()).is_err());
}

fn server_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        queue_depth: 64,
        linger: Duration::from_millis(2),
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        ..ServeConfig::default()
    }
}

fn boot() -> String {
    let server = Server::bind("127.0.0.1:0", server_cfg()).expect("bind ephemeral");
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = server.run();
    });
    addr
}

/// The acceptance gate in miniature: the same bench run as a v1 client
/// and as a v2 client produces byte-identical combined digests — the
/// concatenated digest-relevant payloads of a v2 exchange ARE the v1
/// bytes. CI's `streaming-smoke` job pins the same property at full
/// fidelity against the committed golden.
#[test]
fn v2_bench_digest_is_byte_identical_to_v1() {
    let addr = boot();
    let v1 = BenchConfig {
        addr,
        requests: 10,
        window: 4,
        seed: 0x5EED,
        connect_timeout: Duration::from_secs(10),
        retries: 0,
        backoff_ms: 25,
        v2: false,
    };
    let (m1, _) = pra_serve::run_bench(&v1).expect("v1 bench");
    assert_eq!(m1.frames, 0, "v1 clients never see frames");

    let mut v2 = v1.clone();
    v2.v2 = true;
    let (m2, _) = pra_serve::run_bench(&v2).expect("v2 bench");
    assert_eq!(m2.digest, m1.digest, "v2 streaming must not change a digest-relevant byte");
    assert_eq!(m2.ok, m1.ok);
    assert!(m2.frames > 0, "a v2 run streams progress frames");
    assert!(
        m2.p50_first_frame_ms > 0.0 && m2.p50_first_frame_ms <= m2.p50_ms,
        "the first frame can only arrive at or before the terminal: {} vs {}",
        m2.p50_first_frame_ms,
        m2.p50_ms
    );
}

/// Raw-socket v2 exchange: ordered progress frames strictly before one
/// `done`, whose payload carries the same simulation result a v1 client
/// gets for the identical request.
#[test]
fn v2_stream_orders_frames_before_done() {
    let addr = boot();
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut out = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    let mut v1 = request_mix(0, 0x5EED);
    v1.network = pra_workloads::Network::AlexNet;
    out.write_all((v1.to_json_line() + "\n").as_bytes()).unwrap();
    out.flush().unwrap();
    reader.read_line(&mut line).expect("v1 answer");
    let v1_digest = match Response::parse(line.trim()).expect("v1 response parses") {
        Response::Ok { digest, .. } => digest,
        other => panic!("expected ok, got {other:?}"),
    };

    let mut v2 = request_mix(0, 0x5EED);
    v2.network = pra_workloads::Network::AlexNet;
    v2.id = 1;
    v2.v = 2;
    out.write_all((v2.to_json_line() + "\n").as_bytes()).unwrap();
    out.flush().unwrap();

    let mut frames = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("stream line");
        match Response::parse(line.trim()).expect("v2 frame parses") {
            Response::LayerResult { id, layer, layers, .. } => {
                assert_eq!(id, 1);
                assert_eq!(layer, frames, "frames arrive in layer order");
                assert!(layer < layers);
                frames += 1;
            }
            Response::Done { id, frames: reported, inner } => {
                assert_eq!(id, 1);
                assert_eq!(reported, frames, "done.frames counts the stream");
                assert!(frames > 0, "a v2 request streams at least one progress frame");
                match *inner {
                    Response::Ok { digest, .. } => {
                        assert_eq!(digest, v1_digest, "same workload, same digest");
                    }
                    other => panic!("expected ok terminal, got {other:?}"),
                }
                break;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
}
