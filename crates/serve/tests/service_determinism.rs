//! The acceptance property in miniature: response digests are
//! byte-identical across worker counts and batch sizes, in-process and
//! over TCP. CI's `serve-smoke` job runs the same property at full
//! fidelity against the committed golden; this test uses sampled
//! fidelity so it stays fast in the matrix.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use pra_core::Fidelity;
use pra_serve::bench::request_mix;
use pra_serve::{Request, Response, ServeConfig, Server, SimService};

const TIMEOUT: Duration = Duration::from_secs(120);

fn cfg(workers: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch,
        queue_depth: 64,
        linger: Duration::from_millis(2),
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        ..ServeConfig::default()
    }
}

/// Drives `n` mixed requests through an in-process service and returns
/// `id -> (digest, cycles)`.
fn drive(svc: &SimService, n: usize) -> BTreeMap<u64, (String, u64)> {
    let rxs: Vec<_> = (0..n)
        .map(|i| {
            let mut req = request_mix(i, 0x5EED);
            // Compact the mix: blocks of 4 so small runs still coalesce.
            req.network = pra_workloads::Network::ALL[(i / 4) % 2];
            svc.call(req).expect("queue sized for the run")
        })
        .collect();
    rxs.iter()
        .map(|rx| match rx.recv_timeout(TIMEOUT).expect("response") {
            Response::Ok { id, digest, cycles, .. } => (id, (digest, cycles)),
            other => panic!("expected ok, got {other:?}"),
        })
        .collect()
}

#[test]
fn digests_identical_across_workers_and_batch_sizes() {
    let n = 16;
    let reference = {
        let svc = SimService::start(cfg(1, 1));
        drive(&svc, n)
    };
    assert_eq!(reference.len(), n);
    for (workers, max_batch) in [(2, 8), (8, 8), (4, 1), (1, 8)] {
        let svc = SimService::start(cfg(workers, max_batch));
        let got = drive(&svc, n);
        assert_eq!(
            got, reference,
            "{workers} workers / batch {max_batch} must reproduce every response byte"
        );
    }
}

#[test]
fn tcp_round_trip_matches_in_process_results() {
    let server = Server::bind("127.0.0.1:0", cfg(2, 4)).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let svc_stats_probe = std::sync::Arc::clone(server.service());
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut out = stream.try_clone().unwrap();
    let n = 8;
    for i in 0..n {
        let mut req = request_mix(i, 0x5EED);
        req.network = pra_workloads::Network::AlexNet; // one workload: max coalescing
        out.write_all((req.to_json_line() + "\n").as_bytes()).unwrap();
    }
    // An unparsable line and an unknown engine answer with errors
    // without disturbing the in-flight requests.
    out.write_all(b"this is not json\n").unwrap();
    out.write_all(
        b"{\"id\": 99, \"network\": \"Alexnet\", \"repr\": \"fp16\", \"engine\": \"TPU\"}\n",
    )
    .unwrap();
    out.flush().unwrap();

    let mut oks = BTreeMap::new();
    let mut errors = 0;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        match Response::parse(&line.unwrap()).unwrap() {
            Response::Ok { id, digest, cycles, batch_size, .. } => {
                assert!((1..=4).contains(&batch_size));
                oks.insert(id, (digest, cycles));
            }
            // The unparsable line answers MalformedId (raw id echoed
            // back), the unknown engine answers a plain Error.
            Response::Error { .. } | Response::MalformedId { .. } => errors += 1,
            Response::Shed { .. } => panic!("queue depth 64 must not shed 8 requests"),
            frame @ (Response::LayerResult { .. } | Response::Done { .. }) => {
                panic!("v1 clients must never see v2 frames, got {frame:?}")
            }
        }
        if oks.len() == n && errors == 2 {
            break;
        }
    }
    assert_eq!(errors, 2, "both bad lines must answer with errors");

    // The same requests in-process produce the same digests.
    let svc = SimService::start(cfg(1, 1));
    let direct: BTreeMap<u64, (String, u64)> = (0..n)
        .map(|i| {
            let mut req = request_mix(i, 0x5EED);
            req.network = pra_workloads::Network::AlexNet;
            match svc.call(req).unwrap().recv_timeout(TIMEOUT).unwrap() {
                Response::Ok { id, digest, cycles, .. } => (id, (digest, cycles)),
                other => panic!("expected ok, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(oks, direct, "TCP transport must not change a single response byte");
    assert!(
        svc_stats_probe.stats().answered.load(std::sync::atomic::Ordering::Relaxed) >= n as u64
    );
}

#[test]
fn queue_full_sheds_over_tcp() {
    // One worker, batch 1, long linger, depth 1: the first request
    // occupies the worker's linger window, the second queues, the rest
    // shed.
    let mut c = cfg(1, 1);
    c.queue_depth = 1;
    c.linger = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", c).expect("bind");
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut out = stream.try_clone().unwrap();
    let burst = 12;
    for i in 0..burst {
        let mut req: Request = request_mix(i, 0x5EED);
        req.network = pra_workloads::Network::AlexNet;
        req.engine = "DaDN".to_string();
        out.write_all((req.to_json_line() + "\n").as_bytes()).unwrap();
    }
    out.flush().unwrap();

    let (mut ok, mut shed) = (0, 0);
    for line in BufReader::new(stream).lines().take(burst) {
        match Response::parse(&line.unwrap()).unwrap() {
            Response::Ok { .. } => ok += 1,
            Response::Shed { reason, .. } => {
                assert_eq!(reason, pra_serve::ShedReason::QueueFull);
                shed += 1;
            }
            Response::Error { message, .. } => panic!("unexpected error: {message}"),
            Response::MalformedId { message, .. } => panic!("unexpected malformed-id: {message}"),
            frame @ (Response::LayerResult { .. } | Response::Done { .. }) => {
                panic!("v1 clients must never see v2 frames, got {frame:?}")
            }
        }
    }
    assert_eq!(ok + shed, burst);
    assert!(shed > 0, "a 12-request burst into depth 1 must shed");
    assert!(ok >= 1, "admitted requests still get answers");
}
