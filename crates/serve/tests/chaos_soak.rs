//! The chaos soak (DESIGN.md §12): a seeded fault matrix driven through
//! a live server, asserting the serving tier's degradation invariants —
//!
//!  1. no hang: every scenario's server thread joins within a bound;
//!  2. no leaked panic: injected worker panics are absorbed by the
//!     supervisor, never by the test harness;
//!  3. exactly-once: every admitted request is answered exactly once
//!     (`run_bench` errors on any duplicate response id);
//!  4. bit-identical results: every `ok` response under faults carries
//!     the same digest as the fault-free golden run, so the combined
//!     response fingerprint matches the golden fingerprint.
//!
//! Lives in its own integration binary because the fault plan is
//! process-global (same reasoning as `cache_chaos.rs` in
//! `pra-workloads`); a `static` mutex serializes the tests on top.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use pra_chaos::{FaultPlan, Site};
use pra_core::Fidelity;
use pra_serve::{
    run_bench, BenchConfig, ControlRequest, ServeConfig, ServeMetrics, Server, StatsSnapshot,
};

/// Serializes the tests in this binary around the global fault plan.
static CHAOS: Mutex<()> = Mutex::new(());

/// Join bound per scenario — generous next to the worst seeded stall
/// budget, tiny next to a real hang.
const SCENARIO_DEADLINE: Duration = Duration::from_secs(60);

fn server_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        queue_depth: 64,
        linger: Duration::from_millis(2),
        fidelity: Fidelity::Sampled { max_pallets: 2 },
        store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
        ..ServeConfig::default()
    }
}

fn bench_cfg(addr: String, retries: u32) -> BenchConfig {
    BenchConfig {
        addr,
        requests: 12,
        window: 4,
        seed: 0x50_AF_CA_FE,
        connect_timeout: Duration::from_secs(10),
        retries,
        backoff_ms: 5,
        v2: false,
    }
}

/// Sends `{"ctl": "drain"}` and waits for the one-line reply.
fn drain(addr: &str) {
    let stream = TcpStream::connect(addr).expect("connect for drain");
    let mut out = stream.try_clone().expect("clone drain stream");
    out.write_all((ControlRequest::Drain.to_json_line() + "\n").as_bytes())
        .and_then(|()| out.flush())
        .expect("send drain");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("drain reply");
    assert!(reply.contains("\"status\": \"stats\""), "drain must answer a snapshot: {reply}");
}

/// Boots a `--once` server under the current fault plan, runs the
/// closed-loop bench against it, then disarms, drains, and joins the
/// server thread within [`SCENARIO_DEADLINE`] (the no-hang assertion).
/// Returns the bench metrics + responses and the final stats snapshot.
fn run_scenario(
    what: &str,
    cfg: ServeConfig,
    retries: u32,
) -> (ServeMetrics, Vec<pra_serve::Response>, StatsSnapshot) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let svc = Arc::clone(server.service());
    let join = std::thread::spawn(move || server.run_once());

    let bench = run_bench(&bench_cfg(addr.clone(), retries));
    // Disarm before draining so socket/worker faults cannot swallow the
    // drain handshake itself; the faults under test already fired
    // during the bench.
    pra_chaos::disarm();
    let (metrics, responses) = bench.unwrap_or_else(|e| panic!("{what}: bench failed: {e}"));
    drain(&addr);

    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while !join.is_finished() {
        assert!(Instant::now() < deadline, "{what}: server failed to drain within bound (hang)");
        std::thread::sleep(Duration::from_millis(10));
    }
    join.join()
        .unwrap_or_else(|_| panic!("{what}: server thread panicked"))
        .unwrap_or_else(|e| panic!("{what}: server errored: {e}"));
    let snapshot = svc.stats().snapshot();
    (metrics, responses, snapshot)
}

/// One fault-free pass pinning the golden fingerprint every chaos
/// scenario must reproduce.
fn golden() -> ServeMetrics {
    pra_chaos::disarm();
    let (m, _, snap) = run_scenario("golden", server_cfg(), 0);
    assert_eq!((m.ok, m.shed, m.errors), (12, 0, 0), "golden run must be clean");
    assert_eq!(snap.worker_restarts, 0, "golden run must not restart workers");
    m
}

#[test]
fn seeded_fault_matrix_preserves_results_and_liveness() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    // The matrix: (scenario, plan). Rates are modest so the bench's
    // retry budget converges every request to `ok`; every seed is
    // pinned, so each scenario replays bit-identically.
    let matrix: Vec<(&str, FaultPlan)> = vec![
        ("worker-panic", FaultPlan::new(0xA1).with_site(Site::WorkerPanic, 0.25, None)),
        ("slow-sim", FaultPlan::new(0xB2).with_site(Site::SlowSim, 0.5, Some(30))),
        ("spawn-fail", FaultPlan::new(0xC3).with_site(Site::SpawnFail, 0.3, None)),
        ("sock-stall", FaultPlan::new(0xE5).with_site(Site::SockStall, 0.3, Some(40))),
        (
            "combined",
            FaultPlan::new(0xF7)
                .with_site(Site::WorkerPanic, 0.15, None)
                .with_site(Site::SlowSim, 0.3, Some(20))
                .with_site(Site::SockStall, 0.2, Some(25)),
        ),
    ];

    for (what, plan) in matrix {
        pra_chaos::arm(plan);
        let (m, _, snap) = run_scenario(what, server_cfg(), 8);
        assert_eq!(m.ok, 12, "{what}: every request must converge to ok (retried {})", m.retries);
        assert_eq!((m.shed, m.errors), (0, 0), "{what}: no terminal sheds or errors");
        assert_eq!(
            m.digest, golden.digest,
            "{what}: ok responses must be bit-identical to the fault-free golden"
        );
        // Exactly-once is enforced inside run_bench (duplicate response
        // ids error the bench); the ledger must balance too.
        assert!(
            snap.answered >= 12,
            "{what}: answered {} must cover the request count",
            snap.answered
        );
        if what == "worker-panic" {
            // A panic at the tail of the run is reclaimed without a
            // respawn (the queue is already closed), so only the
            // dedicated high-rate scenario pins the respawn path.
            assert!(
                snap.worker_restarts > 0,
                "{what}: the supervisor must have respawned a panicked worker"
            );
            assert!(snap.shed > 0, "{what}: reclaimed batches answer shed:worker_lost");
        }
    }
    pra_chaos::disarm();
}

#[test]
fn cache_corruption_under_load_still_serves_golden_bits() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    let dir = std::env::temp_dir().join(format!("pra-serve-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // All three tiers on: the corruption pass below must regenerate
    // workloads *and* encoded artifacts bit-identically.
    let store = pra_workloads::cache::ArtifactStore::new(&dir)
        .tier(pra_workloads::cache::ArtifactKind::Workload)
        .tier(pra_workloads::cache::ArtifactKind::Traffic)
        .tier(pra_workloads::cache::ArtifactKind::Encoded);
    let cached = ServeConfig { store, ..server_cfg() };

    // Warm pass (fault-free) populates the on-disk cache…
    pra_chaos::disarm();
    let (warm, _, _) = run_scenario("cache-warm", cached.clone(), 0);
    assert_eq!(warm.digest, golden.digest, "cache on/off must not change response bytes");

    // …then every read is corrupted: integrity verification must treat
    // the entries as misses and regenerate, never serve mangled bits.
    pra_chaos::arm(FaultPlan::new(0xD4).with_site(Site::CacheCorrupt, 1.0, None));
    let (m, _, _) = run_scenario("cache-corrupt", cached, 4);
    assert_eq!(m.ok, 12, "cache-corrupt: every request must still answer ok");
    assert_eq!(
        m.digest, golden.digest,
        "cache-corrupt: corrupted cache reads must regenerate golden bits"
    );
    pra_chaos::disarm();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_faults_end_a_connection_but_never_the_server() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let golden = golden();

    let server = Server::bind("127.0.0.1:0", server_cfg()).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let join = std::thread::spawn(move || server.run_once());

    // Every read and write on the wire fails: the bench's connection
    // dies, but that must stay the blast radius — the server keeps
    // accepting.
    pra_chaos::arm(FaultPlan::new(0x9E).with_site(Site::SockReadErr, 1.0, None).with_site(
        Site::SockWriteErr,
        1.0,
        None,
    ));
    let broken = run_bench(&bench_cfg(addr.clone(), 0));
    assert!(broken.is_err(), "a fully faulted wire must fail the client, not hang it");

    // Disarmed, a fresh connection serves the golden bits — the faulted
    // connection left no residue.
    pra_chaos::disarm();
    let (m, _) = run_bench(&bench_cfg(addr.clone(), 0)).expect("clean bench after socket faults");
    assert_eq!((m.ok, m.shed, m.errors), (12, 0, 0), "recovery run must be clean");
    assert_eq!(m.digest, golden.digest, "recovery run must carry golden bits");

    drain(&addr);
    let deadline = Instant::now() + SCENARIO_DEADLINE;
    while !join.is_finished() {
        assert!(Instant::now() < deadline, "server failed to drain after socket faults (hang)");
        std::thread::sleep(Duration::from_millis(10));
    }
    join.join().expect("server thread").expect("server run");
}
