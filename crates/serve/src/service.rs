//! The batched simulation service: a worker pool that drains the
//! admission queue and runs each sealed batch against build-once shared
//! artifacts.
//!
//! A batch is, by construction, one workload (network × representation
//! × seed) plus a set of engine requests over it — exactly the shape of
//! one sweep job (DESIGN.md §8), so the execution path is the same:
//! source the workload once (content-addressed cache when enabled, so a
//! warm service never regenerates), build one
//! [`SharedEncodedNetwork`] covering the batch's distinct PRA design
//! points, run each *distinct* engine exactly once, and fan the results
//! back out to every request. Two requests for the same engine in one
//! batch cost one simulation — that is the amortization the batching
//! exists for. Responses depend only on the request's own fields, never
//! on batch composition or scheduling, which is what makes response
//! digests byte-identical across worker counts and batch sizes (pinned
//! by `tests/service_determinism.rs` and the CI `serve-smoke` gate).
//!
//! Degradation (DESIGN.md §12): every batch member is registered in the
//! [`InflightRegistry`] before the batch can fail, and a supervisor
//! thread sweeps the registry for expired deadlines, joins and respawns
//! dead workers (answering their orphaned requests
//! `shed:worker_lost` and evicting the suspect pooled artifacts), and
//! spawns bounded supplemental workers past wedged ones. The chaos
//! sites (`pra-chaos`) sit exactly on the failure paths this machinery
//! defends: worker panic after registration, simulated slowdown, and
//! spawn failure.
//!
//! [`SharedEncodedNetwork`]: pra_core::SharedEncodedNetwork

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pra_core::{
    run_pipelined, run_shared, run_shared_streaming, ArtifactPool, PoolOutcome, PraConfig,
    SharedEncodedNetwork,
};
use pra_engines::{dadn, stripes};
use pra_sim::{ChipConfig, RunResult};
use pra_workloads::cache::CacheOutcome;
use pra_workloads::LayerView;

use crate::protocol::{
    repr_label, response_digest, Engine, LatencySplit, Request, Response, ShedReason, StatsSnapshot,
};
use crate::queue::{Batch, RequestQueue, ServeConfig};
use crate::supervisor::InflightRegistry;

/// Running counters the front end and the smoke gate read.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// Batches simulated.
    pub batches: AtomicU64,
    /// Requests answered with `status: ok`.
    pub answered: AtomicU64,
    /// Batches that reused pooled workload+artifact handles instead of
    /// rebuilding (the [`ArtifactPool`] batch-to-batch reuse).
    pub pool_hits: AtomicU64,
    /// Currently open TCP connections (a gauge, maintained by the
    /// front end).
    pub live_connections: AtomicU64,
    /// Connections refused at the [`ServeConfig::max_connections`] cap.
    pub connections_shed: AtomicU64,
    /// Workers the supervisor (re)spawned after a death, a failed
    /// spawn, or a wedge.
    pub worker_restarts: AtomicU64,
    /// Requests answered `shed:deadline` after their per-request
    /// deadline expired.
    pub deadline_expired: AtomicU64,
    /// Milliseconds of blocking artifact work paid by batch workers:
    /// workload sourcing, shared-artifact build or decode, and entry
    /// publication. A warm disk store collapses this to decode time —
    /// the CI `warm-start-smoke` gate pins that collapse.
    pub encode_ms: AtomicU64,
    /// Batches whose shared encoded artifacts loaded from the store's
    /// disk tier instead of being rebuilt from the workload.
    pub encoded_hits: AtomicU64,
    /// This process's shard id (copied from [`ServeConfig::shard`] at
    /// start so the snapshot path needs no config handle).
    pub shard: AtomicU64,
    /// This process's boot epoch (copied from [`ServeConfig::epoch`]).
    pub epoch: AtomicU64,
}

impl ServiceStats {
    /// A point-in-time copy, rendered over the wire by the `stats`
    /// control request.
    pub fn snapshot(&self) -> StatsSnapshot {
        // relaxed-ok: independent monotonic counters and a gauge; the
        // snapshot is advisory and needs no cross-counter consistency.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: ld(&self.accepted),
            shed: ld(&self.shed),
            batches: ld(&self.batches),
            answered: ld(&self.answered),
            pool_hits: ld(&self.pool_hits),
            live_connections: ld(&self.live_connections),
            connections_shed: ld(&self.connections_shed),
            worker_restarts: ld(&self.worker_restarts),
            deadline_expired: ld(&self.deadline_expired),
            encode_ms: ld(&self.encode_ms),
            encoded_hits: ld(&self.encoded_hits),
            shard: ld(&self.shard),
            epoch: ld(&self.epoch),
        }
    }
}

/// Workload+artifact pool slots. All twelve standard workloads (six
/// networks × two representations) fit with headroom for a few
/// off-seed requests.
const POOL_CAPACITY: usize = 16;

/// Supervisor sweep cadence: short enough that deadline sheds and
/// worker respawns land well inside any client timeout, long enough to
/// stay invisible in profiles.
const SUPERVISOR_TICK: Duration = Duration::from_millis(5);

type WorkerSlots = Mutex<Vec<Option<JoinHandle<()>>>>;

/// The in-process batched simulation service. The TCP front end wraps
/// it; tests and the load generator can also drive it directly.
pub struct SimService {
    queue: Arc<RequestQueue>,
    cfg: ServeConfig,
    stats: Arc<ServiceStats>,
    workers: Arc<WorkerSlots>,
    supervisor: Option<JoinHandle<()>>,
}

impl SimService {
    /// Starts the worker pool described by `cfg`, plus the supervisor
    /// that keeps it healthy.
    pub fn start(cfg: ServeConfig) -> SimService {
        let queue = Arc::new(RequestQueue::new(cfg.queue_depth));
        let stats = Arc::new(ServiceStats::default());
        // relaxed-ok: written once before any reader thread exists;
        // snapshots are advisory anyway.
        stats.shard.store(cfg.shard, Ordering::Relaxed);
        // relaxed-ok: same — written once before any reader exists.
        stats.epoch.store(cfg.epoch, Ordering::Relaxed);
        let pool = Arc::new(ArtifactPool::new(POOL_CAPACITY));
        let want = cfg.workers.max(1);
        let registry = Arc::new(InflightRegistry::new(want));
        let slots: Vec<Option<JoinHandle<()>>> = (0..want)
            .map(|slot| spawn_worker(slot, &queue, &stats, &pool, &registry, &cfg))
            .collect();
        let workers = Arc::new(Mutex::new(slots));
        let supervisor = {
            let cfg = cfg.clone();
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let pool = Arc::clone(&pool);
            let registry = Arc::clone(&registry);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("pra-serve-supervisor".to_string())
                .spawn(move || supervise(&cfg, &queue, &stats, &pool, &registry, &workers))
                .ok()
        };
        if supervisor.is_none() && lock_workers(&workers).iter().all(Option::is_none) {
            // Nothing can run batches and nothing can retry spawning:
            // close so submissions shed with ShuttingDown instead of
            // queueing forever.
            eprintln!("pra-serve: no worker or supervisor thread could be spawned; shedding");
            queue.close();
        }
        SimService { queue, cfg, stats, workers, supervisor }
    }

    /// The service configuration the pool was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Service counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Submits a request; the response arrives on `tx`. Shedding is
    /// returned to the caller *and* counted, but not sent on `tx` — the
    /// caller decides how to surface it (the TCP front end renders a
    /// `shed` response line, an in-process caller just sees the `Err`).
    ///
    /// # Errors
    ///
    /// The typed [`ShedReason`] when the request was refused.
    pub fn submit(&self, req: Request, tx: Sender<Response>) -> Result<(), ShedReason> {
        match self.queue.submit(req, tx) {
            Ok(()) => {
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(reason) => {
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(reason)
            }
        }
    }

    /// Convenience for in-process callers: submit and get a dedicated
    /// response receiver.
    ///
    /// # Errors
    ///
    /// The typed [`ShedReason`] when the request was refused.
    pub fn call(&self, req: Request) -> Result<Receiver<Response>, ShedReason> {
        let (tx, rx) = channel();
        self.submit(req, tx)?;
        Ok(rx)
    }

    /// Stops admission without blocking: queued requests still drain
    /// into batches, new submissions shed with
    /// [`ShedReason::ShuttingDown`]. The front end calls this on drain
    /// while it cannot yet consume the service; [`SimService::shutdown`]
    /// (or `Drop`) still does the joining.
    pub fn begin_shutdown(&self) {
        self.queue.close();
    }

    /// Abrupt stop of admission: discards queued (not-yet-batched)
    /// requests *without answering them* and closes the queue — the
    /// shard-kill path, where the clients' connections were already
    /// severed so answers would go nowhere. Batches already in flight
    /// still run to completion against disconnected channels;
    /// [`SimService::shutdown`] (or `Drop`) still joins the threads.
    pub fn abort(&self) {
        let dropped = self.queue.abort();
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        self.stats.shed.fetch_add(dropped as u64, Ordering::Relaxed);
    }

    /// Drains the queue and stops the workers: queued requests still get
    /// answers, new submissions shed with
    /// [`ShedReason::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Close, then join the supervisor (which joins the workers on its
    /// way out); idempotent so `shutdown` + `Drop` compose.
    fn stop(&mut self) {
        self.queue.close();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        // Fallback for the no-supervisor degenerate case (and a no-op
        // otherwise: the supervisor exits with every slot joined).
        let handles: Vec<JoinHandle<()>> =
            lock_workers(&self.workers).iter_mut().filter_map(Option::take).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Locks the worker slot table, recovering from poisoning: slots are
/// plain handles and the supervisor must keep sweeping after any panic.
fn lock_workers(workers: &WorkerSlots) -> MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
    workers.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Spawns the worker for `slot`. `None` when the OS refuses the thread
/// (or the chaos `spawn-fail` site fires); the supervisor retries on
/// its next sweep.
fn spawn_worker(
    slot: usize,
    queue: &Arc<RequestQueue>,
    stats: &Arc<ServiceStats>,
    pool: &Arc<ArtifactPool>,
    registry: &Arc<InflightRegistry>,
    cfg: &ServeConfig,
) -> Option<JoinHandle<()>> {
    if pra_chaos::fires(pra_chaos::Site::SpawnFail) {
        return None;
    }
    let queue = Arc::clone(queue);
    let stats = Arc::clone(stats);
    let pool = Arc::clone(pool);
    let registry = Arc::clone(registry);
    let cfg = cfg.clone();
    std::thread::Builder::new()
        .name(format!("pra-serve-worker-{slot}"))
        .spawn(move || {
            while let Some(batch) = queue.next_batch(cfg.max_batch, cfg.linger) {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                stats.batches.fetch_add(1, Ordering::Relaxed);
                run_batch(&cfg, &stats, &pool, &registry, slot, batch);
            }
        })
        .ok()
}

/// Claims every deadline-expired in-flight request and answers it
/// `shed:deadline`. Called from the supervisor sweep and from workers
/// before paying for a simulation; the registry's exactly-once claim
/// makes the two callers race-free.
fn shed_expired(registry: &InflightRegistry, stats: &ServiceStats, now: Instant) {
    for c in registry.claim_expired(now) {
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        let _ = c.tx.send(Response::Shed { id: c.id, reason: ShedReason::Deadline });
    }
}

/// Answers everything a dead worker still owed (`shed:worker_lost`,
/// retryable) and evicts the pooled artifacts its batch was using — the
/// panic may have happened mid-build, so the cheap safe move is to
/// rebuild that workload on next use.
fn reclaim_dead_slot(
    slot: usize,
    stats: &ServiceStats,
    pool: &ArtifactPool,
    registry: &InflightRegistry,
) {
    let (owed, workload) = registry.claim_dead(slot);
    for c in owed {
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        stats.shed.fetch_add(1, Ordering::Relaxed);
        let _ = c.tx.send(Response::Shed { id: c.id, reason: ShedReason::WorkerLost });
    }
    if let Some((network, repr, seed)) = workload {
        let _ = pool.evict(network, repr, seed);
    }
}

/// The supervisor loop: deadline sweep, dead-worker reclaim + respawn,
/// wedge detection. Exits — with every worker joined — once the queue
/// is closed and fully drained.
fn supervise(
    cfg: &ServeConfig,
    queue: &Arc<RequestQueue>,
    stats: &Arc<ServiceStats>,
    pool: &Arc<ArtifactPool>,
    registry: &Arc<InflightRegistry>,
    workers: &Arc<WorkerSlots>,
) {
    let base_workers = cfg.workers.max(1);
    let max_slots = base_workers * 2;
    loop {
        if cfg.deadline.is_some() {
            shed_expired(registry, stats, Instant::now());
        }
        let all_idle = {
            let mut ws = lock_workers(workers);
            // Dead workers: join, reclaim their batch, free the slot. A
            // clean exit (join Ok) only happens once the queue closed
            // and drained, so an Err is the only reclaim trigger.
            for slot in 0..ws.len() {
                let finished =
                    ws.get(slot).and_then(|w| w.as_ref()).is_some_and(JoinHandle::is_finished);
                if finished {
                    if let Some(h) = ws.get_mut(slot).and_then(Option::take) {
                        if h.join().is_err() {
                            reclaim_dead_slot(slot, stats, pool, registry);
                        }
                    }
                }
            }
            ws.iter().all(Option::is_none)
        };
        let draining = !queue.is_closed() || !queue.is_empty() || registry.owed() > 0;
        if draining {
            let mut ws = lock_workers(workers);
            // Respawn every empty slot (failed spawns, dead workers).
            for slot in 0..ws.len() {
                if ws.get(slot).is_some_and(Option::is_none) {
                    if let Some(h) = respawn(slot, queue, stats, pool, registry, cfg) {
                        if let Some(w) = ws.get_mut(slot) {
                            *w = Some(h);
                        }
                    }
                }
            }
            // Wedge detection: a batch in flight past the wedge timeout
            // means its worker cannot be counted on; if too few healthy
            // workers remain, add a bounded supplemental one (threads
            // cannot be killed — the wedged batch ages out via its
            // deadlines while the pool keeps draining).
            let now = Instant::now();
            let live = ws.iter().filter(|w| w.is_some()).count();
            let wedged = (0..ws.len())
                .filter(|&s| {
                    ws.get(s).is_some_and(Option::is_some)
                        && registry.in_flight_age(s, now).is_some_and(|age| age > cfg.wedge_timeout)
                })
                .count();
            if wedged > 0 && live.saturating_sub(wedged) < base_workers && ws.len() < max_slots {
                let slot = ws.len();
                registry.ensure_slots(slot + 1);
                let h = respawn(slot, queue, stats, pool, registry, cfg);
                ws.push(h);
            }
        } else if all_idle {
            // Closed, drained, nothing owed, every slot joined: done.
            // One defensive final sweep answers anything that slipped in
            // between the checks (there is nothing to slip: submits shed
            // once closed).
            if cfg.deadline.is_some() {
                shed_expired(registry, stats, Instant::now());
            }
            return;
        }
        std::thread::sleep(SUPERVISOR_TICK);
    }
}

/// One supervisor-initiated spawn attempt for `slot`, counted in
/// [`ServiceStats::worker_restarts`] when it succeeds (a `None` — OS
/// refusal or the chaos `spawn-fail` site — is retried next sweep).
fn respawn(
    slot: usize,
    queue: &Arc<RequestQueue>,
    stats: &Arc<ServiceStats>,
    pool: &Arc<ArtifactPool>,
    registry: &Arc<InflightRegistry>,
    cfg: &ServeConfig,
) -> Option<JoinHandle<()>> {
    let h = spawn_worker(slot, queue, stats, pool, registry, cfg)?;
    // relaxed-ok: monotonic stat counter; nothing synchronizes through
    // it.
    stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
    Some(h)
}

/// Executes one sealed batch end to end and answers every member.
fn run_batch(
    cfg: &ServeConfig,
    stats: &ServiceStats,
    pool: &ArtifactPool,
    registry: &InflightRegistry,
    slot: usize,
    batch: Batch,
) {
    let key = batch.key;
    // Register every member before anything on this path can fail: from
    // here on, the registry owns exactly-once answering — the fan-out
    // below claims each id, and whatever this worker never claims (it
    // panicked, the deadline passed) the supervisor claims instead.
    let members: Vec<_> = batch
        .requests
        .iter()
        .map(|p| (p.req.id, p.tx.clone(), cfg.deadline.map(|d| p.submitted + d), p.req.v == 2))
        .collect();
    for c in registry.begin_batch(slot, (key.network, key.repr, key.seed), members) {
        // Unreachable by construction (finish_batch drains the slot);
        // answering beats leaking if that ever regresses.
        let _ = c.tx.send(Response::Shed { id: c.id, reason: ShedReason::WorkerLost });
    }

    if pra_chaos::fires(pra_chaos::Site::WorkerPanic) {
        // pra-lint: allow(serve-no-panic): deliberate chaos fault site —
        // it sits after registration precisely so the soak can prove the
        // supervisor reclaims the batch and respawns the worker.
        panic!("chaos: injected worker panic (site worker-panic)");
    }
    pra_chaos::stall(pra_chaos::Site::SlowSim);

    // Answer already-expired requests before paying for the simulation.
    if cfg.deadline.is_some() {
        shed_expired(registry, stats, Instant::now());
    }

    // Engine resolution failures answer per-request instead of poisoning
    // the batch (parse-time validation makes this unreachable over the
    // wire, but in-process callers construct requests directly).
    let mut engines: Vec<(String, Engine)> = Vec::new();
    for p in &batch.requests {
        if !engines.iter().any(|(l, _)| *l == p.req.engine) {
            if let Some(engine) = Engine::from_label(&p.req.engine, key.repr, cfg.fidelity) {
                engines.push((p.req.engine.clone(), engine));
            }
        }
    }

    // Nothing resolvable: answer every request with an error without
    // paying for a workload build or a baseline simulation.
    if engines.is_empty() {
        for p in &batch.requests {
            if let Some(c) = registry.claim(slot, p.req.id) {
                let resp = Response::Error {
                    id: c.id,
                    message: format!("unknown engine '{}'", p.req.engine),
                };
                // A v2 client still gets its terminal inside a `done`
                // frame — zero layer frames, since nothing simulated.
                let resp = if c.stream {
                    Response::Done { id: c.id, frames: 0, inner: Box::new(resp) }
                } else {
                    resp
                };
                let _ = c.tx.send(resp);
            }
        }
        finish_slot(registry, slot);
        return;
    }

    // One workload and one shared-artifact build per batch, and — via
    // the [`ArtifactPool`] — per *run of batches*: the pool is always
    // keyed on the full standard design-point set, so the first batch
    // of a workload builds artifacts every later batch reuses whatever
    // engine mix it carries. The tiered [`ArtifactStore`] backs the
    // first build (workload *and* encoded artifacts, so a warm boot
    // deserializes instead of re-encoding); baselines-only batches
    // never pay for an encode — they probe the pool and fall back to
    // the bare workload.
    //
    // [`ArtifactStore`]: pra_workloads::cache::ArtifactStore
    let std_cfgs: Vec<PraConfig> = pra_bench::sweep::pra_configs(key.repr, cfg.fidelity);
    let any_pra = engines.iter().any(|(_, e)| matches!(e, Engine::Pra(_)));
    // Any v2 member turns on streaming for the batch: the lead engine's
    // per-layer progress fans out as `layer_result` frames to exactly
    // the still-in-flight v2 members (the registry's `stream` flag
    // keeps v1 channels byte-identical to the old wire).
    let has_streamers = batch.requests.iter().any(|p| p.req.v == 2);
    let mut frames_sent: BTreeMap<u64, usize> = BTreeMap::new();
    // The lead engine is the batch's first PRA design point: its run is
    // the one that overlaps the pipelined artifact build and drives the
    // frame stream.
    let lead: Option<(String, PraConfig)> = engines.iter().find_map(|(l, e)| match e {
        Engine::Pra(c) => Some((l.clone(), *c)),
        _ => None,
    });
    let streaming_lead = if has_streamers { lead } else { None };
    // Blocking artifact work (everything that is not simulation) is
    // accumulated into `encode_ms`; the overlapped portion of a
    // pipelined build is deliberately excluded — it costs no latency.
    let ms_since = |t: Instant| t.elapsed().as_millis() as u64;
    let mut build_ms: u64 = 0;
    let mut encoded_hit = false;
    let (workload, shared, lead_run) = if let Some((lead_label, lead_cfg)) = streaming_lead {
        // Streaming batches break the strict build-then-simulate
        // sequence on a pool miss: layer n+1 encodes on the pipeline
        // thread while layer n simulates here, and every finished layer
        // becomes a frame immediately.
        match pool.lookup(&std_cfgs, key.network, key.repr, key.seed) {
            Some((workload, shared)) => {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                stats.pool_hits.fetch_add(1, Ordering::Relaxed);
                let layers = workload.layers.len();
                let r = run_shared_streaming(&lead_cfg, &workload, &shared, |idx, partial| {
                    emit_frames(registry, slot, cfg, &mut frames_sent, idx, layers, partial);
                });
                (workload, Some(shared), Some((lead_label, r)))
            }
            None => {
                let t = Instant::now();
                let (workload, _) = cfg.store.workload(key.network, key.repr, key.seed);
                let workload = Arc::new(workload);
                let build = SharedEncodedNetwork::start_pipelined(
                    &std_cfgs, &workload, key.seed, &cfg.store,
                );
                build_ms += ms_since(t);
                let layers = workload.layers.len();
                let r = run_pipelined(&lead_cfg, &workload, &build, |idx, partial| {
                    emit_frames(registry, slot, cfg, &mut frames_sent, idx, layers, partial);
                });
                // The encoded probe rides the builder thread and
                // settles with the final layer — which the lead sim
                // just consumed, so this read is authoritative.
                encoded_hit = matches!(build.encoded_outcome(), CacheOutcome::Hit);
                // `finish` also publishes a missed encoded entry — by
                // now the lead sim warmed its memos in place.
                let t = Instant::now();
                let shared = Arc::new(build.finish(&cfg.store));
                build_ms += ms_since(t);
                pool.insert(
                    key.network,
                    key.repr,
                    key.seed,
                    &std_cfgs,
                    Arc::clone(&workload),
                    Arc::clone(&shared),
                );
                (workload, Some(shared), Some((lead_label, r)))
            }
        }
    } else if any_pra {
        let t = Instant::now();
        let (workload, shared, outcome) =
            pool.get_or_build(&std_cfgs, key.network, key.repr, key.seed, &cfg.store);
        build_ms += ms_since(t);
        match outcome {
            PoolOutcome::Pooled => {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                stats.pool_hits.fetch_add(1, Ordering::Relaxed);
            }
            PoolOutcome::Built(out) => {
                encoded_hit = matches!(out.encoded, CacheOutcome::Hit);
            }
        }
        (workload, Some(shared), None)
    } else {
        match pool.lookup(&std_cfgs, key.network, key.repr, key.seed) {
            Some((workload, shared)) => {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                stats.pool_hits.fetch_add(1, Ordering::Relaxed);
                (workload, Some(shared), None)
            }
            None => {
                let t = Instant::now();
                let (workload, _) = cfg.store.workload(key.network, key.repr, key.seed);
                build_ms += ms_since(t);
                (Arc::new(workload), None, None)
            }
        }
    };
    // relaxed-ok: monotonic stat counters; nothing synchronizes
    // through them.
    stats.encode_ms.fetch_add(build_ms, Ordering::Relaxed);
    if encoded_hit {
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        stats.encoded_hits.fetch_add(1, Ordering::Relaxed);
    }
    let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
    let chip = ChipConfig::dadn();
    let traffic = shared.as_ref().and_then(|s| s.traffic_view(&chip, Default::default(), key.repr));

    // Each distinct engine simulates exactly once; the DaDN baseline is
    // always needed for the speedup field.
    let base = dadn::run_views(&chip, &views, key.repr, traffic);

    // Streaming batches with no PRA engine stream off the baseline run
    // instead: a burst of per-layer frames as soon as it completes (the
    // baseline engines have no incremental hook, but the client still
    // gets layer granularity and the same done-frame terminal).
    if has_streamers && lead_run.is_none() {
        let mut partial = RunResult::new(base.engine.clone());
        for (idx, layer) in base.layers.iter().enumerate() {
            partial.layers.push(layer.clone());
            emit_frames(registry, slot, cfg, &mut frames_sent, idx, base.layers.len(), &partial);
        }
    }

    let mut results: BTreeMap<&str, (u64, u64, f64)> = BTreeMap::new();
    for (label, engine) in &engines {
        let (cycles, terms, speedup) = match engine {
            Engine::DaDn => (base.total_cycles(), base.total_terms(), 1.0),
            Engine::Stripes => {
                let r = stripes::run_views(&chip, &views, key.repr, traffic);
                (r.total_cycles(), r.total_terms(), r.speedup_over(&base))
            }
            // `shared` is always built when any PRA engine resolved; a
            // None here (impossible by construction) falls through to the
            // per-request unknown-engine error below instead of panicking
            // the worker.
            Engine::Pra(pra_cfg) => match &lead_run {
                // The streaming lead already simulated while artifacts
                // were still building; reuse its result.
                Some((lead_label, r)) if lead_label == label => {
                    (r.total_cycles(), r.total_terms(), r.speedup_over(&base))
                }
                _ => match shared.as_deref() {
                    Some(s) => {
                        let r = run_shared(pra_cfg, &workload, s);
                        (r.total_cycles(), r.total_terms(), r.speedup_over(&base))
                    }
                    None => continue,
                },
            },
        };
        results.insert(label.as_str(), (cycles, terms, speedup));
    }

    // Publish a missed encoded entry now that the batch's sims warmed
    // the schedule memos (no-op on a streaming build — `finish` already
    // published — and on pool hits or warm loads, which armed nothing).
    if let Some(s) = shared.as_deref() {
        let t = Instant::now();
        s.publish_encoded(&cfg.store);
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        stats.encode_ms.fetch_add(ms_since(t), Ordering::Relaxed);
    }

    let batch_size = batch.requests.len();
    let ms = |a: Instant, b: Instant| b.saturating_duration_since(a).as_secs_f64() * 1e3;
    for p in &batch.requests {
        // Claim first: a `None` means the deadline sweep already
        // answered this request — the exactly-once discipline says this
        // worker must stay silent about it.
        let Some(claimed) = registry.claim(slot, p.req.id) else {
            continue;
        };
        let done = Instant::now();
        let joined = p.joined.unwrap_or(batch.sealed);
        let resp = match results.get(p.req.engine.as_str()) {
            Some(&(cycles, terms, speedup)) => {
                let (net, repr) = (p.req.network.name(), repr_label(p.req.repr));
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                stats.answered.fetch_add(1, Ordering::Relaxed);
                Response::Ok {
                    id: p.req.id,
                    network: net.to_string(),
                    repr: repr.to_string(),
                    engine: p.req.engine.clone(),
                    seed: p.req.seed,
                    cycles,
                    terms,
                    speedup,
                    digest: response_digest(
                        net,
                        repr,
                        &p.req.engine,
                        p.req.seed,
                        cycles,
                        terms,
                        speedup,
                    ),
                    batch_size,
                    latency: LatencySplit {
                        enqueue_ms: ms(p.submitted, joined),
                        batch_ms: ms(joined, batch.sealed),
                        sim_ms: ms(batch.sealed, done),
                        total_ms: ms(p.submitted, done),
                    },
                }
            }
            None => Response::Error {
                id: p.req.id,
                message: format!("unknown engine '{}'", p.req.engine),
            },
        };
        // A v2 member's terminal travels inside a `done` frame carrying
        // the frame count; concatenating the done payload after the
        // frames reproduces the v1 bytes (pinned by the protocol tests
        // and the CI streaming smoke).
        let resp = if claimed.stream {
            let frames = frames_sent.get(&p.req.id).copied().unwrap_or(0);
            Response::Done { id: p.req.id, frames, inner: Box::new(resp) }
        } else {
            resp
        };
        // A disconnected client is not the service's problem.
        let _ = claimed.tx.send(resp);
    }
    finish_slot(registry, slot);
}

/// Fans one finished layer out as `layer_result` frames to every
/// still-in-flight streaming (v2) member of `slot`'s batch, counting
/// per-id frames for the terminal `done` frame. Delivering a frame also
/// extends per-request deadlines ([`InflightRegistry::on_frame`]): a
/// deadline under streaming bounds *inactivity*, not total latency —
/// a client watching frames arrive is not stuck.
fn emit_frames(
    registry: &InflightRegistry,
    slot: usize,
    cfg: &ServeConfig,
    frames_sent: &mut BTreeMap<u64, usize>,
    layer: usize,
    layers: usize,
    partial: &RunResult,
) {
    let (cycles, terms) = (partial.total_cycles(), partial.total_terms());
    for (id, tx) in registry.on_frame(slot, cfg.deadline) {
        *frames_sent.entry(id).or_insert(0) += 1;
        let _ = tx.send(Response::LayerResult { id, layer, layers, cycles, terms });
    }
}

/// Ends `slot`'s batch, defensively answering anything the fan-out
/// failed to claim (unreachable by construction).
fn finish_slot(registry: &InflightRegistry, slot: usize) {
    for c in registry.finish_batch(slot) {
        let _ = c.tx.send(Response::Shed { id: c.id, reason: ShedReason::WorkerLost });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_core::Fidelity;
    use pra_workloads::{Network, Representation};

    fn fast_cfg(workers: usize, max_batch: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch,
            queue_depth: 64,
            linger: Duration::from_millis(5),
            fidelity: Fidelity::Sampled { max_pallets: 2 },
            store: pra_workloads::cache::ArtifactStore::at_default().no_disk(),
            deadline: None,
            max_connections: 64,
            wedge_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        }
    }

    fn req(id: u64, engine: &str) -> Request {
        Request {
            id,
            network: Network::AlexNet,
            repr: Representation::Fixed16,
            engine: engine.to_string(),
            seed: 0xBEEF,
            v: 1,
        }
    }

    #[test]
    fn answers_every_engine_and_counts_stats() {
        let svc = SimService::start(fast_cfg(2, 8));
        let rxs: Vec<_> = ["DaDN", "Stripes", "PRA-2b", "PRA-4b", "PRA-2b-1R"]
            .iter()
            .enumerate()
            .map(|(i, e)| svc.call(req(i as u64, e)).expect("admitted"))
            .collect();
        let mut speedups = Vec::new();
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(120)).expect("response") {
                Response::Ok { cycles, speedup, digest, latency, .. } => {
                    assert!(cycles > 0);
                    assert_eq!(digest.len(), 64, "sha256 hex digest");
                    assert!(latency.total_ms >= latency.sim_ms);
                    speedups.push(speedup);
                }
                other => panic!("expected ok, got {other:?}"),
            }
        }
        assert_eq!(speedups[0], 1.0, "DaDN speedup over itself");
        assert!(speedups[2] > 1.0, "PRA-2b must beat the baseline");
        assert_eq!(svc.stats().accepted.load(Ordering::Relaxed), 5);
        assert_eq!(svc.stats().answered.load(Ordering::Relaxed), 5);
        assert_eq!(svc.stats().shed.load(Ordering::Relaxed), 0);
        let snap = svc.stats().snapshot();
        assert_eq!((snap.accepted, snap.answered, snap.worker_restarts), (5, 5, 0));
        svc.shutdown();
    }

    #[test]
    fn consecutive_batches_reuse_pooled_artifacts() {
        let svc = SimService::start(fast_cfg(1, 1));
        // Three one-request batches over one workload: the first builds,
        // the rest must hit the pool (batch 1 ⇒ no within-batch reuse to
        // confuse the count).
        for id in 0..3 {
            let rx = svc.call(req(id, "PRA-2b")).unwrap();
            assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
        }
        assert_eq!(svc.stats().batches.load(Ordering::Relaxed), 3);
        assert_eq!(
            svc.stats().pool_hits.load(Ordering::Relaxed),
            2,
            "batches 2 and 3 must reuse the pooled artifacts"
        );
        // A baselines-only batch on the same workload also profits.
        let rx = svc.call(req(9, "DaDN")).unwrap();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
        assert_eq!(svc.stats().pool_hits.load(Ordering::Relaxed), 3);
        svc.shutdown();
    }

    #[test]
    fn v2_requests_stream_layer_frames_then_done() {
        let svc = SimService::start(fast_cfg(1, 2));
        let mut streaming = req(5, "PRA-2b");
        streaming.v = 2;
        let rx = svc.call(streaming).unwrap();
        let mut frames = 0usize;
        let mut last_cycles = 0u64;
        let v2_digest = loop {
            match rx.recv_timeout(Duration::from_secs(120)).expect("frame or terminal") {
                Response::LayerResult { id, layer, layers, cycles, .. } => {
                    assert_eq!(id, 5);
                    assert_eq!(layer, frames, "frames arrive in layer order");
                    assert!(layer < layers);
                    assert!(cycles >= last_cycles, "cycle totals are cumulative");
                    last_cycles = cycles;
                    frames += 1;
                }
                Response::Done { id, frames: reported, inner } => {
                    assert_eq!(id, 5);
                    assert_eq!(reported, frames, "done frame counts the frames sent");
                    assert!(frames > 0, "a streaming run must emit layer frames");
                    match *inner {
                        Response::Ok { id, cycles, digest, .. } => {
                            assert_eq!(id, 5);
                            assert!(cycles > 0);
                            break digest;
                        }
                        other => panic!("expected ok terminal, got {other:?}"),
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        };
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err(), "done is terminal");
        // A v1 request for the same work gets a bare ok whose digest
        // matches the streamed terminal byte for byte.
        let rx = svc.call(req(6, "PRA-2b")).unwrap();
        match rx.recv_timeout(Duration::from_secs(120)).expect("response") {
            Response::Ok { digest, .. } => {
                assert_eq!(digest, v2_digest, "streaming must not change results");
            }
            other => panic!("expected ok, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn v2_requests_without_pra_engines_burst_baseline_frames() {
        let svc = SimService::start(fast_cfg(1, 2));
        let mut streaming = req(7, "Stripes");
        streaming.v = 2;
        let rx = svc.call(streaming).unwrap();
        let mut frames = 0usize;
        loop {
            match rx.recv_timeout(Duration::from_secs(120)).expect("frame or terminal") {
                Response::LayerResult { id, .. } => {
                    assert_eq!(id, 7);
                    frames += 1;
                }
                Response::Done { id, frames: reported, inner } => {
                    assert_eq!(id, 7);
                    assert_eq!(reported, frames);
                    assert!(frames > 0, "baseline batches still stream per-layer frames");
                    assert!(matches!(*inner, Response::Ok { .. }));
                    break;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        svc.shutdown();
    }

    #[test]
    fn duplicate_engines_in_one_batch_agree() {
        let svc = SimService::start(fast_cfg(1, 4));
        let a = svc.call(req(1, "PRA-2b")).unwrap();
        let b = svc.call(req(2, "PRA-2b")).unwrap();
        let get = |rx: Receiver<Response>| match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(Response::Ok { cycles, terms, digest, .. }) => (cycles, terms, digest),
            other => panic!("expected ok, got {other:?}"),
        };
        let (ca, ta, da) = get(a);
        let (cb, tb, db) = get(b);
        assert_eq!((ca, ta, &da), (cb, tb, &db), "identical requests, identical answers");
        svc.shutdown();
    }

    #[test]
    fn unknown_engine_answers_with_error_in_process() {
        let svc = SimService::start(fast_cfg(1, 2));
        let rx = svc.call(req(9, "NotAnEngine")).unwrap();
        match rx.recv_timeout(Duration::from_secs(120)).unwrap() {
            Response::Error { id, message } => {
                assert_eq!(id, 9);
                assert!(message.contains("NotAnEngine"));
            }
            other => panic!("expected error, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_answers_already_queued_work() {
        let svc = SimService::start(fast_cfg(1, 8));
        let rx = svc.call(req(1, "DaDN")).unwrap();
        svc.shutdown();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
    }

    #[test]
    fn expired_deadline_sheds_instead_of_simulating() {
        // A zero deadline expires at admission: the worker's pre-sim
        // sweep (or the supervisor's) must answer `shed:deadline`, and
        // the fan-out must stay silent about the claimed id.
        let mut cfg = fast_cfg(1, 4);
        cfg.deadline = Some(Duration::ZERO);
        let svc = SimService::start(cfg);
        let rx = svc.call(req(1, "DaDN")).unwrap();
        match rx.recv_timeout(Duration::from_secs(120)).expect("exactly one answer") {
            Response::Shed { id, reason } => {
                assert_eq!(id, 1);
                assert_eq!(reason, ShedReason::Deadline);
                assert!(reason.retryable());
            }
            other => panic!("expected shed:deadline, got {other:?}"),
        }
        assert!(svc.stats().deadline_expired.load(Ordering::Relaxed) >= 1);
        assert_eq!(svc.stats().answered.load(Ordering::Relaxed), 0, "nothing simulated an answer");
        // The channel saw exactly one response.
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err(), "no second answer");
        svc.shutdown();
    }

    #[test]
    fn generous_deadline_does_not_disturb_answers() {
        let mut cfg = fast_cfg(2, 4);
        cfg.deadline = Some(Duration::from_secs(600));
        let svc = SimService::start(cfg);
        let rx = svc.call(req(3, "PRA-2b")).unwrap();
        match rx.recv_timeout(Duration::from_secs(120)).expect("response") {
            Response::Ok { id, cycles, .. } => {
                assert_eq!(id, 3);
                assert!(cycles > 0);
            }
            other => panic!("expected ok, got {other:?}"),
        }
        assert_eq!(svc.stats().deadline_expired.load(Ordering::Relaxed), 0);
        svc.shutdown();
    }
}
