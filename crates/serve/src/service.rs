//! The batched simulation service: a worker pool that drains the
//! admission queue and runs each sealed batch against build-once shared
//! artifacts.
//!
//! A batch is, by construction, one workload (network × representation
//! × seed) plus a set of engine requests over it — exactly the shape of
//! one sweep job (DESIGN.md §8), so the execution path is the same:
//! source the workload once (content-addressed cache when enabled, so a
//! warm service never regenerates), build one
//! [`SharedEncodedNetwork`] covering the batch's distinct PRA design
//! points, run each *distinct* engine exactly once, and fan the results
//! back out to every request. Two requests for the same engine in one
//! batch cost one simulation — that is the amortization the batching
//! exists for. Responses depend only on the request's own fields, never
//! on batch composition or scheduling, which is what makes response
//! digests byte-identical across worker counts and batch sizes (pinned
//! by `tests/service_determinism.rs` and the CI `serve-smoke` gate).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use pra_core::{run_shared, ArtifactPool, PraConfig};
use pra_engines::{dadn, stripes};
use pra_sim::ChipConfig;
use pra_workloads::cache::{self, Cache};
use pra_workloads::{LayerView, NetworkWorkload};

use crate::protocol::{
    repr_label, response_digest, Engine, LatencySplit, Request, Response, ShedReason,
};
use crate::queue::{Batch, RequestQueue, ServeConfig};

/// Running counters the front end and the smoke gate read.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// Batches simulated.
    pub batches: AtomicU64,
    /// Requests answered with `status: ok`.
    pub answered: AtomicU64,
    /// Batches that reused pooled workload+artifact handles instead of
    /// rebuilding (the [`ArtifactPool`] batch-to-batch reuse).
    pub pool_hits: AtomicU64,
}

/// Workload+artifact pool slots. All twelve standard workloads (six
/// networks × two representations) fit with headroom for a few
/// off-seed requests.
const POOL_CAPACITY: usize = 16;

/// The in-process batched simulation service. The TCP front end wraps
/// it; tests and the load generator can also drive it directly.
pub struct SimService {
    queue: Arc<RequestQueue>,
    cfg: ServeConfig,
    stats: Arc<ServiceStats>,
    workers: Vec<JoinHandle<()>>,
}

impl SimService {
    /// Starts the worker pool described by `cfg`.
    pub fn start(cfg: ServeConfig) -> SimService {
        let queue = Arc::new(RequestQueue::new(cfg.queue_depth));
        let stats = Arc::new(ServiceStats::default());
        let pool = Arc::new(ArtifactPool::new(POOL_CAPACITY));
        let workers = (0..cfg.workers.max(1))
            .filter_map(|i| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let pool = Arc::clone(&pool);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("pra-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(batch) = queue.next_batch(cfg.max_batch, cfg.linger) {
                            // relaxed-ok: monotonic stat counter; nothing
                            // synchronizes through it.
                            stats.batches.fetch_add(1, Ordering::Relaxed);
                            run_batch(&cfg, &stats, &pool, batch);
                        }
                    })
                    .ok()
            })
            .collect::<Vec<_>>();
        if workers.is_empty() {
            // No worker could spawn: close immediately so submissions
            // shed with ShuttingDown instead of queueing forever.
            eprintln!("pra-serve: no worker threads could be spawned; service is shedding");
            queue.close();
        }
        SimService { queue, cfg, stats, workers }
    }

    /// The service configuration the pool was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Service counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Submits a request; the response arrives on `tx`. Shedding is
    /// returned to the caller *and* counted, but not sent on `tx` — the
    /// caller decides how to surface it (the TCP front end renders a
    /// `shed` response line, an in-process caller just sees the `Err`).
    ///
    /// # Errors
    ///
    /// The typed [`ShedReason`] when the request was refused.
    pub fn submit(&self, req: Request, tx: Sender<Response>) -> Result<(), ShedReason> {
        match self.queue.submit(req, tx) {
            Ok(()) => {
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(reason) => {
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(reason)
            }
        }
    }

    /// Convenience for in-process callers: submit and get a dedicated
    /// response receiver.
    ///
    /// # Errors
    ///
    /// The typed [`ShedReason`] when the request was refused.
    pub fn call(&self, req: Request) -> Result<Receiver<Response>, ShedReason> {
        let (tx, rx) = channel();
        self.submit(req, tx)?;
        Ok(rx)
    }

    /// Drains the queue and stops the workers: queued requests still get
    /// answers, new submissions shed with
    /// [`ShedReason::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Executes one sealed batch end to end and answers every member.
fn run_batch(cfg: &ServeConfig, stats: &ServiceStats, pool: &ArtifactPool, batch: Batch) {
    let key = batch.key;
    // Engine resolution failures answer per-request instead of poisoning
    // the batch (parse-time validation makes this unreachable over the
    // wire, but in-process callers construct requests directly).
    let mut engines: Vec<(String, Engine)> = Vec::new();
    for p in &batch.requests {
        if !engines.iter().any(|(l, _)| *l == p.req.engine) {
            if let Some(engine) = Engine::from_label(&p.req.engine, key.repr, cfg.fidelity) {
                engines.push((p.req.engine.clone(), engine));
            }
        }
    }

    // Nothing resolvable: answer every request with an error without
    // paying for a workload build or a baseline simulation.
    if engines.is_empty() {
        for p in batch.requests {
            let _ = p.tx.send(Response::Error {
                id: p.req.id,
                message: format!("unknown engine '{}'", p.req.engine),
            });
        }
        return;
    }

    // One workload and one shared-artifact build per batch, and — via
    // the [`ArtifactPool`] — per *run of batches*: the pool is always
    // keyed on the full standard design-point set, so the first batch
    // of a workload builds artifacts every later batch reuses whatever
    // engine mix it carries. The on-disk cache (PR 4) still backs the
    // first build; baselines-only batches never pay for an encode —
    // they probe the pool and fall back to the bare workload.
    let cache_handle: Option<Cache> = (cfg.use_cache && cache::enabled())
        .then(|| cfg.cache_dir.clone().map(Cache::new).unwrap_or_else(Cache::at_default));
    let std_cfgs: Vec<PraConfig> = pra_bench::sweep::pra_configs(key.repr, cfg.fidelity);
    let any_pra = engines.iter().any(|(_, e)| matches!(e, Engine::Pra(_)));
    let (workload, shared) = if any_pra {
        let (workload, shared, pool_hit) =
            pool.get_or_build(&std_cfgs, key.network, key.repr, key.seed, cache_handle.as_ref());
        if pool_hit {
            // relaxed-ok: monotonic stat counter; nothing synchronizes
            // through it.
            stats.pool_hits.fetch_add(1, Ordering::Relaxed);
        }
        (workload, Some(shared))
    } else {
        match pool.lookup(&std_cfgs, key.network, key.repr, key.seed) {
            Some((workload, shared)) => {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                stats.pool_hits.fetch_add(1, Ordering::Relaxed);
                (workload, Some(shared))
            }
            None => {
                let workload = Arc::new(match &cache_handle {
                    Some(c) => cache::build_cached_in(c, key.network, key.repr, key.seed).0,
                    None => NetworkWorkload::build_uncached(key.network, key.repr, key.seed),
                });
                (workload, None)
            }
        }
    };
    let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
    let chip = ChipConfig::dadn();
    let traffic = shared.as_ref().and_then(|s| s.traffic_view(&chip, Default::default(), key.repr));

    // Each distinct engine simulates exactly once; the DaDN baseline is
    // always needed for the speedup field.
    let base = dadn::run_views(&chip, &views, key.repr, traffic);
    let mut results: BTreeMap<&str, (u64, u64, f64)> = BTreeMap::new();
    for (label, engine) in &engines {
        let (cycles, terms, speedup) = match engine {
            Engine::DaDn => (base.total_cycles(), base.total_terms(), 1.0),
            Engine::Stripes => {
                let r = stripes::run_views(&chip, &views, key.repr, traffic);
                (r.total_cycles(), r.total_terms(), r.speedup_over(&base))
            }
            // `shared` is always built when any PRA engine resolved; a
            // None here (impossible by construction) falls through to the
            // per-request unknown-engine error below instead of panicking
            // the worker.
            Engine::Pra(pra_cfg) => match shared.as_deref() {
                Some(s) => {
                    let r = run_shared(pra_cfg, &workload, s);
                    (r.total_cycles(), r.total_terms(), r.speedup_over(&base))
                }
                None => continue,
            },
        };
        results.insert(label.as_str(), (cycles, terms, speedup));
    }

    let batch_size = batch.requests.len();
    let ms = |a: Instant, b: Instant| b.saturating_duration_since(a).as_secs_f64() * 1e3;
    for p in batch.requests {
        let done = Instant::now();
        let joined = p.joined.unwrap_or(batch.sealed);
        let resp = match results.get(p.req.engine.as_str()) {
            Some(&(cycles, terms, speedup)) => {
                let (net, repr) = (p.req.network.name(), repr_label(p.req.repr));
                // relaxed-ok: monotonic stat counter; nothing synchronizes
                // through it.
                stats.answered.fetch_add(1, Ordering::Relaxed);
                Response::Ok {
                    id: p.req.id,
                    network: net.to_string(),
                    repr: repr.to_string(),
                    engine: p.req.engine.clone(),
                    seed: p.req.seed,
                    cycles,
                    terms,
                    speedup,
                    digest: response_digest(
                        net,
                        repr,
                        &p.req.engine,
                        p.req.seed,
                        cycles,
                        terms,
                        speedup,
                    ),
                    batch_size,
                    latency: LatencySplit {
                        enqueue_ms: ms(p.submitted, joined),
                        batch_ms: ms(joined, batch.sealed),
                        sim_ms: ms(batch.sealed, done),
                        total_ms: ms(p.submitted, done),
                    },
                }
            }
            None => Response::Error {
                id: p.req.id,
                message: format!("unknown engine '{}'", p.req.engine),
            },
        };
        // A disconnected client is not the service's problem.
        let _ = p.tx.send(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_core::Fidelity;
    use pra_workloads::{Network, Representation};
    use std::time::Duration;

    fn fast_cfg(workers: usize, max_batch: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch,
            queue_depth: 64,
            linger: Duration::from_millis(5),
            fidelity: Fidelity::Sampled { max_pallets: 2 },
            use_cache: false,
            cache_dir: None,
        }
    }

    fn req(id: u64, engine: &str) -> Request {
        Request {
            id,
            network: Network::AlexNet,
            repr: Representation::Fixed16,
            engine: engine.to_string(),
            seed: 0xBEEF,
        }
    }

    #[test]
    fn answers_every_engine_and_counts_stats() {
        let svc = SimService::start(fast_cfg(2, 8));
        let rxs: Vec<_> = ["DaDN", "Stripes", "PRA-2b", "PRA-4b", "PRA-2b-1R"]
            .iter()
            .enumerate()
            .map(|(i, e)| svc.call(req(i as u64, e)).expect("admitted"))
            .collect();
        let mut speedups = Vec::new();
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(120)).expect("response") {
                Response::Ok { cycles, speedup, digest, latency, .. } => {
                    assert!(cycles > 0);
                    assert_eq!(digest.len(), 64, "sha256 hex digest");
                    assert!(latency.total_ms >= latency.sim_ms);
                    speedups.push(speedup);
                }
                other => panic!("expected ok, got {other:?}"),
            }
        }
        assert_eq!(speedups[0], 1.0, "DaDN speedup over itself");
        assert!(speedups[2] > 1.0, "PRA-2b must beat the baseline");
        assert_eq!(svc.stats().accepted.load(Ordering::Relaxed), 5);
        assert_eq!(svc.stats().answered.load(Ordering::Relaxed), 5);
        assert_eq!(svc.stats().shed.load(Ordering::Relaxed), 0);
        svc.shutdown();
    }

    #[test]
    fn consecutive_batches_reuse_pooled_artifacts() {
        let svc = SimService::start(fast_cfg(1, 1));
        // Three one-request batches over one workload: the first builds,
        // the rest must hit the pool (batch 1 ⇒ no within-batch reuse to
        // confuse the count).
        for id in 0..3 {
            let rx = svc.call(req(id, "PRA-2b")).unwrap();
            assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
        }
        assert_eq!(svc.stats().batches.load(Ordering::Relaxed), 3);
        assert_eq!(
            svc.stats().pool_hits.load(Ordering::Relaxed),
            2,
            "batches 2 and 3 must reuse the pooled artifacts"
        );
        // A baselines-only batch on the same workload also profits.
        let rx = svc.call(req(9, "DaDN")).unwrap();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
        assert_eq!(svc.stats().pool_hits.load(Ordering::Relaxed), 3);
        svc.shutdown();
    }

    #[test]
    fn duplicate_engines_in_one_batch_agree() {
        let svc = SimService::start(fast_cfg(1, 4));
        let a = svc.call(req(1, "PRA-2b")).unwrap();
        let b = svc.call(req(2, "PRA-2b")).unwrap();
        let get = |rx: Receiver<Response>| match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(Response::Ok { cycles, terms, digest, .. }) => (cycles, terms, digest),
            other => panic!("expected ok, got {other:?}"),
        };
        let (ca, ta, da) = get(a);
        let (cb, tb, db) = get(b);
        assert_eq!((ca, ta, &da), (cb, tb, &db), "identical requests, identical answers");
        svc.shutdown();
    }

    #[test]
    fn unknown_engine_answers_with_error_in_process() {
        let svc = SimService::start(fast_cfg(1, 2));
        let rx = svc.call(req(9, "NotAnEngine")).unwrap();
        match rx.recv_timeout(Duration::from_secs(120)).unwrap() {
            Response::Error { id, message } => {
                assert_eq!(id, 9);
                assert!(message.contains("NotAnEngine"));
            }
            other => panic!("expected error, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_answers_already_queued_work() {
        let svc = SimService::start(fast_cfg(1, 8));
        let rx = svc.call(req(1, "DaDN")).unwrap();
        svc.shutdown();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(120)), Ok(Response::Ok { .. })));
    }
}
