//! The wire codec: the single source of truth for JSON-line field
//! extraction, escaping, and parse errors, shared by the serve front
//! end, the router, and `bench-serve`.
//!
//! Every frame on the wire (requests, responses, v2 `layer_result` /
//! `done` frames, control lines, stats snapshots) is one flat JSON
//! object per line, rendered with [`json_string`] escaping and read
//! back with the scanners below — both ends of every connection in the
//! workspace go through this module, so escaping and field extraction
//! can never drift apart (the workspace builds offline; see
//! `shims/README.md` for why there is no serde here).
//!
//! Parse failures are **typed**: every parser in `protocol.rs` returns
//! a [`ParseError`] carrying both what went wrong and the offending
//! line, matching the malformed-id treatment introduced in PR 8 —
//! nothing is silently defaulted anymore.

/// Re-exported escape routine: the one function that turns a Rust
/// string into a JSON string literal anywhere in the workspace.
pub use pra_bench::report::json_string;

/// A typed wire-parse failure: what was wrong, and the exact line that
/// was wrong. Carrying the line means every layer that logs or relays
/// the error (probe failures, bench hard errors, `error` responses)
/// shows the operator the bytes that were actually rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was missing or invalid, e.g. `missing "cycles"`.
    pub what: String,
    /// The offending wire line, verbatim (trailing newline trimmed).
    pub line: String,
}

impl ParseError {
    /// A parse error for `line` described by `what`.
    pub fn new(what: impl Into<String>, line: &str) -> ParseError {
        ParseError { what: what.into(), line: line.trim_end().to_string() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in line: {}", self.what, self.line)
    }
}

impl std::error::Error for ParseError {}

/// Extracts the raw JSON string value following `"key":` in a flat
/// object; handles the escapes [`json_string`] emits. `None` when the
/// key is absent or not a string.
pub fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = line.get(line.find(&needle)? + needle.len()..)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the number following `"key":` in a flat JSON object.
pub fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = line.get(line.find(&needle)? + needle.len()..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// Extracts the number following `"key":` as an exact `u64`, rejecting
/// floats, negatives, and values past `u64::MAX` (everything the `f64`
/// path of [`json_num_field`] would silently mangle).
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = line.get(line.find(&needle)? + needle.len()..)?.trim_start();
    let end =
        rest.find(|c: char| c.is_whitespace() || matches!(c, ',' | '}')).unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// The raw token following `"id":`, exactly as it appears on the wire
/// (up to the next delimiter) — what [`request_id`] parses, preserved
/// verbatim so a rejected line's error response can echo the id text
/// the client actually sent instead of fabricating a numeric id.
/// `None` when the line has no id field at all.
pub fn raw_id_token(line: &str) -> Option<String> {
    let needle = "\"id\":";
    let rest = line.find(needle).and_then(|at| line.get(at + needle.len()..))?.trim_start();
    let end =
        rest.find(|c: char| c.is_whitespace() || matches!(c, ',' | '}')).unwrap_or(rest.len());
    let raw = rest.get(..end).unwrap_or(rest);
    if raw.is_empty() {
        return None;
    }
    Some(raw.to_string())
}

/// Extracts the request `id` as an exact `u64`, rejecting what
/// [`json_num_field`]'s `f64` path would silently mangle: ids beyond
/// 2⁵³ lose precision in a double, negatives and floats would
/// truncate, and an absent field used to default to 0 — which made a
/// malformed line impersonate whichever real request used id 0. The
/// raw token is preserved in the error so the client can see exactly
/// what the server rejected.
///
/// # Errors
///
/// A [`ParseError`] naming the problem and quoting the raw id text.
pub fn request_id(line: &str) -> Result<u64, ParseError> {
    let raw = raw_id_token(line).ok_or_else(|| ParseError::new("missing numeric \"id\"", line))?;
    raw.parse::<u64>().map_err(|_| {
        ParseError::new(format!("invalid \"id\" '{raw}' (expected an integer ≤ u64)"), line)
    })
}

/// Parses a seed written as decimal or `0x`-hex (underscores allowed).
pub fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        v.replace('_', "").parse().ok()
    }
}

/// Lower-case hex rendering of a digest.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scanner_handles_escapes() {
        let line = "{\"msg\": \"a\\\"b\\\\c\\nd\", \"n\": -1.5e2}";
        assert_eq!(json_str_field(line, "msg").unwrap(), "a\"b\\c\nd");
        assert_eq!(json_num_field(line, "n").unwrap(), -150.0);
        assert!(json_str_field(line, "absent").is_none());
    }

    #[test]
    fn escaped_strings_round_trip_through_the_scanner() {
        for raw in ["plain", "a\"b\\c", "tabs\tand\nnewlines\r", "unicode: λ→∎ 🦀", ""] {
            let rendered = format!("{{\"msg\": {}}}", json_string(raw));
            assert_eq!(json_str_field(&rendered, "msg").as_deref(), Some(raw), "{rendered}");
        }
    }

    #[test]
    fn exact_u64_scanner_rejects_what_f64_mangles() {
        assert_eq!(json_u64_field("{\"n\": 18446744073709551615}", "n"), Some(u64::MAX));
        assert_eq!(json_u64_field("{\"n\": 18446744073709551616}", "n"), None);
        assert_eq!(json_u64_field("{\"n\": 1.5}", "n"), None);
        assert_eq!(json_u64_field("{\"n\": -3}", "n"), None);
        assert_eq!(json_u64_field("{\"x\": 1}", "n"), None);
    }

    #[test]
    fn raw_id_and_request_id_agree_on_malformed_input() {
        assert_eq!(raw_id_token("{\"id\": 1.5e3, \"x\": 1}").as_deref(), Some("1.5e3"));
        assert_eq!(raw_id_token("{\"x\": 1}"), None);
        assert_eq!(request_id("{\"id\": 18446744073709551615}").unwrap(), u64::MAX);
        let err = request_id("{\"id\": 1.5}").unwrap_err();
        assert!(err.what.contains("'1.5'"), "{err}");
        assert_eq!(err.line, "{\"id\": 1.5}");
        assert!(request_id("{\"x\": 1}").unwrap_err().to_string().contains("id"));
    }

    #[test]
    fn parse_errors_carry_the_offending_line() {
        let e = ParseError::new("missing \"cycles\"", "{\"status\": \"ok\"}\n");
        assert_eq!(e.to_string(), "missing \"cycles\" in line: {\"status\": \"ok\"}");
        assert_eq!(e.line, "{\"status\": \"ok\"}", "trailing newline trimmed");
    }

    #[test]
    fn seed_parser_reads_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xDEAD_BEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_seed("1_000"), Some(1000));
        assert_eq!(parse_seed("zebra"), None);
    }

    #[test]
    fn hex_renders_lower_case_pairs() {
        assert_eq!(hex(&[0x00, 0xAB, 0xFF]), "00abff");
    }
}
