//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! The serving front end speaks JSON-lines over a plain TCP stream (or
//! any other line-oriented byte pipe): one request per line in, one
//! response per line out, matched by the client-chosen `id`. Responses
//! may arrive out of request order — batching reorders freely. The
//! objects are deliberately flat so both ends can use the same tiny
//! field scanner (the [`crate::codec`] module) instead of a JSON
//! dependency (the workspace builds offline; see `shims/README.md`).
//!
//! A request names a workload (`network`, `repr`, `seed`) and an engine
//! label from the standard evaluation set (`DaDN`, `Stripes`, and the
//! PRA design points of the sweep). The response carries the simulated
//! totals, a content digest over the simulation-determined fields (the
//! CI golden pins it), the batch size the request was coalesced into,
//! and the per-request latency split.
//!
//! ## Protocol v2: streaming frames
//!
//! A request carrying `"v": 2` opts into *streaming*: the server may
//! interleave any number of [`Response::LayerResult`] progress frames
//! before the terminal [`Response::Done`] frame. The `done` frame's
//! `payload` field holds the complete v1 response line, JSON-escaped —
//! so the concatenation of a v2 exchange's digest-relevant payloads is
//! byte-identical to what a v1 client receives, and the CI golden pins
//! both at once. Requests without `"v"` (or with `"v": 1`) get exactly
//! the monolithic v1 response, byte-identical to every prior release.
//! Sheds are always monolithic v1 lines, even for v2 requests: a shed
//! request never started streaming, and clients retry on the bare line.

use pra_core::{EncodingKey, Fidelity, PraConfig};
use pra_workloads::cache::sha256;
use pra_workloads::{Network, Representation};

use crate::codec::{
    hex, json_num_field, json_str_field, json_u64_field, parse_seed, request_id, ParseError,
};

/// Version tag mixed into every response digest: bump when the digest's
/// canonical input or the simulation semantics behind it change, so a
/// stale golden fails loudly instead of comparing apples to oranges.
/// (Note this is *not* the wire negotiation version: v2 streaming
/// changes framing, not simulation semantics, so the digest tag stays.)
pub const PROTOCOL_VERSION: u32 = 1;

/// Why the service refused a request instead of simulating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was at capacity — the caller should back off
    /// and retry (classic load shedding, not an error in the request).
    QueueFull,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The connection cap was reached; this connection was refused
    /// before any request was read.
    Overloaded,
    /// The request's deadline expired before its simulation finished;
    /// answering late would be answering garbage, so it sheds instead.
    Deadline,
    /// The worker simulating this request's batch died; the supervisor
    /// answered on its behalf. Retryable — the respawned worker serves
    /// the retry.
    WorkerLost,
    /// Every shard in the request key's replica set is down; the router
    /// answered on the cluster's behalf. Retryable — health probes
    /// bring recovered shards back, so a backed-off retry can land.
    NoShard,
}

impl ShedReason {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::ShuttingDown => "shutting_down",
            ShedReason::Overloaded => "overloaded",
            ShedReason::Deadline => "deadline",
            ShedReason::WorkerLost => "worker_lost",
            ShedReason::NoShard => "no_shard",
        }
    }

    /// The reason for a wire label, `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<ShedReason> {
        match label {
            "queue_full" => Some(ShedReason::QueueFull),
            "shutting_down" => Some(ShedReason::ShuttingDown),
            "overloaded" => Some(ShedReason::Overloaded),
            "deadline" => Some(ShedReason::Deadline),
            "worker_lost" => Some(ShedReason::WorkerLost),
            "no_shard" => Some(ShedReason::NoShard),
            _ => None,
        }
    }

    /// Whether a client should retry after backing off. Shutdown is the
    /// one reason retrying the same server cannot help with.
    pub fn retryable(&self) -> bool {
        !matches!(self, ShedReason::ShuttingDown)
    }
}

/// An out-of-band control request: not simulation work, but service
/// introspection (`stats`) and graceful shutdown (`drain`) over the
/// same wire, so operators need no side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlRequest {
    /// Snapshot the live [`StatsSnapshot`] counters.
    Stats,
    /// Stop accepting, answer everything queued, then exit `run()`
    /// (honored only by `pra serve --once`; refused otherwise).
    Drain,
}

impl ControlRequest {
    /// Recognizes a control line: `{"ctl": "stats"}` or
    /// `{"ctl": "drain"}`. `None` for ordinary request lines.
    pub fn parse(line: &str) -> Option<ControlRequest> {
        match json_str_field(line, "ctl").as_deref() {
            Some("stats") => Some(ControlRequest::Stats),
            Some("drain") => Some(ControlRequest::Drain),
            _ => None,
        }
    }

    /// Renders the control request as one JSON line.
    pub fn to_json_line(&self) -> String {
        match self {
            ControlRequest::Stats => "{\"ctl\": \"stats\"}".to_string(),
            ControlRequest::Drain => "{\"ctl\": \"drain\"}".to_string(),
        }
    }
}

/// A point-in-time copy of the service counters, as answered to a
/// `stats` control request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests shed (admission, deadline, and supervisor sheds).
    pub shed: u64,
    /// Batches simulated.
    pub batches: u64,
    /// Requests answered `ok`.
    pub answered: u64,
    /// Batches served from the artifact pool.
    pub pool_hits: u64,
    /// Connections being served right now.
    pub live_connections: u64,
    /// Connections refused at the cap with `shed:overloaded`.
    pub connections_shed: u64,
    /// Dead workers detected and respawned by the supervisor.
    pub worker_restarts: u64,
    /// Requests answered `shed:deadline` past their deadline.
    pub deadline_expired: u64,
    /// Milliseconds of blocking artifact work (workload sourcing,
    /// shared-artifact build or decode, entry publication) paid by
    /// batch workers since boot. The CI warm-start smoke compares this
    /// across a cold and a warm boot of the same cache directory.
    pub encode_ms: u64,
    /// Batches whose shared encoded artifacts loaded from the store's
    /// disk tier instead of being rebuilt.
    pub encoded_hits: u64,
    /// This process's shard id within a cluster (0 when standalone).
    pub shard: u64,
    /// This process's epoch — a per-boot value (the process id by
    /// default) that changes when the shard restarts, so the router's
    /// health probes can tell "same shard, rebooted" from "same shard,
    /// still up".
    pub epoch: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as one JSON line (`"status": "stats"`).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"status\": \"stats\", \"accepted\": {}, \"shed\": {}, \"batches\": {}, \
             \"answered\": {}, \"pool_hits\": {}, \"live_connections\": {}, \
             \"connections_shed\": {}, \"worker_restarts\": {}, \"deadline_expired\": {}, \
             \"encode_ms\": {}, \"encoded_hits\": {}, \"shard\": {}, \"epoch\": {}}}",
            self.accepted,
            self.shed,
            self.batches,
            self.answered,
            self.pool_hits,
            self.live_connections,
            self.connections_shed,
            self.worker_restarts,
            self.deadline_expired,
            self.encode_ms,
            self.encoded_hits,
            self.shard,
            self.epoch,
        )
    }

    /// Parses the client side of [`to_json_line`].
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the missing field and carrying the line.
    pub fn parse(line: &str) -> Result<StatsSnapshot, ParseError> {
        if json_str_field(line, "status").as_deref() != Some("stats") {
            return Err(ParseError::new("not a stats line", line));
        }
        let num = |k: &str| {
            json_num_field(line, k)
                .map(|v| v as u64)
                .ok_or_else(|| ParseError::new(format!("stats missing \"{k}\""), line))
        };
        Ok(StatsSnapshot {
            accepted: num("accepted")?,
            shed: num("shed")?,
            batches: num("batches")?,
            answered: num("answered")?,
            pool_hits: num("pool_hits")?,
            live_connections: num("live_connections")?,
            connections_shed: num("connections_shed")?,
            worker_restarts: num("worker_restarts")?,
            deadline_expired: num("deadline_expired")?,
            // Added after the v1 wire format shipped: default 0 so a
            // newer client can still read an older shard's snapshot.
            // This is a *versioned* tolerance, not a silent one — the
            // round-trip test pins the legacy-line behavior.
            encode_ms: json_num_field(line, "encode_ms").map_or(0, |v| v as u64),
            encoded_hits: json_num_field(line, "encoded_hits").map_or(0, |v| v as u64),
            shard: json_num_field(line, "shard").map_or(0, |v| v as u64),
            epoch: json_num_field(line, "epoch").map_or(0, |v| v as u64),
        })
    }
}

/// One simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Network to simulate.
    pub network: Network,
    /// Neuron representation.
    pub repr: Representation,
    /// Engine label from [`engine_labels`], e.g. `"PRA-2b"`.
    pub engine: String,
    /// Workload generation seed.
    pub seed: u64,
    /// Negotiated wire version: 1 (default) for one monolithic
    /// response, 2 to opt into streamed `layer_result` frames and a
    /// terminal `done` frame. Anything else is rejected at parse.
    pub v: u32,
}

/// The engine a request resolves to.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The bit-parallel DaDianNao baseline.
    DaDn,
    /// The serialized-precision Stripes baseline.
    Stripes,
    /// A Pragmatic design point from the standard sweep set.
    Pra(PraConfig),
}

impl Engine {
    /// Resolves a wire label against the standard engine set for
    /// `repr`, at the given fidelity. `None` for unknown labels.
    pub fn from_label(label: &str, repr: Representation, fidelity: Fidelity) -> Option<Engine> {
        match label {
            "DaDN" => Some(Engine::DaDn),
            "Stripes" => Some(Engine::Stripes),
            _ => pra_bench::sweep::pra_configs(repr, fidelity)
                .into_iter()
                .find(|c| c.label() == label)
                .map(Engine::Pra),
        }
    }

    /// The mask-encoding slice this engine's artifacts depend on. The
    /// value-blind baselines have no mask buffer of their own, so they
    /// coalesce with the standard oneffset encoding group.
    pub fn encoding_key(&self) -> EncodingKey {
        match self {
            Engine::Pra(cfg) => cfg.encoding_key(),
            _ => PraConfig::default().encoding_key(),
        }
    }
}

/// Every engine label the service accepts for `repr`, in the sweep's
/// row order — the request mix generator and docs both read this.
pub fn engine_labels(repr: Representation) -> Vec<String> {
    pra_bench::sweep::engine_labels(repr)
}

/// Short, wire-stable label for a representation.
pub fn repr_label(repr: Representation) -> &'static str {
    pra_bench::sweep::repr_label(repr)
}

fn parse_repr(label: &str) -> Option<Representation> {
    match label {
        "fp16" => Some(Representation::Fixed16),
        "quant8" => Some(Representation::Quant8),
        _ => None,
    }
}

fn parse_network(name: &str) -> Option<Network> {
    Network::ALL.into_iter().find(|n| n.name().eq_ignore_ascii_case(name))
}

impl Request {
    /// Parses one request line. The engine label is validated against
    /// the standard set so a typo is rejected at admission, not after
    /// the batch already formed.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the missing or invalid field and
    /// carrying the offending line.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let id = request_id(line)?;
        let net_name = json_str_field(line, "network")
            .ok_or_else(|| ParseError::new("missing \"network\"", line))?;
        let network = parse_network(&net_name)
            .ok_or_else(|| ParseError::new(format!("unknown network '{net_name}'"), line))?;
        let repr_name = json_str_field(line, "repr")
            .ok_or_else(|| ParseError::new("missing \"repr\"", line))?;
        let repr = parse_repr(&repr_name).ok_or_else(|| {
            ParseError::new(format!("unknown repr '{repr_name}' (fp16 | quant8)"), line)
        })?;
        let engine = json_str_field(line, "engine")
            .ok_or_else(|| ParseError::new("missing \"engine\"", line))?;
        if Engine::from_label(&engine, repr, Fidelity::Full).is_none() {
            return Err(ParseError::new(
                format!("unknown engine '{engine}' (one of: {})", engine_labels(repr).join(", ")),
                line,
            ));
        }
        let seed = match json_str_field(line, "seed") {
            Some(s) => parse_seed(&s)
                .ok_or_else(|| ParseError::new(format!("invalid seed '{s}'"), line))?,
            None => pra_bench::SEED,
        };
        let v = if line.contains("\"v\":") {
            match json_u64_field(line, "v") {
                Some(v @ (1 | 2)) => v as u32,
                _ => {
                    return Err(ParseError::new(
                        "invalid \"v\" (supported protocol versions: 1, 2)",
                        line,
                    ))
                }
            }
        } else {
            1
        };
        Ok(Request { id, network, repr, engine, seed, v })
    }

    /// Renders the request as one JSON line (no trailing newline).
    /// A v1 request renders byte-identically to every prior release;
    /// the `"v"` field appears only when the request opts into v2.
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"id\": {}, \"network\": {}, \"repr\": {}, \"engine\": {}, \"seed\": \"{:#x}\"",
            self.id,
            pra_bench::report::json_string(self.network.name()),
            pra_bench::report::json_string(repr_label(self.repr)),
            pra_bench::report::json_string(&self.engine),
            self.seed,
        );
        if self.v == 2 {
            line.push_str(", \"v\": 2");
        }
        line.push('}');
        line
    }
}

/// Per-request latency split, all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySplit {
    /// Submission to joining a forming batch (queue wait).
    pub enqueue_ms: f64,
    /// Joining the batch to the batch sealing (linger / fill wait).
    pub batch_ms: f64,
    /// Batch sealing to the response being ready (workload sourcing,
    /// shared-artifact build and simulation).
    pub sim_ms: f64,
    /// Submission to response — the client-visible service latency.
    pub total_ms: f64,
}

/// One simulation response (or, under protocol v2, one response frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was simulated.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Echoed workload/engine naming.
        network: String,
        /// Echoed representation label.
        repr: String,
        /// Echoed engine label.
        engine: String,
        /// Echoed seed.
        seed: u64,
        /// Total cycles over the convolutional stack.
        cycles: u64,
        /// Total effectual terms processed.
        terms: u64,
        /// Speedup over the DaDN baseline of the same workload.
        speedup: f64,
        /// Hex SHA-256 over the simulation-determined fields — identical
        /// across worker counts, batch sizes and batch compositions.
        digest: String,
        /// How many requests the batch this one rode in held.
        batch_size: usize,
        /// Latency accounting.
        latency: LatencySplit,
    },
    /// The request was refused at admission.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Why it was refused.
        reason: ShedReason,
    },
    /// The request could not be parsed or simulated.
    Error {
        /// Echoed request id (0 when the line had no readable id).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// The request line was rejected *and* carried no trustworthy
    /// numeric id, so the raw id text is echoed back as a JSON string.
    /// This keeps two concurrent malformed lines from colliding on a
    /// fabricated numeric id (the pre-v1.1 behavior defaulted to 0,
    /// which could impersonate a real request using id 0).
    MalformedId {
        /// The raw id token exactly as it appeared on the wire
        /// (`"<missing>"` when the line had no id field at all).
        raw_id: String,
        /// What went wrong.
        message: String,
    },
    /// A v2 progress frame: the batch's lead engine finished simulating
    /// one more layer. Progress-only — it carries *cumulative* lead
    /// cycle/term totals for observability, but no digest-relevant
    /// payload (the digest covers the terminal result, which the `done`
    /// frame delivers in full).
    LayerResult {
        /// Echoed request id.
        id: u64,
        /// Zero-based index of the layer that just finished.
        layer: usize,
        /// Total layers in the workload (so clients can render
        /// progress without knowing the network).
        layers: usize,
        /// Cumulative lead-engine cycles through this layer.
        cycles: u64,
        /// Cumulative lead-engine effectual terms through this layer.
        terms: u64,
    },
    /// The v2 terminal frame. Its `payload` carries the complete v1
    /// response line (JSON-escaped), so concatenating a v2 exchange's
    /// digest-relevant payloads reproduces the v1 bytes exactly — the
    /// golden digest gates both wire versions with one pin.
    Done {
        /// Echoed request id.
        id: u64,
        /// How many `layer_result` frames preceded this one.
        frames: usize,
        /// The terminal v1 response ([`Response::Ok`] or
        /// [`Response::Error`]) the payload encodes.
        inner: Box<Response>,
    },
}

/// The canonical digest of a simulated response: everything the
/// simulator determines, nothing scheduling determines. Timing fields
/// and `batch_size` are deliberately excluded — batch composition is a
/// scheduling artifact, and the acceptance gate requires byte-identical
/// digests across worker counts and batch sizes.
pub fn response_digest(
    network: &str,
    repr: &str,
    engine: &str,
    seed: u64,
    cycles: u64,
    terms: u64,
    speedup: f64,
) -> String {
    let canon = format!(
        "pra-serve-v{PROTOCOL_VERSION}|{network}|{repr}|{engine}|{seed:#018x}|{cycles}|{terms}|{speedup:.4}"
    );
    hex(&sha256(canon.as_bytes()))
}

impl Response {
    /// The echoed request id, whatever the outcome. A
    /// [`Response::MalformedId`] has no numeric id by definition and
    /// answers 0 here; callers that must not conflate it with a real
    /// id 0 should match the variant instead.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. }
            | Response::Shed { id, .. }
            | Response::Error { id, .. }
            | Response::LayerResult { id, .. }
            | Response::Done { id, .. } => *id,
            Response::MalformedId { .. } => 0,
        }
    }

    /// `true` for the per-request *terminal* frame: everything except
    /// [`Response::LayerResult`]. The front end uses this to keep its
    /// in-flight accounting; the router uses it to claim ledger
    /// entries only on completion.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::LayerResult { .. })
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use pra_bench::report::json_string as js;
        match self {
            Response::Ok {
                id,
                network,
                repr,
                engine,
                seed,
                cycles,
                terms,
                speedup,
                digest,
                batch_size,
                latency,
            } => format!(
                "{{\"id\": {id}, \"status\": \"ok\", \"network\": {}, \"repr\": {}, \"engine\": {}, \
                 \"seed\": \"{seed:#x}\", \"cycles\": {cycles}, \"terms\": {terms}, \
                 \"speedup\": {speedup:.4}, \"digest\": {}, \"batch_size\": {batch_size}, \
                 \"enqueue_ms\": {:.3}, \"batch_ms\": {:.3}, \"sim_ms\": {:.3}, \"total_ms\": {:.3}}}",
                js(network),
                js(repr),
                js(engine),
                js(digest),
                latency.enqueue_ms,
                latency.batch_ms,
                latency.sim_ms,
                latency.total_ms,
            ),
            Response::Shed { id, reason } => {
                format!("{{\"id\": {id}, \"status\": \"shed\", \"reason\": {}}}", js(reason.label()))
            }
            Response::Error { id, message } => {
                format!("{{\"id\": {id}, \"status\": \"error\", \"message\": {}}}", js(message))
            }
            Response::MalformedId { raw_id, message } => {
                // The id is a JSON *string* here — the one response
                // shape where it is not a number — so the client can
                // tell "your id was unusable" from "request 0 failed".
                format!(
                    "{{\"id\": {}, \"status\": \"error\", \"message\": {}}}",
                    js(raw_id),
                    js(message)
                )
            }
            Response::LayerResult { id, layer, layers, cycles, terms } => format!(
                "{{\"id\": {id}, \"status\": \"layer_result\", \"layer\": {layer}, \
                 \"layers\": {layers}, \"cycles\": {cycles}, \"terms\": {terms}}}"
            ),
            Response::Done { id, frames, inner } => format!(
                "{{\"id\": {id}, \"status\": \"done\", \"frames\": {frames}, \"payload\": {}}}",
                js(&inner.to_json_line())
            ),
        }
    }

    /// Parses one response line (the client side of [`to_json_line`]).
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the missing or invalid field and
    /// carrying the offending line — nothing is silently defaulted.
    pub fn parse(line: &str) -> Result<Response, ParseError> {
        let status = json_str_field(line, "status")
            .ok_or_else(|| ParseError::new("missing response \"status\"", line))?;
        match status.as_str() {
            "ok" => {
                let id = request_id(line)?;
                let num = |k: &str| {
                    json_num_field(line, k).ok_or_else(|| {
                        ParseError::new(format!("ok response missing \"{k}\""), line)
                    })
                };
                let s = |k: &str| {
                    json_str_field(line, k).ok_or_else(|| {
                        ParseError::new(format!("ok response missing \"{k}\""), line)
                    })
                };
                Ok(Response::Ok {
                    id,
                    network: s("network")?,
                    repr: s("repr")?,
                    engine: s("engine")?,
                    seed: parse_seed(&s("seed")?)
                        .ok_or_else(|| ParseError::new("invalid seed in response", line))?,
                    cycles: num("cycles")? as u64,
                    terms: num("terms")? as u64,
                    speedup: num("speedup")?,
                    digest: s("digest")?,
                    batch_size: num("batch_size")? as usize,
                    latency: LatencySplit {
                        enqueue_ms: num("enqueue_ms")?,
                        batch_ms: num("batch_ms")?,
                        sim_ms: num("sim_ms")?,
                        total_ms: num("total_ms")?,
                    },
                })
            }
            "shed" => {
                let id = request_id(line)?;
                let label = json_str_field(line, "reason")
                    .ok_or_else(|| ParseError::new("shed response missing \"reason\"", line))?;
                let reason = ShedReason::from_label(&label).ok_or_else(|| {
                    ParseError::new(format!("unknown shed reason '{label}'"), line)
                })?;
                Ok(Response::Shed { id, reason })
            }
            "layer_result" => {
                let id = request_id(line)?;
                let u = |k: &str| {
                    json_u64_field(line, k).ok_or_else(|| {
                        ParseError::new(format!("layer_result missing \"{k}\""), line)
                    })
                };
                Ok(Response::LayerResult {
                    id,
                    layer: u("layer")? as usize,
                    layers: u("layers")? as usize,
                    cycles: u("cycles")?,
                    terms: u("terms")?,
                })
            }
            "done" => {
                let id = request_id(line)?;
                let frames = json_u64_field(line, "frames")
                    .ok_or_else(|| ParseError::new("done frame missing \"frames\"", line))?
                    as usize;
                let payload = json_str_field(line, "payload")
                    .ok_or_else(|| ParseError::new("done frame missing \"payload\"", line))?;
                let inner = Response::parse(&payload)?;
                if matches!(inner, Response::LayerResult { .. } | Response::Done { .. }) {
                    return Err(ParseError::new(
                        "done payload must be a terminal v1 response",
                        line,
                    ));
                }
                Ok(Response::Done { id, frames, inner: Box::new(inner) })
            }
            "error" => {
                let message = json_str_field(line, "message")
                    .ok_or_else(|| ParseError::new("error response missing \"message\"", line))?;
                // A string-typed id marks the malformed-id shape (a
                // numeric id never renders with quotes).
                match json_str_field(line, "id") {
                    Some(raw_id) => Ok(Response::MalformedId { raw_id, message }),
                    None => Ok(Response::Error { id: request_id(line)?, message }),
                }
            }
            other => {
                Err(ParseError::new(format!("unrecognized response status \"{other}\""), line))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request {
            id: 7,
            network: Network::GoogLeNet,
            repr: Representation::Quant8,
            engine: "PRA-2b-1R".to_string(),
            seed: 0xDEAD_BEEF,
            v: 1,
        };
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn v1_request_line_has_no_version_field() {
        let req = Request {
            id: 3,
            network: Network::NiN,
            repr: Representation::Fixed16,
            engine: "DaDN".to_string(),
            seed: 0x1,
            v: 1,
        };
        let line = req.to_json_line();
        assert!(!line.contains("\"v\""), "v1 request bytes must be unchanged: {line}");
        assert_eq!(
            line,
            "{\"id\": 3, \"network\": \"NiN\", \"repr\": \"fp16\", \
             \"engine\": \"DaDN\", \"seed\": \"0x1\"}"
        );
    }

    #[test]
    fn v2_negotiation_round_trips_and_rejects_unknown_versions() {
        let req = Request {
            id: 9,
            network: Network::AlexNet,
            repr: Representation::Fixed16,
            engine: "PRA-2b".to_string(),
            seed: 0x7,
            v: 2,
        };
        let line = req.to_json_line();
        assert!(line.ends_with(", \"v\": 2}"), "{line}");
        assert_eq!(Request::parse(&line).unwrap(), req);
        // Explicit v1 parses like an absent field.
        let v1 = line.replace("\"v\": 2", "\"v\": 1");
        assert_eq!(Request::parse(&v1).unwrap().v, 1);
        for bad in ["\"v\": 3", "\"v\": 0", "\"v\": 1.5", "\"v\": \"two\""] {
            let mangled = line.replace("\"v\": 2", bad);
            let err = Request::parse(&mangled).unwrap_err();
            assert!(err.what.contains("\"v\""), "{bad} must be rejected: {err}");
            assert_eq!(err.line, mangled, "error carries the offending line");
        }
    }

    #[test]
    fn request_defaults_the_seed() {
        let req = Request::parse(
            "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}",
        )
        .unwrap();
        assert_eq!(req.seed, pra_bench::SEED);
        assert_eq!(req.v, 1, "absent \"v\" negotiates the monolithic protocol");
    }

    #[test]
    fn request_rejects_bad_fields() {
        let base = "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        assert!(Request::parse(base).is_ok());
        let err = Request::parse(&base.replace("NiN", "LeNet")).unwrap_err();
        assert!(err.to_string().contains("network"));
        assert!(err.line.contains("LeNet"), "typed error carries the offending line");
        assert!(Request::parse(&base.replace("fp16", "fp32"))
            .unwrap_err()
            .to_string()
            .contains("repr"));
        assert!(Request::parse(&base.replace("DaDN", "TPU"))
            .unwrap_err()
            .to_string()
            .contains("engine"));
        assert!(Request::parse("{\"network\": \"NiN\"}").unwrap_err().to_string().contains("id"));
    }

    #[test]
    fn every_standard_engine_label_resolves() {
        for repr in [Representation::Fixed16, Representation::Quant8] {
            for label in engine_labels(repr) {
                assert!(
                    Engine::from_label(&label, repr, Fidelity::Full).is_some(),
                    "label {label} must resolve"
                );
            }
        }
        assert!(Engine::from_label("PRA-9b", Representation::Fixed16, Fidelity::Full).is_none());
    }

    fn ok_response() -> Response {
        Response::Ok {
            id: 42,
            network: "Alexnet".to_string(),
            repr: "fp16".to_string(),
            engine: "PRA-2b".to_string(),
            seed: 0x90AD,
            cycles: 123_456,
            terms: 789,
            speedup: 2.5901,
            digest: "abc123".to_string(),
            batch_size: 8,
            latency: LatencySplit {
                enqueue_ms: 0.5,
                batch_ms: 1.25,
                sim_ms: 30.0,
                total_ms: 31.75,
            },
        }
    }

    #[test]
    fn ok_response_round_trips() {
        let resp = ok_response();
        assert_eq!(Response::parse(&resp.to_json_line()).unwrap(), resp);
        let shed = Response::Shed { id: 9, reason: ShedReason::QueueFull };
        assert_eq!(Response::parse(&shed.to_json_line()).unwrap(), shed);
        let err = Response::Error { id: 3, message: "bad \"quote\"".to_string() };
        assert_eq!(Response::parse(&err.to_json_line()).unwrap(), err);
    }

    #[test]
    fn layer_result_frames_round_trip() {
        let frame = Response::LayerResult { id: 7, layer: 3, layers: 11, cycles: 900, terms: 80 };
        let line = frame.to_json_line();
        assert!(line.contains("\"status\": \"layer_result\""), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), frame);
        assert_eq!(frame.id(), 7);
        assert!(!frame.is_terminal(), "progress frames never complete a request");
        // Every field is required — no silent defaults.
        for key in ["layer", "layers", "cycles", "terms"] {
            let mangled = line.replace(&format!("\"{key}\":"), "\"x\":");
            let err = Response::parse(&mangled).unwrap_err();
            assert!(err.what.contains(key), "missing {key} must be typed: {err}");
        }
    }

    #[test]
    fn done_frame_payload_reproduces_the_v1_bytes() {
        let inner = ok_response();
        let v1_line = inner.to_json_line();
        let done = Response::Done { id: 42, frames: 5, inner: Box::new(inner) };
        let line = done.to_json_line();
        assert!(line.contains("\"status\": \"done\""), "{line}");
        let parsed = Response::parse(&line).unwrap();
        assert_eq!(parsed, done);
        assert!(done.is_terminal());
        // The digest-relevant payload is byte-identical to v1.
        let Response::Done { inner, .. } = parsed else { unreachable!("just matched done") };
        assert_eq!(inner.to_json_line(), v1_line);
        // A done frame can carry an error terminal, but never a frame.
        let err_done = Response::Done {
            id: 8,
            frames: 0,
            inner: Box::new(Response::Error { id: 8, message: "λ boom\n".to_string() }),
        };
        assert_eq!(Response::parse(&err_done.to_json_line()).unwrap(), err_done);
        let nested = Response::Done { id: 1, frames: 1, inner: Box::new(err_done.clone()) };
        assert!(Response::parse(&nested.to_json_line()).unwrap_err().what.contains("terminal"));
    }

    #[test]
    fn response_parse_failures_are_typed_and_carry_the_line() {
        // Missing id no longer defaults to 0.
        let no_id = "{\"status\": \"shed\", \"reason\": \"queue_full\"}";
        let err = Response::parse(no_id).unwrap_err();
        assert!(err.what.contains("id"), "{err}");
        assert_eq!(err.line, no_id);
        // Unknown shed reasons no longer collapse into queue_full.
        let bad_reason = "{\"id\": 1, \"status\": \"shed\", \"reason\": \"cosmic_rays\"}";
        assert!(Response::parse(bad_reason).unwrap_err().what.contains("cosmic_rays"));
        // Error responses must carry a message.
        let no_msg = "{\"id\": 1, \"status\": \"error\"}";
        assert!(Response::parse(no_msg).unwrap_err().what.contains("message"));
        // And a status is required at all.
        assert!(Response::parse("{\"id\": 1}").unwrap_err().what.contains("status"));
    }

    #[test]
    fn digest_ignores_scheduling_but_not_results() {
        let d = |cycles, speedup| {
            response_digest("Alexnet", "fp16", "PRA-2b", 0x90AD, cycles, 7, speedup)
        };
        assert_eq!(d(100, 2.0), d(100, 2.0), "digest must be deterministic");
        assert_ne!(d(100, 2.0), d(101, 2.0), "cycles must change the digest");
        assert_ne!(d(100, 2.0), d(100, 2.5), "speedup must change the digest");
    }

    #[test]
    fn huge_or_malformed_ids_are_rejected_with_raw_text() {
        // 2⁶⁴ — one past u64::MAX. The old f64 path silently cast this
        // (and any other unparsable id) to something wrong.
        let huge = "{\"id\": 18446744073709551616, \"network\": \"NiN\", \
                    \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        let err = Request::parse(huge).unwrap_err();
        assert!(err.to_string().contains("18446744073709551616"), "raw id text preserved: {err}");
        let float = huge.replace("18446744073709551616", "1.5");
        assert!(Request::parse(&float).unwrap_err().to_string().contains("'1.5'"));
        let neg = huge.replace("18446744073709551616", "-3");
        assert!(Request::parse(&neg).unwrap_err().to_string().contains("'-3'"));
        assert!(request_id("{\"network\": \"NiN\"}").unwrap_err().to_string().contains("id"));
        // u64::MAX itself is a legal id.
        assert_eq!(request_id("{\"id\": 18446744073709551615}").unwrap(), u64::MAX);
    }

    #[test]
    fn control_requests_round_trip_and_do_not_shadow_requests() {
        for ctl in [ControlRequest::Stats, ControlRequest::Drain] {
            assert_eq!(ControlRequest::parse(&ctl.to_json_line()), Some(ctl));
        }
        let req = "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        assert_eq!(ControlRequest::parse(req), None);
        assert_eq!(ControlRequest::parse("{\"ctl\": \"reboot\"}"), None);
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let snap = StatsSnapshot {
            accepted: 10,
            shed: 2,
            batches: 4,
            answered: 8,
            pool_hits: 3,
            live_connections: 1,
            connections_shed: 5,
            worker_restarts: 1,
            deadline_expired: 2,
            encode_ms: 120,
            encoded_hits: 6,
            shard: 3,
            epoch: 4,
        };
        assert_eq!(StatsSnapshot::parse(&snap.to_json_line()).unwrap(), snap);
        let err = StatsSnapshot::parse("{\"status\": \"ok\"}").unwrap_err();
        assert_eq!(err.line, "{\"status\": \"ok\"}", "typed error carries the line");
        // A stats line missing a counter is a typed error, not a zero.
        let truncated = snap.to_json_line().replace("\"batches\": 4, ", "");
        assert!(StatsSnapshot::parse(&truncated).unwrap_err().what.contains("batches"));
        // Snapshots from before a counter shipped parse it as 0 —
        // shard/epoch (pre-cluster) and the encode-phase counters
        // (pre-tiered-store) alike.
        let legacy = StatsSnapshot { encode_ms: 0, encoded_hits: 0, shard: 0, epoch: 0, ..snap };
        let line = snap
            .to_json_line()
            .replace(", \"encode_ms\": 120, \"encoded_hits\": 6", "")
            .replace(", \"shard\": 3, \"epoch\": 4", "");
        assert_eq!(StatsSnapshot::parse(&line).unwrap(), legacy);
    }

    #[test]
    fn every_shed_reason_round_trips_with_retryability() {
        for reason in [
            ShedReason::QueueFull,
            ShedReason::ShuttingDown,
            ShedReason::Overloaded,
            ShedReason::Deadline,
            ShedReason::WorkerLost,
            ShedReason::NoShard,
        ] {
            let shed = Response::Shed { id: 1, reason };
            assert_eq!(Response::parse(&shed.to_json_line()).unwrap(), shed);
            assert_eq!(ShedReason::from_label(reason.label()), Some(reason));
            assert_eq!(reason.retryable(), reason != ShedReason::ShuttingDown);
        }
    }

    #[test]
    fn malformed_id_echoes_raw_text_and_round_trips() {
        let resp =
            Response::MalformedId { raw_id: "1.5".to_string(), message: "bad id".to_string() };
        let line = resp.to_json_line();
        assert!(line.contains("\"id\": \"1.5\""), "raw id renders as a JSON string: {line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
        assert_eq!(resp.id(), 0, "no numeric id to echo");
        // A numeric-id error still parses as the plain Error variant.
        let err = Response::Error { id: 3, message: "boom".to_string() };
        assert_eq!(Response::parse(&err.to_json_line()).unwrap(), err);
        // Two concurrent malformed lines stay distinguishable.
        let other =
            Response::MalformedId { raw_id: "-7".to_string(), message: "bad id".to_string() };
        assert_ne!(resp.to_json_line(), other.to_json_line());
    }
}
