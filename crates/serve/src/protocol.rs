//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! The serving front end speaks JSON-lines over a plain TCP stream (or
//! any other line-oriented byte pipe): one request per line in, one
//! response per line out, matched by the client-chosen `id`. Responses
//! may arrive out of request order — batching reorders freely. The
//! objects are deliberately flat so both ends can use the same tiny
//! field scanner instead of a JSON dependency (the workspace builds
//! offline; see `shims/README.md`).
//!
//! A request names a workload (`network`, `repr`, `seed`) and an engine
//! label from the standard evaluation set (`DaDN`, `Stripes`, and the
//! PRA design points of the sweep). The response carries the simulated
//! totals, a content digest over the simulation-determined fields (the
//! CI golden pins it), the batch size the request was coalesced into,
//! and the per-request latency split.

use pra_core::{EncodingKey, Fidelity, PraConfig};
use pra_workloads::cache::sha256;
use pra_workloads::{Network, Representation};

/// Version tag mixed into every response digest: bump when the digest's
/// canonical input or the simulation semantics behind it change, so a
/// stale golden fails loudly instead of comparing apples to oranges.
pub const PROTOCOL_VERSION: u32 = 1;

/// Why the service refused a request instead of simulating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was at capacity — the caller should back off
    /// and retry (classic load shedding, not an error in the request).
    QueueFull,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The connection cap was reached; this connection was refused
    /// before any request was read.
    Overloaded,
    /// The request's deadline expired before its simulation finished;
    /// answering late would be answering garbage, so it sheds instead.
    Deadline,
    /// The worker simulating this request's batch died; the supervisor
    /// answered on its behalf. Retryable — the respawned worker serves
    /// the retry.
    WorkerLost,
    /// Every shard in the request key's replica set is down; the router
    /// answered on the cluster's behalf. Retryable — health probes
    /// bring recovered shards back, so a backed-off retry can land.
    NoShard,
}

impl ShedReason {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::ShuttingDown => "shutting_down",
            ShedReason::Overloaded => "overloaded",
            ShedReason::Deadline => "deadline",
            ShedReason::WorkerLost => "worker_lost",
            ShedReason::NoShard => "no_shard",
        }
    }

    /// Whether a client should retry after backing off. Shutdown is the
    /// one reason retrying the same server cannot help with.
    pub fn retryable(&self) -> bool {
        !matches!(self, ShedReason::ShuttingDown)
    }
}

/// An out-of-band control request: not simulation work, but service
/// introspection (`stats`) and graceful shutdown (`drain`) over the
/// same wire, so operators need no side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlRequest {
    /// Snapshot the live [`StatsSnapshot`] counters.
    Stats,
    /// Stop accepting, answer everything queued, then exit `run()`
    /// (honored only by `pra serve --once`; refused otherwise).
    Drain,
}

impl ControlRequest {
    /// Recognizes a control line: `{"ctl": "stats"}` or
    /// `{"ctl": "drain"}`. `None` for ordinary request lines.
    pub fn parse(line: &str) -> Option<ControlRequest> {
        match json_str_field(line, "ctl").as_deref() {
            Some("stats") => Some(ControlRequest::Stats),
            Some("drain") => Some(ControlRequest::Drain),
            _ => None,
        }
    }

    /// Renders the control request as one JSON line.
    pub fn to_json_line(&self) -> String {
        match self {
            ControlRequest::Stats => "{\"ctl\": \"stats\"}".to_string(),
            ControlRequest::Drain => "{\"ctl\": \"drain\"}".to_string(),
        }
    }
}

/// A point-in-time copy of the service counters, as answered to a
/// `stats` control request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests shed (admission, deadline, and supervisor sheds).
    pub shed: u64,
    /// Batches simulated.
    pub batches: u64,
    /// Requests answered `ok`.
    pub answered: u64,
    /// Batches served from the artifact pool.
    pub pool_hits: u64,
    /// Connections being served right now.
    pub live_connections: u64,
    /// Connections refused at the cap with `shed:overloaded`.
    pub connections_shed: u64,
    /// Dead workers detected and respawned by the supervisor.
    pub worker_restarts: u64,
    /// Requests answered `shed:deadline` past their deadline.
    pub deadline_expired: u64,
    /// This process's shard id within a cluster (0 when standalone).
    pub shard: u64,
    /// This process's epoch — a per-boot value (the process id by
    /// default) that changes when the shard restarts, so the router's
    /// health probes can tell "same shard, rebooted" from "same shard,
    /// still up".
    pub epoch: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as one JSON line (`"status": "stats"`).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"status\": \"stats\", \"accepted\": {}, \"shed\": {}, \"batches\": {}, \
             \"answered\": {}, \"pool_hits\": {}, \"live_connections\": {}, \
             \"connections_shed\": {}, \"worker_restarts\": {}, \"deadline_expired\": {}, \
             \"shard\": {}, \"epoch\": {}}}",
            self.accepted,
            self.shed,
            self.batches,
            self.answered,
            self.pool_hits,
            self.live_connections,
            self.connections_shed,
            self.worker_restarts,
            self.deadline_expired,
            self.shard,
            self.epoch,
        )
    }

    /// Parses the client side of [`to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing field.
    pub fn parse(line: &str) -> Result<StatsSnapshot, String> {
        if json_str_field(line, "status").as_deref() != Some("stats") {
            return Err(format!("not a stats line: {line}"));
        }
        let num = |k: &str| {
            json_num_field(line, k).map(|v| v as u64).ok_or_else(|| format!("missing \"{k}\""))
        };
        Ok(StatsSnapshot {
            accepted: num("accepted")?,
            shed: num("shed")?,
            batches: num("batches")?,
            answered: num("answered")?,
            pool_hits: num("pool_hits")?,
            live_connections: num("live_connections")?,
            connections_shed: num("connections_shed")?,
            worker_restarts: num("worker_restarts")?,
            deadline_expired: num("deadline_expired")?,
            // Added after the v1 wire format shipped: default 0 so a
            // newer client can still read an older shard's snapshot.
            shard: json_num_field(line, "shard").map_or(0, |v| v as u64),
            epoch: json_num_field(line, "epoch").map_or(0, |v| v as u64),
        })
    }
}

/// One simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Network to simulate.
    pub network: Network,
    /// Neuron representation.
    pub repr: Representation,
    /// Engine label from [`engine_labels`], e.g. `"PRA-2b"`.
    pub engine: String,
    /// Workload generation seed.
    pub seed: u64,
}

/// The engine a request resolves to.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The bit-parallel DaDianNao baseline.
    DaDn,
    /// The serialized-precision Stripes baseline.
    Stripes,
    /// A Pragmatic design point from the standard sweep set.
    Pra(PraConfig),
}

impl Engine {
    /// Resolves a wire label against the standard engine set for
    /// `repr`, at the given fidelity. `None` for unknown labels.
    pub fn from_label(label: &str, repr: Representation, fidelity: Fidelity) -> Option<Engine> {
        match label {
            "DaDN" => Some(Engine::DaDn),
            "Stripes" => Some(Engine::Stripes),
            _ => pra_bench::sweep::pra_configs(repr, fidelity)
                .into_iter()
                .find(|c| c.label() == label)
                .map(Engine::Pra),
        }
    }

    /// The mask-encoding slice this engine's artifacts depend on. The
    /// value-blind baselines have no mask buffer of their own, so they
    /// coalesce with the standard oneffset encoding group.
    pub fn encoding_key(&self) -> EncodingKey {
        match self {
            Engine::Pra(cfg) => cfg.encoding_key(),
            _ => PraConfig::default().encoding_key(),
        }
    }
}

/// Every engine label the service accepts for `repr`, in the sweep's
/// row order — the request mix generator and docs both read this.
pub fn engine_labels(repr: Representation) -> Vec<String> {
    pra_bench::sweep::engine_labels(repr)
}

/// Short, wire-stable label for a representation.
pub fn repr_label(repr: Representation) -> &'static str {
    pra_bench::sweep::repr_label(repr)
}

fn parse_repr(label: &str) -> Option<Representation> {
    match label {
        "fp16" => Some(Representation::Fixed16),
        "quant8" => Some(Representation::Quant8),
        _ => None,
    }
}

fn parse_network(name: &str) -> Option<Network> {
    Network::ALL.into_iter().find(|n| n.name().eq_ignore_ascii_case(name))
}

/// Parses a seed written as decimal or `0x`-hex (underscores allowed).
pub fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        v.replace('_', "").parse().ok()
    }
}

/// Extracts the raw JSON string value following `"key":` in a flat
/// object; handles the escapes [`pra_bench::report::json_string`]
/// emits. `None` when the key is absent or not a string.
pub fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = line.get(line.find(&needle)? + needle.len()..)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the request `id` as an exact `u64`, rejecting what
/// [`json_num_field`]'s `f64` path would silently mangle: ids beyond
/// 2⁵³ lose precision in a double, negatives and floats would
/// truncate, and an absent field used to default to 0 — which made a
/// malformed line impersonate whichever real request used id 0. The
/// raw token is preserved in the error so the client can see exactly
/// what the server rejected.
///
/// # Errors
///
/// Returns a message naming the problem and quoting the raw id text.
pub fn request_id(line: &str) -> Result<u64, String> {
    let raw = raw_id_token(line).ok_or("missing numeric \"id\"")?;
    raw.parse::<u64>().map_err(|_| format!("invalid \"id\" '{raw}' (expected an integer ≤ u64)"))
}

/// The raw token following `"id":`, exactly as it appears on the wire
/// (up to the next delimiter) — what [`request_id`] parses, preserved
/// verbatim so a rejected line's error response can echo the id text
/// the client actually sent instead of fabricating a numeric id.
/// `None` when the line has no id field at all.
pub fn raw_id_token(line: &str) -> Option<String> {
    let needle = "\"id\":";
    let rest = line.find(needle).and_then(|at| line.get(at + needle.len()..))?.trim_start();
    let end =
        rest.find(|c: char| c.is_whitespace() || matches!(c, ',' | '}')).unwrap_or(rest.len());
    let raw = rest.get(..end).unwrap_or(rest);
    if raw.is_empty() {
        return None;
    }
    Some(raw.to_string())
}

/// Extracts the number following `"key":` in a flat JSON object.
pub fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = line.get(line.find(&needle)? + needle.len()..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

impl Request {
    /// Parses one request line. The engine label is validated against
    /// the standard set so a typo is rejected at admission, not after
    /// the batch already formed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the missing or invalid
    /// field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let id = request_id(line)?;
        let net_name = json_str_field(line, "network").ok_or("missing \"network\"")?;
        let network =
            parse_network(&net_name).ok_or_else(|| format!("unknown network '{net_name}'"))?;
        let repr_name = json_str_field(line, "repr").ok_or("missing \"repr\"")?;
        let repr = parse_repr(&repr_name)
            .ok_or_else(|| format!("unknown repr '{repr_name}' (fp16 | quant8)"))?;
        let engine = json_str_field(line, "engine").ok_or("missing \"engine\"")?;
        if Engine::from_label(&engine, repr, Fidelity::Full).is_none() {
            return Err(format!(
                "unknown engine '{engine}' (one of: {})",
                engine_labels(repr).join(", ")
            ));
        }
        let seed = match json_str_field(line, "seed") {
            Some(s) => parse_seed(&s).ok_or_else(|| format!("invalid seed '{s}'"))?,
            None => pra_bench::SEED,
        };
        Ok(Request { id, network, repr, engine, seed })
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"id\": {}, \"network\": {}, \"repr\": {}, \"engine\": {}, \"seed\": \"{:#x}\"}}",
            self.id,
            pra_bench::report::json_string(self.network.name()),
            pra_bench::report::json_string(repr_label(self.repr)),
            pra_bench::report::json_string(&self.engine),
            self.seed,
        )
    }
}

/// Per-request latency split, all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySplit {
    /// Submission to joining a forming batch (queue wait).
    pub enqueue_ms: f64,
    /// Joining the batch to the batch sealing (linger / fill wait).
    pub batch_ms: f64,
    /// Batch sealing to the response being ready (workload sourcing,
    /// shared-artifact build and simulation).
    pub sim_ms: f64,
    /// Submission to response — the client-visible service latency.
    pub total_ms: f64,
}

/// One simulation response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was simulated.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Echoed workload/engine naming.
        network: String,
        /// Echoed representation label.
        repr: String,
        /// Echoed engine label.
        engine: String,
        /// Echoed seed.
        seed: u64,
        /// Total cycles over the convolutional stack.
        cycles: u64,
        /// Total effectual terms processed.
        terms: u64,
        /// Speedup over the DaDN baseline of the same workload.
        speedup: f64,
        /// Hex SHA-256 over the simulation-determined fields — identical
        /// across worker counts, batch sizes and batch compositions.
        digest: String,
        /// How many requests the batch this one rode in held.
        batch_size: usize,
        /// Latency accounting.
        latency: LatencySplit,
    },
    /// The request was refused at admission.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Why it was refused.
        reason: ShedReason,
    },
    /// The request could not be parsed or simulated.
    Error {
        /// Echoed request id (0 when the line had no readable id).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// The request line was rejected *and* carried no trustworthy
    /// numeric id, so the raw id text is echoed back as a JSON string.
    /// This keeps two concurrent malformed lines from colliding on a
    /// fabricated numeric id (the pre-v1.1 behavior defaulted to 0,
    /// which could impersonate a real request using id 0).
    MalformedId {
        /// The raw id token exactly as it appeared on the wire
        /// (`"<missing>"` when the line had no id field at all).
        raw_id: String,
        /// What went wrong.
        message: String,
    },
}

/// The canonical digest of a simulated response: everything the
/// simulator determines, nothing scheduling determines. Timing fields
/// and `batch_size` are deliberately excluded — batch composition is a
/// scheduling artifact, and the acceptance gate requires byte-identical
/// digests across worker counts and batch sizes.
pub fn response_digest(
    network: &str,
    repr: &str,
    engine: &str,
    seed: u64,
    cycles: u64,
    terms: u64,
    speedup: f64,
) -> String {
    let canon = format!(
        "pra-serve-v{PROTOCOL_VERSION}|{network}|{repr}|{engine}|{seed:#018x}|{cycles}|{terms}|{speedup:.4}"
    );
    hex(&sha256(canon.as_bytes()))
}

/// Lower-case hex rendering of a digest.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl Response {
    /// The echoed request id, whatever the outcome. A
    /// [`Response::MalformedId`] has no numeric id by definition and
    /// answers 0 here; callers that must not conflate it with a real
    /// id 0 should match the variant instead.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. } | Response::Shed { id, .. } | Response::Error { id, .. } => *id,
            Response::MalformedId { .. } => 0,
        }
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use pra_bench::report::json_string as js;
        match self {
            Response::Ok {
                id,
                network,
                repr,
                engine,
                seed,
                cycles,
                terms,
                speedup,
                digest,
                batch_size,
                latency,
            } => format!(
                "{{\"id\": {id}, \"status\": \"ok\", \"network\": {}, \"repr\": {}, \"engine\": {}, \
                 \"seed\": \"{seed:#x}\", \"cycles\": {cycles}, \"terms\": {terms}, \
                 \"speedup\": {speedup:.4}, \"digest\": {}, \"batch_size\": {batch_size}, \
                 \"enqueue_ms\": {:.3}, \"batch_ms\": {:.3}, \"sim_ms\": {:.3}, \"total_ms\": {:.3}}}",
                js(network),
                js(repr),
                js(engine),
                js(digest),
                latency.enqueue_ms,
                latency.batch_ms,
                latency.sim_ms,
                latency.total_ms,
            ),
            Response::Shed { id, reason } => {
                format!("{{\"id\": {id}, \"status\": \"shed\", \"reason\": {}}}", js(reason.label()))
            }
            Response::Error { id, message } => {
                format!("{{\"id\": {id}, \"status\": \"error\", \"message\": {}}}", js(message))
            }
            Response::MalformedId { raw_id, message } => {
                // The id is a JSON *string* here — the one response
                // shape where it is not a number — so the client can
                // tell "your id was unusable" from "request 0 failed".
                format!(
                    "{{\"id\": {}, \"status\": \"error\", \"message\": {}}}",
                    js(raw_id),
                    js(message)
                )
            }
        }
    }

    /// Parses one response line (the client side of [`to_json_line`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the status is missing or fields of an
    /// `ok` response are absent.
    pub fn parse(line: &str) -> Result<Response, String> {
        let id = json_num_field(line, "id").unwrap_or(0.0) as u64;
        match json_str_field(line, "status").as_deref() {
            Some("ok") => {
                let num = |k: &str| {
                    json_num_field(line, k).ok_or_else(|| format!("ok response missing \"{k}\""))
                };
                let s = |k: &str| {
                    json_str_field(line, k).ok_or_else(|| format!("ok response missing \"{k}\""))
                };
                Ok(Response::Ok {
                    id,
                    network: s("network")?,
                    repr: s("repr")?,
                    engine: s("engine")?,
                    seed: parse_seed(&s("seed")?).ok_or("invalid seed in response")?,
                    cycles: num("cycles")? as u64,
                    terms: num("terms")? as u64,
                    speedup: num("speedup")?,
                    digest: s("digest")?,
                    batch_size: num("batch_size")? as usize,
                    latency: LatencySplit {
                        enqueue_ms: num("enqueue_ms")?,
                        batch_ms: num("batch_ms")?,
                        sim_ms: num("sim_ms")?,
                        total_ms: num("total_ms")?,
                    },
                })
            }
            Some("shed") => {
                let reason = match json_str_field(line, "reason").as_deref() {
                    Some("shutting_down") => ShedReason::ShuttingDown,
                    Some("overloaded") => ShedReason::Overloaded,
                    Some("deadline") => ShedReason::Deadline,
                    Some("worker_lost") => ShedReason::WorkerLost,
                    Some("no_shard") => ShedReason::NoShard,
                    _ => ShedReason::QueueFull,
                };
                Ok(Response::Shed { id, reason })
            }
            Some("error") => {
                let message = json_str_field(line, "message").unwrap_or_default();
                // A string-typed id marks the malformed-id shape (a
                // numeric id never renders with quotes).
                match json_str_field(line, "id") {
                    Some(raw_id) => Ok(Response::MalformedId { raw_id, message }),
                    None => Ok(Response::Error { id, message }),
                }
            }
            other => Err(format!("unrecognized response status {other:?} in: {line}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request {
            id: 7,
            network: Network::GoogLeNet,
            repr: Representation::Quant8,
            engine: "PRA-2b-1R".to_string(),
            seed: 0xDEAD_BEEF,
        };
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn request_defaults_the_seed() {
        let req = Request::parse(
            "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}",
        )
        .unwrap();
        assert_eq!(req.seed, pra_bench::SEED);
    }

    #[test]
    fn request_rejects_bad_fields() {
        let base = "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        assert!(Request::parse(base).is_ok());
        assert!(Request::parse(&base.replace("NiN", "LeNet")).unwrap_err().contains("network"));
        assert!(Request::parse(&base.replace("fp16", "fp32")).unwrap_err().contains("repr"));
        assert!(Request::parse(&base.replace("DaDN", "TPU")).unwrap_err().contains("engine"));
        assert!(Request::parse("{\"network\": \"NiN\"}").unwrap_err().contains("id"));
    }

    #[test]
    fn every_standard_engine_label_resolves() {
        for repr in [Representation::Fixed16, Representation::Quant8] {
            for label in engine_labels(repr) {
                assert!(
                    Engine::from_label(&label, repr, Fidelity::Full).is_some(),
                    "label {label} must resolve"
                );
            }
        }
        assert!(Engine::from_label("PRA-9b", Representation::Fixed16, Fidelity::Full).is_none());
    }

    #[test]
    fn ok_response_round_trips() {
        let resp = Response::Ok {
            id: 42,
            network: "Alexnet".to_string(),
            repr: "fp16".to_string(),
            engine: "PRA-2b".to_string(),
            seed: 0x90AD,
            cycles: 123_456,
            terms: 789,
            speedup: 2.5901,
            digest: "abc123".to_string(),
            batch_size: 8,
            latency: LatencySplit {
                enqueue_ms: 0.5,
                batch_ms: 1.25,
                sim_ms: 30.0,
                total_ms: 31.75,
            },
        };
        assert_eq!(Response::parse(&resp.to_json_line()).unwrap(), resp);
        let shed = Response::Shed { id: 9, reason: ShedReason::QueueFull };
        assert_eq!(Response::parse(&shed.to_json_line()).unwrap(), shed);
        let err = Response::Error { id: 3, message: "bad \"quote\"".to_string() };
        assert_eq!(Response::parse(&err.to_json_line()).unwrap(), err);
    }

    #[test]
    fn digest_ignores_scheduling_but_not_results() {
        let d = |cycles, speedup| {
            response_digest("Alexnet", "fp16", "PRA-2b", 0x90AD, cycles, 7, speedup)
        };
        assert_eq!(d(100, 2.0), d(100, 2.0), "digest must be deterministic");
        assert_ne!(d(100, 2.0), d(101, 2.0), "cycles must change the digest");
        assert_ne!(d(100, 2.0), d(100, 2.5), "speedup must change the digest");
    }

    #[test]
    fn huge_or_malformed_ids_are_rejected_with_raw_text() {
        // 2⁶⁴ — one past u64::MAX. The old f64 path silently cast this
        // (and any other unparsable id) to something wrong.
        let huge = "{\"id\": 18446744073709551616, \"network\": \"NiN\", \
                    \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        let err = Request::parse(huge).unwrap_err();
        assert!(err.contains("18446744073709551616"), "raw id text preserved: {err}");
        let float = huge.replace("18446744073709551616", "1.5");
        assert!(Request::parse(&float).unwrap_err().contains("'1.5'"));
        let neg = huge.replace("18446744073709551616", "-3");
        assert!(Request::parse(&neg).unwrap_err().contains("'-3'"));
        assert!(request_id("{\"network\": \"NiN\"}").unwrap_err().contains("id"));
        // u64::MAX itself is a legal id.
        assert_eq!(request_id("{\"id\": 18446744073709551615}").unwrap(), u64::MAX);
    }

    #[test]
    fn control_requests_round_trip_and_do_not_shadow_requests() {
        for ctl in [ControlRequest::Stats, ControlRequest::Drain] {
            assert_eq!(ControlRequest::parse(&ctl.to_json_line()), Some(ctl));
        }
        let req = "{\"id\": 1, \"network\": \"NiN\", \"repr\": \"fp16\", \"engine\": \"DaDN\"}";
        assert_eq!(ControlRequest::parse(req), None);
        assert_eq!(ControlRequest::parse("{\"ctl\": \"reboot\"}"), None);
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let snap = StatsSnapshot {
            accepted: 10,
            shed: 2,
            batches: 4,
            answered: 8,
            pool_hits: 3,
            live_connections: 1,
            connections_shed: 5,
            worker_restarts: 1,
            deadline_expired: 2,
            shard: 3,
            epoch: 4,
        };
        assert_eq!(StatsSnapshot::parse(&snap.to_json_line()).unwrap(), snap);
        assert!(StatsSnapshot::parse("{\"status\": \"ok\"}").is_err());
        // Pre-cluster snapshots carry no shard/epoch; they parse as 0.
        let legacy = StatsSnapshot { shard: 0, epoch: 0, ..snap };
        let line = snap.to_json_line().replace(", \"shard\": 3, \"epoch\": 4", "");
        assert_eq!(StatsSnapshot::parse(&line).unwrap(), legacy);
    }

    #[test]
    fn every_shed_reason_round_trips_with_retryability() {
        for reason in [
            ShedReason::QueueFull,
            ShedReason::ShuttingDown,
            ShedReason::Overloaded,
            ShedReason::Deadline,
            ShedReason::WorkerLost,
            ShedReason::NoShard,
        ] {
            let shed = Response::Shed { id: 1, reason };
            assert_eq!(Response::parse(&shed.to_json_line()).unwrap(), shed);
            assert_eq!(reason.retryable(), reason != ShedReason::ShuttingDown);
        }
    }

    #[test]
    fn malformed_id_echoes_raw_text_and_round_trips() {
        let resp =
            Response::MalformedId { raw_id: "1.5".to_string(), message: "bad id".to_string() };
        let line = resp.to_json_line();
        assert!(line.contains("\"id\": \"1.5\""), "raw id renders as a JSON string: {line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
        assert_eq!(resp.id(), 0, "no numeric id to echo");
        // A numeric-id error still parses as the plain Error variant.
        let err = Response::Error { id: 3, message: "boom".to_string() };
        assert_eq!(Response::parse(&err.to_json_line()).unwrap(), err);
        // Two concurrent malformed lines stay distinguishable.
        let other =
            Response::MalformedId { raw_id: "-7".to_string(), message: "bad id".to_string() };
        assert_ne!(resp.to_json_line(), other.to_json_line());
        assert_eq!(raw_id_token("{\"id\": 1.5e3, \"x\": 1}").as_deref(), Some("1.5e3"));
        assert_eq!(raw_id_token("{\"x\": 1}"), None);
    }

    #[test]
    fn field_scanner_handles_escapes() {
        let line = "{\"msg\": \"a\\\"b\\\\c\\nd\", \"n\": -1.5e2}";
        assert_eq!(json_str_field(line, "msg").unwrap(), "a\"b\\c\nd");
        assert_eq!(json_num_field(line, "n").unwrap(), -150.0);
        assert!(json_str_field(line, "absent").is_none());
    }
}
