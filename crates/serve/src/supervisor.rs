//! Graceful degradation for the worker pool (DESIGN.md §12): the
//! in-flight request registry and the supervisor loop that uses it.
//!
//! The registry is the exactly-once mechanism. When a worker takes a
//! batch it *registers* every member (id, response channel, deadline)
//! under its slot; from then on, **whoever removes an entry owns its
//! single answer**. The worker claims each entry as it answers; the
//! supervisor claims entries whose deadline expired (answering
//! `shed:deadline`) or whose worker died (answering
//! `shed:worker_lost`, then respawning the worker). Claims go through
//! one mutex, so a request can never be answered twice — and because a
//! worker registers *before* it can panic on the batch, a request can
//! only go unanswered if the process itself dies.
//!
//! The supervisor detects two failure shapes: **dead** workers (the
//! thread finished while the queue is still serving — only a panic
//! does that) and **wedged** workers (a batch in flight longer than
//! the wedge timeout — e.g. an injected stall; threads cannot be
//! killed, so the supervisor spawns a bounded number of supplemental
//! workers to keep the pool draining while the wedged batch ages out
//! via its deadlines).

use std::sync::mpsc::Sender;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use pra_workloads::{Network, Representation};

use crate::protocol::Response;

/// Workload identity of a slot's batch — what [`claim_dead`] hands
/// back so the service can evict suspect pooled artifacts.
pub type WorkloadId = (Network, Representation, u64);

/// One registered request: the answer this slot still owes.
#[derive(Debug)]
struct InflightEntry {
    id: u64,
    tx: Sender<Response>,
    deadline: Option<Instant>,
    /// Whether this request negotiated protocol v2 — the only entries
    /// [`InflightRegistry::on_frame`] fans `layer_result` frames to.
    stream: bool,
}

/// One worker's current batch.
#[derive(Debug, Default)]
struct Slot {
    entries: Vec<InflightEntry>,
    workload: Option<WorkloadId>,
    registered: Option<Instant>,
}

/// The in-flight table: one slot per worker, each holding the requests
/// that worker's current batch still owes answers to.
#[derive(Debug)]
pub struct InflightRegistry {
    slots: Mutex<Vec<Slot>>,
}

/// An entry claimed out of the registry: the claimer now owes exactly
/// one response on `tx`.
#[derive(Debug)]
pub struct Claimed {
    /// The request id the response must echo.
    pub id: u64,
    /// Where the one answer goes.
    pub tx: Sender<Response>,
    /// Whether the request negotiated protocol v2: its terminal
    /// response must be wrapped in a `done` frame. Progress frames are
    /// *not* the claimer's business — they go through
    /// [`InflightRegistry::on_frame`] while the entry is still owed.
    pub stream: bool,
}

impl InflightRegistry {
    /// A registry with `slots` worker slots.
    pub fn new(slots: usize) -> InflightRegistry {
        InflightRegistry { slots: Mutex::new((0..slots).map(|_| Slot::default()).collect()) }
    }

    /// Locks the table, recovering from poisoning: slot contents are
    /// plain data (no invariant spans a critical section), and the
    /// whole point of this module is to keep answering after a panic.
    fn lock(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Grows the table to at least `n` slots (supplemental workers).
    pub fn ensure_slots(&self, n: usize) {
        let mut slots = self.lock();
        while slots.len() < n {
            slots.push(Slot::default());
        }
    }

    /// Registers a batch under `slot`: every member the slot now owes
    /// an answer, plus the workload identity for pool eviction if the
    /// worker dies on it. Any leftover entries from a previous batch
    /// are returned for defensive answering (there should be none).
    pub fn begin_batch(
        &self,
        slot: usize,
        workload: WorkloadId,
        members: Vec<(u64, Sender<Response>, Option<Instant>, bool)>,
    ) -> Vec<Claimed> {
        let mut slots = self.lock();
        let Some(s) = slots.get_mut(slot) else { return Vec::new() };
        let stale = std::mem::take(&mut s.entries);
        s.entries = members
            .into_iter()
            .map(|(id, tx, deadline, stream)| InflightEntry { id, tx, deadline, stream })
            .collect();
        s.workload = Some(workload);
        s.registered = Some(Instant::now());
        stale.into_iter().map(|e| Claimed { id: e.id, tx: e.tx, stream: e.stream }).collect()
    }

    /// Claims the answer for `id` in `slot`. `None` means someone else
    /// (the deadline sweep, a reclaim) already answered it.
    pub fn claim(&self, slot: usize, id: u64) -> Option<Claimed> {
        let mut slots = self.lock();
        let s = slots.get_mut(slot)?;
        let at = s.entries.iter().position(|e| e.id == id)?;
        let e = s.entries.swap_remove(at);
        Some(Claimed { id: e.id, tx: e.tx, stream: e.stream })
    }

    /// A layer finished in `slot`'s batch: returns `(id, tx)` for
    /// every still-owed *streaming* entry (a clone of the channel —
    /// the entry stays registered; only the terminal answer claims
    /// it), and pushes every still-owed deadline in the slot out to
    /// `now + extend`. Per-frame deadline extension turns the
    /// per-request deadline into an *inactivity* deadline for v2
    /// batches: a stream that keeps producing frames is alive, however
    /// long the whole network takes, while a wedged one still expires
    /// one extension past its last frame. Entries already claimed (by
    /// the deadline sweep or a reclaim) get no frames — exactly-once
    /// stays with the claimer.
    pub fn on_frame(&self, slot: usize, extend: Option<Duration>) -> Vec<(u64, Sender<Response>)> {
        let mut slots = self.lock();
        let Some(s) = slots.get_mut(slot) else { return Vec::new() };
        if let Some(d) = extend {
            let pushed = Instant::now() + d;
            for e in s.entries.iter_mut() {
                if e.deadline.is_some() {
                    e.deadline = Some(pushed);
                }
            }
        }
        s.entries.iter().filter(|e| e.stream).map(|e| (e.id, e.tx.clone())).collect()
    }

    /// Marks `slot`'s batch finished, returning any entries nobody
    /// claimed so the caller can answer them (defense in depth — the
    /// fan-out claims every member).
    pub fn finish_batch(&self, slot: usize) -> Vec<Claimed> {
        let mut slots = self.lock();
        let Some(s) = slots.get_mut(slot) else { return Vec::new() };
        s.workload = None;
        s.registered = None;
        std::mem::take(&mut s.entries)
            .into_iter()
            .map(|e| Claimed { id: e.id, tx: e.tx, stream: e.stream })
            .collect()
    }

    /// Claims every entry whose deadline expired at `now`, across all
    /// slots — the supervisor answers each `shed:deadline`.
    pub fn claim_expired(&self, now: Instant) -> Vec<Claimed> {
        let mut out = Vec::new();
        let mut slots = self.lock();
        for s in slots.iter_mut() {
            let mut i = 0;
            while i < s.entries.len() {
                if s.entries.get(i).is_some_and(|e| e.deadline.is_some_and(|d| d <= now)) {
                    let e = s.entries.swap_remove(i);
                    out.push(Claimed { id: e.id, tx: e.tx, stream: e.stream });
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Reclaims a dead worker's slot: every still-owed answer plus the
    /// workload identity its batch was running (for pool eviction).
    pub fn claim_dead(&self, slot: usize) -> (Vec<Claimed>, Option<WorkloadId>) {
        let mut slots = self.lock();
        let Some(s) = slots.get_mut(slot) else { return (Vec::new(), None) };
        let workload = s.workload.take();
        s.registered = None;
        let owed = std::mem::take(&mut s.entries)
            .into_iter()
            .map(|e| Claimed { id: e.id, tx: e.tx, stream: e.stream })
            .collect();
        (owed, workload)
    }

    /// How long `slot`'s current batch has been in flight at `now`
    /// (`None` when idle) — the supervisor's wedge signal.
    pub fn in_flight_age(&self, slot: usize, now: Instant) -> Option<Duration> {
        let slots = self.lock();
        let s = slots.get(slot)?;
        if s.entries.is_empty() {
            return None;
        }
        s.registered.map(|r| now.saturating_duration_since(r))
    }

    /// Total still-owed answers across every slot.
    pub fn owed(&self) -> usize {
        self.lock().iter().map(|s| s.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn member(
        id: u64,
        deadline: Option<Instant>,
    ) -> (u64, Sender<Response>, Option<Instant>, bool) {
        let (tx, rx) = channel();
        std::mem::forget(rx);
        (id, tx, deadline, false)
    }

    fn streamer(
        id: u64,
        deadline: Option<Instant>,
    ) -> (u64, Sender<Response>, Option<Instant>, bool) {
        let (tx, rx) = channel();
        std::mem::forget(rx);
        (id, tx, deadline, true)
    }

    const WL: WorkloadId = (Network::AlexNet, Representation::Fixed16, 7);

    #[test]
    fn each_entry_is_claimable_exactly_once() {
        let reg = InflightRegistry::new(2);
        assert!(reg.begin_batch(0, WL, vec![member(1, None), member(2, None)]).is_empty());
        assert_eq!(reg.owed(), 2);
        assert!(reg.claim(0, 1).is_some());
        assert!(reg.claim(0, 1).is_none(), "second claim must lose");
        assert!(reg.claim(1, 2).is_none(), "wrong slot never claims");
        assert!(reg.claim(0, 2).is_some());
        assert!(reg.finish_batch(0).is_empty(), "fan-out claimed everything");
        assert_eq!(reg.owed(), 0);
    }

    #[test]
    fn expiry_sweep_claims_only_expired_entries() {
        let reg = InflightRegistry::new(1);
        let now = Instant::now();
        let _ = reg.begin_batch(
            0,
            WL,
            vec![
                member(1, Some(now - Duration::from_millis(1))),
                member(2, Some(now + Duration::from_secs(60))),
                member(3, None),
            ],
        );
        let expired = reg.claim_expired(now);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 1);
        assert!(reg.claim(0, 1).is_none(), "the sweep owns id 1's answer now");
        assert!(reg.claim(0, 2).is_some());
        assert!(reg.claim(0, 3).is_some());
    }

    #[test]
    fn dead_slot_reclaim_returns_owed_answers_and_workload() {
        let reg = InflightRegistry::new(1);
        let _ = reg.begin_batch(0, WL, vec![member(1, None), member(2, None)]);
        assert!(reg.claim(0, 1).is_some(), "worker answered one before dying");
        let (owed, workload) = reg.claim_dead(0);
        assert_eq!(owed.len(), 1);
        assert_eq!(owed[0].id, 2);
        assert_eq!(workload, Some(WL));
        assert_eq!(reg.owed(), 0);
        assert!(reg.in_flight_age(0, Instant::now()).is_none());
    }

    #[test]
    fn in_flight_age_tracks_registration_and_growth_is_monotonic() {
        let reg = InflightRegistry::new(1);
        assert!(reg.in_flight_age(0, Instant::now()).is_none(), "idle slot has no age");
        let _ = reg.begin_batch(0, WL, vec![member(1, None)]);
        let age = reg.in_flight_age(0, Instant::now() + Duration::from_millis(50));
        assert!(age.is_some_and(|a| a >= Duration::from_millis(50)));
        reg.ensure_slots(4);
        reg.ensure_slots(2);
        assert!(reg.claim(3, 9).is_none(), "new slots start empty");
        let _ = reg.begin_batch(3, WL, vec![member(9, None)]);
        assert!(reg.claim(3, 9).is_some());
    }

    #[test]
    fn frames_fan_out_to_streaming_entries_only_and_extend_deadlines() {
        let reg = InflightRegistry::new(1);
        let _ = reg.begin_batch(0, WL, vec![member(1, None), streamer(2, None), streamer(3, None)]);
        let targets = reg.on_frame(0, None);
        let ids: Vec<u64> = targets.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3], "v1 members never receive frames");
        assert_eq!(reg.owed(), 3, "frames claim nothing");
        // A claimed entry stops receiving frames: exactly-once stays
        // with whoever claimed the answer.
        let claimed = reg.claim(0, 2).expect("first claim wins");
        assert!(claimed.stream, "claim carries the negotiated version");
        assert!(!reg.claim(0, 1).expect("v1 claim").stream);
        assert_eq!(reg.on_frame(0, None).len(), 1, "only id 3 still streams");
        // Per-frame extension pushes every still-owed deadline out.
        let reg = InflightRegistry::new(1);
        let about_to_expire = Instant::now() + Duration::from_millis(1);
        let _ = reg.begin_batch(0, WL, vec![streamer(7, Some(about_to_expire)), member(8, None)]);
        let _ = reg.on_frame(0, Some(Duration::from_secs(60)));
        let late = Instant::now() + Duration::from_secs(30);
        assert!(reg.claim_expired(late).is_empty(), "frame activity defers the deadline");
        assert!(
            reg.in_flight_age(0, Instant::now()).is_some(),
            "extension leaves the wedge clock alone"
        );
        // Entries with no deadline stay deadline-free after extension.
        assert_eq!(reg.claim_expired(Instant::now() + Duration::from_secs(3600)).len(), 1);
        assert!(reg.claim(0, 8).is_some(), "deadline-free member untouched by the sweep");
    }

    #[test]
    fn stale_entries_surface_on_the_next_begin_batch() {
        let reg = InflightRegistry::new(1);
        let _ = reg.begin_batch(0, WL, vec![member(1, None)]);
        // A (hypothetical) fan-out bug left id 1 unclaimed; the next
        // batch surfaces it instead of leaking it.
        let stale = reg.begin_batch(0, WL, vec![member(2, None)]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].id, 1);
    }
}
