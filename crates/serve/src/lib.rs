//! # pra-serve — batched simulation serving
//!
//! The first *serving* subsystem of the reproduction (DESIGN.md §10):
//! a batched request path in front of the cycle simulators, matching
//! the throughput-engine framing of the Pragmatic paper — the
//! accelerator amortizes its encode/schedule work over batched
//! activation streams, and this crate amortizes the simulator's
//! equivalents (`SharedEncodedNetwork`, schedule memos, the
//! content-addressed workload cache) over batched requests.
//!
//! The pipeline is **queue → coalesce → shared-artifact batch →
//! respond**:
//!
//! * [`codec`] — the one JSON-lines codec (field extraction, string
//!   escaping, typed [`ParseError`]s carrying the offending line)
//!   shared by this crate, the router and the load generator;
//! * [`queue`] — bounded admission with typed shedding
//!   ([`ShedReason`]), and batch formation that coalesces requests
//!   agreeing on [`BatchKey`] (network geometry + representation +
//!   seed + mask-encoding slice) under a configurable batch-size cap
//!   and linger window;
//! * [`service`] — the worker pool: one workload build and one
//!   [`pra_core::SharedEncodedNetwork`] per batch, each distinct
//!   engine simulated exactly once, per-request latency split
//!   (enqueue / batch-wait / sim / total); protocol-v2 requests
//!   stream per-layer progress frames, overlapping layer *n+1*'s
//!   encoding with layer *n*'s simulation (DESIGN.md §14);
//! * [`server`] — the event-driven JSON-lines TCP front end
//!   (`pra serve`): one thread multiplexing every connection over
//!   nonblocking sockets, a bounded connection cap, and `stats` /
//!   `drain` control requests over the same wire;
//! * [`supervisor`] — the degradation machinery (DESIGN.md §12): an
//!   in-flight registry giving every admitted request exactly one
//!   answer even when its worker dies, dead-worker respawn, and
//!   per-request deadline enforcement;
//! * [`bench`] — the closed-loop load generator (`pra bench-serve`)
//!   reporting p50/p95/p99 and throughput into `bench.json`, plus the
//!   response-digest fingerprint CI pins; sheds are retried with
//!   jittered exponential backoff.
//!
//! Responses are scheduling-independent: worker count, batch size and
//! batch composition never change a single response byte (only the
//! latency fields, which are excluded from the digest). Fault
//! injection (`pra-chaos`, armed via `PRA_CHAOS`) exercises exactly
//! these guarantees in the chaos soak and the CI `chaos-smoke` gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod codec;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod supervisor;

pub use bench::{run_bench, BenchConfig, ServeMetrics};
pub use codec::ParseError;
pub use protocol::{ControlRequest, Engine, Request, Response, ShedReason, StatsSnapshot};
pub use queue::{BatchKey, RequestQueue, ServeConfig};
pub use server::Server;
pub use service::SimService;
