//! The TCP front end: JSON-lines over a plain `std::net` socket.
//!
//! No async runtime and no network dependency — consistent with the
//! workspace's offline-shims constraint. Each connection gets a reader
//! (its own thread) and one writer thread; the writer owns an mpsc
//! receiver that every in-flight request's response lands on, so
//! responses stream back as their batches complete, in completion
//! order, while the reader keeps admitting new lines. Backpressure is
//! the admission queue's job: a full queue answers `shed` immediately
//! rather than letting the connection buffer grow. The accept loop is
//! itself bounded: past [`ServeConfig::max_connections`] live
//! connections, a new connection gets one `shed:overloaded` line and a
//! clean close (and finished connection threads are reaped each accept,
//! so handles never accumulate).
//!
//! Control requests ride the same wire: `{"ctl": "stats"}` answers a
//! [`StatsSnapshot`] line on any server; `{"ctl": "drain"}` stops the
//! accept loop and drains the service, but only on a server started
//! with [`Server::run_once`] (`pra serve --once`) — an always-on server
//! refuses it with an error line, so a stray client cannot take the
//! service down.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::protocol::{raw_id_token, request_id, ControlRequest, Request, Response, ShedReason};
use crate::queue::ServeConfig;
use crate::service::SimService;

/// A bound, not-yet-serving TCP front end.
pub struct Server {
    listener: TcpListener,
    svc: Arc<SimService>,
}

/// Shared accept-loop state a connection handler can reach: the drain
/// flag and how to wake the accept loop so it notices the flag.
struct ServerCtl {
    /// `true` once a drain was accepted; the accept loop exits on it.
    draining: AtomicBool,
    /// Whether this server honors `{"ctl": "drain"}`.
    once: bool,
    /// The bound address — a drain wakes the blocking `accept` by
    /// making one throwaway connection to it.
    addr: SocketAddr,
    /// Live connection streams by accept serial, registered by the
    /// accept loop and deregistered by each handler on exit — the
    /// chaos `shard-kill` site severs them all at once.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
}

impl ServerCtl {
    /// Locks the connection table, recovering from poisoning: stream
    /// handles are plain data and the kill path must keep working
    /// after any panic.
    fn lock_conns(&self) -> MutexGuard<'_, BTreeMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Abrupt shard death (the chaos `shard-kill` site): stop
    /// accepting and sever every live connection mid-stream — clients
    /// see an EOF/reset with responses still owed, which is exactly
    /// the signal the router's failover turns into a re-issue on the
    /// fallback shard. The caller aborts the service queue itself.
    fn kill(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let conns = std::mem::take(&mut *self.lock_conns());
        for stream in conns.into_values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Wake the blocking accept so it observes the drain flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and starts the worker pool, but does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let svc = Arc::new(SimService::start(cfg));
        Ok(Server { listener, svc })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying service (stats, config).
    pub fn service(&self) -> &Arc<SimService> {
        &self.svc
    }

    /// Accepts connections forever (until the process exits or the
    /// listener errors). Each connection is served on its own thread;
    /// `{"ctl": "drain"}` is refused.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<()> {
        self.serve(false)
    }

    /// Like [`Server::run`], but honors `{"ctl": "drain"}`: on drain
    /// the accept loop stops, open connections finish, the service
    /// drains its queue, and this returns — the `pra serve --once`
    /// mode CI scripts use for a start-load-stop cycle.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run_once(self) -> std::io::Result<()> {
        self.serve(true)
    }

    fn serve(self, once: bool) -> std::io::Result<()> {
        let ctl = Arc::new(ServerCtl {
            draining: AtomicBool::new(false),
            once,
            addr: self.local_addr()?,
            conns: Mutex::new(BTreeMap::new()),
        });
        let max_connections = self.svc.config().max_connections.max(1) as u64;
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        let mut conn_serial: u64 = 0;
        for stream in self.listener.incoming() {
            if ctl.draining.load(Ordering::SeqCst) {
                // The wake-up connection (or any later one) lands here;
                // it gets a clean close without a handler.
                break;
            }
            let stream = stream?;
            // Reap finished handlers so the handle list stays bounded by
            // the live-connection cap instead of growing per connection.
            let mut live_handles = Vec::with_capacity(handles.len());
            for h in handles {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live_handles.push(h);
                }
            }
            handles = live_handles;

            // relaxed-ok: admission gauge; the only writer that matters
            // for the cap is this accept thread, handlers only decrement.
            let live = self.svc.stats().live_connections.load(Ordering::Relaxed);
            if live >= max_connections {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                self.svc.stats().connections_shed.fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let line = Response::Shed { id: 0, reason: ShedReason::Overloaded }.to_json_line();
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                continue; // dropping the stream closes it
            }

            // relaxed-ok: admission gauge (see the load above).
            self.svc.stats().live_connections.fetch_add(1, Ordering::Relaxed);
            conn_serial += 1;
            let serial = conn_serial;
            if let Ok(clone) = stream.try_clone() {
                ctl.lock_conns().insert(serial, clone);
            }
            let svc = Arc::clone(&self.svc);
            let ctl = Arc::clone(&ctl);
            handles.push(std::thread::spawn(move || {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "<unknown>".to_string());
                if let Err(e) = handle_connection(stream, &svc, &ctl) {
                    eprintln!("pra-serve: connection {peer}: {e}");
                }
                ctl.lock_conns().remove(&serial);
                // relaxed-ok: admission gauge (see the load above).
                svc.stats().live_connections.fetch_sub(1, Ordering::Relaxed);
            }));
        }
        // Draining: let open connections finish, then drain the queue so
        // every admitted request is answered before this returns.
        for h in handles {
            let _ = h.join();
        }
        self.svc.begin_shutdown();
        match Arc::try_unwrap(self.svc) {
            Ok(svc) => svc.shutdown(),
            // A caller still holds the service (stats inspection); the
            // queue is closed, so workers drain and join on its drop.
            Err(_svc) => {}
        }
        Ok(())
    }
}

/// The shared write half: the writer thread streams simulation
/// responses from the channel, while the reader interleaves whole
/// control-response lines under the same lock.
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// Writes one line (plus newline) and flushes. The chaos `sock-stall` /
/// `sock-write-err` sites model a congested or failing client link.
fn write_line(out: &SharedWriter, line: &str) -> std::io::Result<()> {
    pra_chaos::stall(pra_chaos::Site::SockStall);
    if pra_chaos::fires(pra_chaos::Site::SockWriteErr) {
        return Err(std::io::Error::other(
            "chaos: injected socket write error (site sock-write-err)",
        ));
    }
    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
    g.write_all(line.as_bytes())?;
    g.write_all(b"\n")?;
    // Flush per response: latency beats syscall count here.
    g.flush()
}

/// Serves one connection: reads request lines, writes response lines.
fn handle_connection(
    stream: TcpStream,
    svc: &Arc<SimService>,
    ctl: &Arc<ServerCtl>,
) -> std::io::Result<()> {
    let out: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let (tx, rx) = channel::<Response>();
    let writer_out = Arc::clone(&out);
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        for resp in rx {
            write_line(&writer_out, &resp.to_json_line())?;
        }
        Ok(())
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if pra_chaos::fires(pra_chaos::Site::SockReadErr) {
            return Err(std::io::Error::other(
                "chaos: injected socket read error (site sock-read-err)",
            ));
        }
        if pra_chaos::fires(pra_chaos::Site::ShardKill) {
            // Abrupt shard death: discard queued work unanswered, sever
            // every live connection (including this one), stop
            // accepting. The router observes the dead connections and
            // fails the lost requests over to the fallback shard.
            svc.abort();
            ctl.kill();
            return Err(std::io::Error::other("chaos: injected shard kill (site shard-kill)"));
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(ctl_req) = ControlRequest::parse(&line) {
            let reply = match ctl_req {
                ControlRequest::Stats => svc.stats().snapshot().to_json_line(),
                ControlRequest::Drain if ctl.once => {
                    ctl.draining.store(true, Ordering::SeqCst);
                    let reply = svc.stats().snapshot().to_json_line();
                    // Wake the blocking accept so it observes the flag;
                    // the throwaway connection is closed unserved.
                    let _ = TcpStream::connect(ctl.addr);
                    reply
                }
                ControlRequest::Drain => Response::Error {
                    id: 0,
                    message: "drain refused: server is not running in --once mode".to_string(),
                }
                .to_json_line(),
            };
            write_line(&out, &reply)?;
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(req) => {
                let id = req.id;
                match svc.submit(req, tx.clone()) {
                    Ok(()) => continue,
                    Err(reason) => Response::Shed { id, reason },
                }
            }
            // A rejected line answers on its own id when one parses;
            // otherwise the raw id text is echoed back as a string
            // (`Response::MalformedId`) so two concurrent malformed
            // lines can never collide on a fabricated id 0.
            Err(message) => match request_id(&line) {
                Ok(id) => Response::Error { id, message },
                Err(_) => Response::MalformedId {
                    raw_id: raw_id_token(&line).unwrap_or_else(|| "<missing>".to_string()),
                    message,
                },
            },
        };
        if tx.send(resp).is_err() {
            break; // Writer died; no point reading further.
        }
    }
    // EOF: drop our sender so the writer drains in-flight responses and
    // exits once the last worker's clone goes away.
    drop(tx);
    writer.join().map_err(|_| std::io::Error::other("serve writer panicked"))?
}
