//! The TCP front end: JSON-lines over a plain `std::net` socket.
//!
//! No async runtime and no network dependency — consistent with the
//! workspace's offline-shims constraint. Each connection gets a reader
//! (the accept thread itself) and one writer thread; the writer owns an
//! mpsc receiver that every in-flight request's response lands on, so
//! responses stream back as their batches complete, in completion
//! order, while the reader keeps admitting new lines. Backpressure is
//! the admission queue's job: a full queue answers `shed` immediately
//! rather than letting the connection buffer grow.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::sync::Arc;

use crate::protocol::{json_num_field, Request, Response};
use crate::queue::ServeConfig;
use crate::service::SimService;

/// A bound, not-yet-serving TCP front end.
pub struct Server {
    listener: TcpListener,
    svc: Arc<SimService>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and starts the worker pool, but does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let svc = Arc::new(SimService::start(cfg));
        Ok(Server { listener, svc })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying service (stats, config).
    pub fn service(&self) -> &Arc<SimService> {
        &self.svc
    }

    /// Accepts connections forever (until the process exits or the
    /// listener errors). Each connection is served on its own thread.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let svc = Arc::clone(&self.svc);
            std::thread::spawn(move || {
                let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
                if let Err(e) = handle_connection(stream, &svc) {
                    eprintln!("pra-serve: connection {peer}: {e}");
                }
            });
        }
        Ok(())
    }
}

/// Serves one connection: reads request lines, writes response lines.
fn handle_connection(stream: TcpStream, svc: &Arc<SimService>) -> std::io::Result<()> {
    let write_half = stream.try_clone()?;
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(write_half);
        for resp in rx {
            out.write_all(resp.to_json_line().as_bytes())?;
            out.write_all(b"\n")?;
            // Flush per response: latency beats syscall count here.
            out.flush()?;
        }
        Ok(())
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(req) => {
                let id = req.id;
                match svc.submit(req, tx.clone()) {
                    Ok(()) => continue,
                    Err(reason) => Response::Shed { id, reason },
                }
            }
            Err(message) => {
                Response::Error { id: json_num_field(&line, "id").unwrap_or(0.0) as u64, message }
            }
        };
        if tx.send(resp).is_err() {
            break; // Writer died; no point reading further.
        }
    }
    // EOF: drop our sender so the writer drains in-flight responses and
    // exits once the last worker's clone goes away.
    drop(tx);
    writer.join().map_err(|_| std::io::Error::other("serve writer panicked"))?
}
