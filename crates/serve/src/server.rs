//! The TCP front end: JSON-lines over plain nonblocking `std::net`
//! sockets, driven by a single event loop.
//!
//! No async runtime and no network dependency — consistent with the
//! workspace's offline-shims constraint. Instead of the original
//! two-threads-per-connection design, one thread owns the listener and
//! every connection, and each loop tick pumps three directions per
//! connection:
//!
//! 1. **responses** — each connection holds the receiving half of its
//!    response channel; worker threads send [`Response`]s (including
//!    v2 `layer_result` frames) as batches progress, and the loop
//!    drains them into the connection's output queue without blocking;
//! 2. **writes** — queued lines move through a per-connection write
//!    buffer; a congested client gets `WouldBlock` and simply resumes
//!    next tick, so one slow reader cannot stall the other
//!    connections (the chaos `sock-stall` site is the deliberate
//!    exception: it stalls the whole loop, modeling a scheduler-level
//!    hiccup rather than one socket's congestion);
//! 3. **reads** — raw bytes accumulate in a per-connection buffer and
//!    every complete line is parsed and dispatched: requests are
//!    submitted to the [`SimService`] (backpressure is the admission
//!    queue's job — a full queue answers `shed` immediately), control
//!    requests are answered inline, malformed lines get typed error
//!    responses.
//!
//! The accept pump is bounded: past [`ServeConfig::max_connections`]
//! live connections, a new connection gets one `shed:overloaded` line
//! and a clean close. A connection closes once it reaches EOF with no
//! responses still owed and nothing left to flush — exactly the
//! one-answer-per-request discipline the registry enforces, carried
//! through to the socket.
//!
//! Control requests ride the same wire: `{"ctl": "stats"}` answers a
//! [`StatsSnapshot`] line on any server; `{"ctl": "drain"}` stops the
//! accept pump and drains the service, but only on a server started
//! with [`Server::run_once`] (`pra serve --once`) — an always-on server
//! refuses it with an error line, so a stray client cannot take the
//! service down.
//!
//! [`StatsSnapshot`]: crate::protocol::StatsSnapshot

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::codec::{raw_id_token, request_id};
use crate::protocol::{ControlRequest, Request, Response, ShedReason};
use crate::queue::ServeConfig;
use crate::service::SimService;

/// Idle back-off between event-loop ticks that made no progress: long
/// enough to keep an idle server invisible in profiles, short enough
/// that first-frame latency stays far below a layer's simulation time.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Read chunk size for the per-connection receive buffer.
const READ_CHUNK: usize = 4096;

/// A bound, not-yet-serving TCP front end.
pub struct Server {
    listener: TcpListener,
    svc: Arc<SimService>,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    peer: String,
    /// Raw received bytes not yet forming a complete line.
    rbuf: Vec<u8>,
    /// The receiving half worker threads answer into.
    rx: Receiver<Response>,
    /// The sending half cloned into every submission.
    tx: Sender<Response>,
    /// Rendered lines awaiting the write pump.
    outq: VecDeque<String>,
    /// The partially written current line (socket gave `WouldBlock`).
    wbuf: Vec<u8>,
    /// Requests admitted but not yet terminally answered. v2
    /// `layer_result` frames do not decrement this — only terminals do.
    in_flight: usize,
    /// The client half-closed; drain what is owed, then close.
    eof: bool,
    /// Fatal per-connection error; reported and reaped next tick.
    dead: Option<String>,
}

impl Conn {
    /// Whether every owed byte has been delivered and the client is
    /// done sending: the graceful-close condition.
    fn drained(&self) -> bool {
        self.eof && self.in_flight == 0 && self.outq.is_empty() && self.wbuf.is_empty()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and starts the worker pool, but does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let svc = Arc::new(SimService::start(cfg));
        Ok(Server { listener, svc })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying service (stats, config).
    pub fn service(&self) -> &Arc<SimService> {
        &self.svc
    }

    /// Serves connections forever (until the process exits or the
    /// listener errors fatally). `{"ctl": "drain"}` is refused.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<()> {
        self.serve(false)
    }

    /// Like [`Server::run`], but honors `{"ctl": "drain"}`: on drain
    /// the accept pump stops, open connections finish, the service
    /// drains its queue, and this returns — the `pra serve --once`
    /// mode CI scripts use for a start-load-stop cycle.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run_once(self) -> std::io::Result<()> {
        self.serve(true)
    }

    /// The event loop: accept, then pump responses → writes → reads on
    /// every connection, reap finished ones, sleep briefly when a tick
    /// was entirely idle.
    fn serve(self, once: bool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let max_connections = self.svc.config().max_connections.max(1) as u64;
        let mut conns: Vec<Conn> = Vec::new();
        let mut draining = false;
        loop {
            let mut progressed = false;
            if !draining {
                progressed |= self.accept_pump(max_connections, &mut conns)?;
            }

            let mut kill = false;
            for c in &mut conns {
                progressed |= pump_responses(c);
                progressed |= pump_writes(c);
                if c.dead.is_none() && !c.eof {
                    let (p, k) = pump_reads(c, &self.svc, once, &mut draining);
                    progressed |= p;
                    kill |= k;
                }
                // A request or control line may have queued output:
                // flush it this tick instead of waiting for the next.
                progressed |= pump_writes(c);
            }
            if kill {
                // Abrupt shard death (the chaos `shard-kill` site):
                // stop accepting and sever every live connection
                // mid-stream — clients see an EOF/reset with responses
                // still owed, which is exactly the signal the router's
                // failover turns into a re-issue on the fallback
                // shard. The service queue was already aborted.
                draining = true;
                for c in &mut conns {
                    if c.dead.is_none() {
                        c.dead = Some("severed: injected shard kill".to_string());
                    }
                }
            }

            conns.retain_mut(|c| {
                let done = match &c.dead {
                    Some(msg) => {
                        eprintln!("pra-serve: connection {}: {msg}", c.peer);
                        true
                    }
                    None => c.drained(),
                };
                if done {
                    let _ = c.stream.shutdown(std::net::Shutdown::Both);
                    // relaxed-ok: admission gauge; only this loop
                    // thread mutates it.
                    self.svc.stats().live_connections.fetch_sub(1, Ordering::Relaxed);
                }
                !done
            });

            if draining && conns.is_empty() {
                break;
            }
            if !progressed {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        // Draining and every connection closed: drain the queue so
        // every admitted request was answered before this returns.
        self.svc.begin_shutdown();
        match Arc::try_unwrap(self.svc) {
            Ok(svc) => svc.shutdown(),
            // A caller still holds the service (stats inspection); the
            // queue is closed, so workers drain and join on its drop.
            Err(_svc) => {}
        }
        Ok(())
    }

    /// Accepts every connection the backlog holds. Past the
    /// live-connection cap a connection gets one `shed:overloaded`
    /// line and a drop (the fresh socket is still blocking, so the
    /// single small write goes out before the close).
    fn accept_pump(&self, max_connections: u64, conns: &mut Vec<Conn>) -> std::io::Result<bool> {
        let mut progressed = false;
        loop {
            match self.listener.accept() {
                Ok((mut stream, peer)) => {
                    progressed = true;
                    // relaxed-ok: admission gauge; only this loop
                    // thread mutates it.
                    let live = self.svc.stats().live_connections.load(Ordering::Relaxed);
                    if live >= max_connections {
                        // relaxed-ok: monotonic stat counter; nothing
                        // synchronizes through it.
                        self.svc.stats().connections_shed.fetch_add(1, Ordering::Relaxed);
                        let line =
                            Response::Shed { id: 0, reason: ShedReason::Overloaded }.to_json_line();
                        let _ = stream.write_all(line.as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue; // dropping the stream closes it
                    }
                    if stream.set_nonblocking(true).is_err() {
                        // A socket the loop cannot drive without
                        // blocking is not servable; drop it.
                        continue;
                    }
                    // relaxed-ok: admission gauge (see the load above).
                    self.svc.stats().live_connections.fetch_add(1, Ordering::Relaxed);
                    let (tx, rx) = channel();
                    conns.push(Conn {
                        stream,
                        peer: peer.to_string(),
                        rbuf: Vec::new(),
                        rx,
                        tx,
                        outq: VecDeque::new(),
                        wbuf: Vec::new(),
                        in_flight: 0,
                        eof: false,
                        dead: None,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }
}

/// Drains the connection's response channel into its output queue.
/// Terminal responses settle the in-flight count; v2 `layer_result`
/// frames pass straight through — streaming is why this pump exists.
fn pump_responses(c: &mut Conn) -> bool {
    let mut progressed = false;
    // Disconnected is unreachable (the conn holds a sender); either
    // way an Err means nothing more to drain this tick.
    while let Ok(resp) = c.rx.try_recv() {
        progressed = true;
        if resp.is_terminal() {
            c.in_flight = c.in_flight.saturating_sub(1);
        }
        c.outq.push_back(resp.to_json_line());
    }
    progressed
}

/// Moves queued lines through the write buffer onto the socket,
/// stopping cleanly on `WouldBlock`. The chaos `sock-stall` /
/// `sock-write-err` sites model a congested or failing client link and
/// fire once per line, as the line enters the write buffer.
fn pump_writes(c: &mut Conn) -> bool {
    let mut progressed = false;
    while c.dead.is_none() && !(c.wbuf.is_empty() && c.outq.is_empty()) {
        if c.wbuf.is_empty() {
            let Some(line) = c.outq.pop_front() else {
                break;
            };
            pra_chaos::stall(pra_chaos::Site::SockStall);
            if pra_chaos::fires(pra_chaos::Site::SockWriteErr) {
                c.dead =
                    Some("chaos: injected socket write error (site sock-write-err)".to_string());
                break;
            }
            c.wbuf.extend_from_slice(line.as_bytes());
            c.wbuf.push(b'\n');
        }
        match c.stream.write(&c.wbuf) {
            Ok(0) => {
                c.dead = Some("socket accepted no bytes".to_string());
                break;
            }
            Ok(n) => {
                progressed = true;
                c.wbuf.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                c.dead = Some(e.to_string());
                break;
            }
        }
    }
    progressed
}

/// Reads whatever the socket holds, then dispatches every complete
/// line. Returns `(made_progress, shard_kill_fired)`; the caller
/// severs the other connections on a shard kill.
fn pump_reads(
    c: &mut Conn,
    svc: &Arc<SimService>,
    once: bool,
    draining: &mut bool,
) -> (bool, bool) {
    let mut progressed = false;
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                progressed = true;
                c.eof = true;
                break;
            }
            Ok(n) => {
                progressed = true;
                if let Some(chunk) = buf.get(..n) {
                    c.rbuf.extend_from_slice(chunk);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                c.dead = Some(e.to_string());
                return (true, false);
            }
        }
    }
    while let Some(pos) = c.rbuf.iter().position(|&b| b == b'\n') {
        progressed = true;
        let mut raw: Vec<u8> = c.rbuf.drain(..=pos).collect();
        raw.pop(); // the '\n' terminator itself
        let line = String::from_utf8_lossy(&raw);
        let line = line.strip_suffix('\r').unwrap_or(&line);
        if pra_chaos::fires(pra_chaos::Site::SockReadErr) {
            c.dead = Some("chaos: injected socket read error (site sock-read-err)".to_string());
            return (true, false);
        }
        if pra_chaos::fires(pra_chaos::Site::ShardKill) {
            // Discard queued work unanswered: the clients' connections
            // are about to be severed, so answers would go nowhere.
            svc.abort();
            c.dead = Some("chaos: injected shard kill (site shard-kill)".to_string());
            return (true, true);
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Some(ctl_req) = ControlRequest::parse(line) {
            let reply = match ctl_req {
                ControlRequest::Stats => svc.stats().snapshot().to_json_line(),
                ControlRequest::Drain if once => {
                    *draining = true;
                    svc.stats().snapshot().to_json_line()
                }
                ControlRequest::Drain => Response::Error {
                    id: 0,
                    message: "drain refused: server is not running in --once mode".to_string(),
                }
                .to_json_line(),
            };
            c.outq.push_back(reply);
            continue;
        }
        let resp = match Request::parse(line) {
            Ok(req) => {
                let id = req.id;
                match svc.submit(req, c.tx.clone()) {
                    Ok(()) => {
                        c.in_flight += 1;
                        continue;
                    }
                    Err(reason) => Response::Shed { id, reason },
                }
            }
            // A rejected line answers on its own id when one parses;
            // otherwise the raw id text is echoed back as a string
            // (`Response::MalformedId`) so two concurrent malformed
            // lines can never collide on a fabricated id 0.
            Err(e) => match request_id(line) {
                Ok(id) => Response::Error { id, message: e.to_string() },
                Err(_) => Response::MalformedId {
                    raw_id: raw_id_token(line).unwrap_or_else(|| "<missing>".to_string()),
                    message: e.to_string(),
                },
            },
        };
        c.outq.push_back(resp.to_json_line());
    }
    (progressed, false)
}
