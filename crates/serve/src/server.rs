//! The TCP front end: JSON-lines over a plain `std::net` socket.
//!
//! No async runtime and no network dependency — consistent with the
//! workspace's offline-shims constraint. Each connection gets a reader
//! (its own thread) and one writer thread; the writer owns an mpsc
//! receiver that every in-flight request's response lands on, so
//! responses stream back as their batches complete, in completion
//! order, while the reader keeps admitting new lines. Backpressure is
//! the admission queue's job: a full queue answers `shed` immediately
//! rather than letting the connection buffer grow. The accept loop is
//! itself bounded: past [`ServeConfig::max_connections`] live
//! connections, a new connection gets one `shed:overloaded` line and a
//! clean close (and finished connection threads are reaped each accept,
//! so handles never accumulate).
//!
//! Control requests ride the same wire: `{"ctl": "stats"}` answers a
//! [`StatsSnapshot`] line on any server; `{"ctl": "drain"}` stops the
//! accept loop and drains the service, but only on a server started
//! with [`Server::run_once`] (`pra serve --once`) — an always-on server
//! refuses it with an error line, so a stray client cannot take the
//! service down.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::protocol::{request_id, ControlRequest, Request, Response, ShedReason};
use crate::queue::ServeConfig;
use crate::service::SimService;

/// A bound, not-yet-serving TCP front end.
pub struct Server {
    listener: TcpListener,
    svc: Arc<SimService>,
}

/// Shared accept-loop state a connection handler can reach: the drain
/// flag and how to wake the accept loop so it notices the flag.
struct ServerCtl {
    /// `true` once a drain was accepted; the accept loop exits on it.
    draining: AtomicBool,
    /// Whether this server honors `{"ctl": "drain"}`.
    once: bool,
    /// The bound address — a drain wakes the blocking `accept` by
    /// making one throwaway connection to it.
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and starts the worker pool, but does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let svc = Arc::new(SimService::start(cfg));
        Ok(Server { listener, svc })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying service (stats, config).
    pub fn service(&self) -> &Arc<SimService> {
        &self.svc
    }

    /// Accepts connections forever (until the process exits or the
    /// listener errors). Each connection is served on its own thread;
    /// `{"ctl": "drain"}` is refused.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<()> {
        self.serve(false)
    }

    /// Like [`Server::run`], but honors `{"ctl": "drain"}`: on drain
    /// the accept loop stops, open connections finish, the service
    /// drains its queue, and this returns — the `pra serve --once`
    /// mode CI scripts use for a start-load-stop cycle.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure; per-connection I/O errors
    /// only end that connection.
    pub fn run_once(self) -> std::io::Result<()> {
        self.serve(true)
    }

    fn serve(self, once: bool) -> std::io::Result<()> {
        let ctl = Arc::new(ServerCtl {
            draining: AtomicBool::new(false),
            once,
            addr: self.local_addr()?,
        });
        let max_connections = self.svc.config().max_connections.max(1) as u64;
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if ctl.draining.load(Ordering::SeqCst) {
                // The wake-up connection (or any later one) lands here;
                // it gets a clean close without a handler.
                break;
            }
            let stream = stream?;
            // Reap finished handlers so the handle list stays bounded by
            // the live-connection cap instead of growing per connection.
            let mut live_handles = Vec::with_capacity(handles.len());
            for h in handles {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live_handles.push(h);
                }
            }
            handles = live_handles;

            // relaxed-ok: admission gauge; the only writer that matters
            // for the cap is this accept thread, handlers only decrement.
            let live = self.svc.stats().live_connections.load(Ordering::Relaxed);
            if live >= max_connections {
                // relaxed-ok: monotonic stat counter; nothing
                // synchronizes through it.
                self.svc.stats().connections_shed.fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let line = Response::Shed { id: 0, reason: ShedReason::Overloaded }.to_json_line();
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                continue; // dropping the stream closes it
            }

            // relaxed-ok: admission gauge (see the load above).
            self.svc.stats().live_connections.fetch_add(1, Ordering::Relaxed);
            let svc = Arc::clone(&self.svc);
            let ctl = Arc::clone(&ctl);
            handles.push(std::thread::spawn(move || {
                let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
                if let Err(e) = handle_connection(stream, &svc, &ctl) {
                    eprintln!("pra-serve: connection {peer}: {e}");
                }
                // relaxed-ok: admission gauge (see the load above).
                svc.stats().live_connections.fetch_sub(1, Ordering::Relaxed);
            }));
        }
        // Draining: let open connections finish, then drain the queue so
        // every admitted request is answered before this returns.
        for h in handles {
            let _ = h.join();
        }
        self.svc.begin_shutdown();
        match Arc::try_unwrap(self.svc) {
            Ok(svc) => svc.shutdown(),
            // A caller still holds the service (stats inspection); the
            // queue is closed, so workers drain and join on its drop.
            Err(_svc) => {}
        }
        Ok(())
    }
}

/// The shared write half: the writer thread streams simulation
/// responses from the channel, while the reader interleaves whole
/// control-response lines under the same lock.
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// Writes one line (plus newline) and flushes. The chaos `sock-stall` /
/// `sock-write-err` sites model a congested or failing client link.
fn write_line(out: &SharedWriter, line: &str) -> std::io::Result<()> {
    pra_chaos::stall(pra_chaos::Site::SockStall);
    if pra_chaos::fires(pra_chaos::Site::SockWriteErr) {
        return Err(std::io::Error::other(
            "chaos: injected socket write error (site sock-write-err)",
        ));
    }
    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
    g.write_all(line.as_bytes())?;
    g.write_all(b"\n")?;
    // Flush per response: latency beats syscall count here.
    g.flush()
}

/// Serves one connection: reads request lines, writes response lines.
fn handle_connection(
    stream: TcpStream,
    svc: &Arc<SimService>,
    ctl: &Arc<ServerCtl>,
) -> std::io::Result<()> {
    let out: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let (tx, rx) = channel::<Response>();
    let writer_out = Arc::clone(&out);
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        for resp in rx {
            write_line(&writer_out, &resp.to_json_line())?;
        }
        Ok(())
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if pra_chaos::fires(pra_chaos::Site::SockReadErr) {
            return Err(std::io::Error::other(
                "chaos: injected socket read error (site sock-read-err)",
            ));
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(ctl_req) = ControlRequest::parse(&line) {
            let reply = match ctl_req {
                ControlRequest::Stats => svc.stats().snapshot().to_json_line(),
                ControlRequest::Drain if ctl.once => {
                    ctl.draining.store(true, Ordering::SeqCst);
                    let reply = svc.stats().snapshot().to_json_line();
                    // Wake the blocking accept so it observes the flag;
                    // the throwaway connection is closed unserved.
                    let _ = TcpStream::connect(ctl.addr);
                    reply
                }
                ControlRequest::Drain => Response::Error {
                    id: 0,
                    message: "drain refused: server is not running in --once mode".to_string(),
                }
                .to_json_line(),
            };
            write_line(&out, &reply)?;
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(req) => {
                let id = req.id;
                match svc.submit(req, tx.clone()) {
                    Ok(()) => continue,
                    Err(reason) => Response::Shed { id, reason },
                }
            }
            // The parse error already carries the raw id text when the
            // id itself was the problem; a huge or missing id answers as
            // an explicit error on id 0, never as a silently truncated
            // id (the pre-PR-7 `as u64` bug).
            Err(message) => Response::Error { id: request_id(&line).unwrap_or(0), message },
        };
        if tx.send(resp).is_err() {
            break; // Writer died; no point reading further.
        }
    }
    // EOF: drop our sender so the writer drains in-flight responses and
    // exits once the last worker's clone goes away.
    drop(tx);
    writer.join().map_err(|_| std::io::Error::other("serve writer panicked"))?
}
