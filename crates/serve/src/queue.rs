//! The admission-controlled batch queue: bounded depth, shed on
//! overload, and compatibility-keyed batch formation with a linger
//! window.
//!
//! Admission is a single bounded FIFO guarded by one mutex: `submit`
//! either enqueues or returns a typed [`ShedReason`] immediately —
//! callers never block on a full queue, which is what keeps tail
//! latency bounded under overload (the paper's serving framing assumes
//! the accelerator is the bottleneck; the queue's job is to say "no"
//! cheaply). Workers pull *batches*: the oldest request seeds the batch
//! and fixes its [`BatchKey`]; compatible requests anywhere in the
//! queue join (the scan preserves FIFO order within a key but lets
//! other keys overtake, like any coalescing scheduler); incompatible
//! requests are never touched, so a concurrent worker can pick them up
//! while this one lingers. A batch seals when it reaches `max_batch`,
//! when the linger window expires, or when the queue closes.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use pra_core::{EncodingKey, Fidelity};
use pra_workloads::{Network, Representation};

use crate::protocol::{Engine, Request, Response, ShedReason};

/// Service-wide configuration, shared by the in-process service and the
/// TCP front end.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads pulling batches off the queue.
    pub workers: usize,
    /// Requests a batch may coalesce (1 disables batching).
    pub max_batch: usize,
    /// Queued requests beyond which `submit` sheds.
    pub queue_depth: usize,
    /// How long a non-full batch waits for compatible company before
    /// sealing. Zero seals immediately with whatever is compatible.
    pub linger: Duration,
    /// Simulation fidelity for the cycle-level engines (full by
    /// default: responses are the paper-comparable numbers).
    pub fidelity: Fidelity,
    /// The tiered artifact store batches resolve through (DESIGN.md
    /// §9, §15): workload streams, traffic tables and encoded
    /// masks/memos. `ArtifactStore::at_default().no_disk()` regenerates
    /// everything per process; results are byte-identical either way.
    pub store: pra_workloads::cache::ArtifactStore,
    /// Per-request deadline, measured from admission. Requests still
    /// unanswered when it expires are shed with
    /// [`ShedReason::Deadline`] instead of simulated; `None` disables
    /// deadline enforcement.
    pub deadline: Option<Duration>,
    /// Concurrent TCP connections the front end serves; excess
    /// connections get one `shed:overloaded` line and a clean close.
    pub max_connections: usize,
    /// How long a worker may sit on one batch before the supervisor
    /// treats it as wedged and spawns a supplemental worker (threads
    /// cannot be killed; the wedged batch ages out via deadlines).
    pub wedge_timeout: Duration,
    /// This process's shard id within a cluster (reported in stats
    /// snapshots so the router can confirm which shard answered a
    /// probe). 0 when standalone.
    pub shard: u64,
    /// This process's boot epoch (reported in stats snapshots; a
    /// change under an unchanged shard id tells the router the shard
    /// restarted and its artifact pool is cold). 0 when standalone.
    pub epoch: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_batch: 8,
            queue_depth: 128,
            linger: Duration::from_millis(2),
            fidelity: Fidelity::Full,
            store: pra_workloads::cache::ArtifactStore::at_default(),
            deadline: None,
            max_connections: 64,
            wedge_timeout: Duration::from_secs(30),
            shard: 0,
            epoch: 0,
        }
    }
}

/// The compatibility key batch formation coalesces on: requests agree
/// on the workload (network geometry + representation + seed) and on
/// the mask-encoding slice of their engine, so one
/// [`pra_core::SharedEncodedNetwork`] (and one cached workload) serves
/// the whole batch. Requests differing in any component are never
/// placed in the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Network (fixes every layer's geometry).
    pub network: Network,
    /// Neuron representation.
    pub repr: Representation,
    /// Workload generation seed.
    pub seed: u64,
    /// Mask-encoding slice of the request's engine.
    pub encoding: EncodingKey,
}

impl BatchKey {
    /// The key `req` coalesces under.
    pub fn of(req: &Request) -> BatchKey {
        let encoding = Engine::from_label(&req.engine, req.repr, Fidelity::Full)
            .map(|e| e.encoding_key())
            .unwrap_or_else(|| Engine::DaDn.encoding_key());
        BatchKey { network: req.network, repr: req.repr, seed: req.seed, encoding }
    }
}

/// A queued request: the payload, its response channel, and the
/// admission/batching timestamps the latency split is computed from.
#[derive(Debug)]
pub struct Pending {
    /// The request.
    pub req: Request,
    /// The request's compatibility key, computed once at admission —
    /// batch formation compares keys per queued request per scan, so
    /// recomputing here (engine-label resolution allocates) would sit
    /// on the hot path under the queue mutex.
    pub key: BatchKey,
    /// Where the response goes (send failures are ignored: a client
    /// that hung up simply never reads its answer).
    pub tx: Sender<Response>,
    /// When `submit` accepted the request.
    pub submitted: Instant,
    /// When the request joined a forming batch (set by `next_batch`).
    pub joined: Option<Instant>,
}

/// A sealed batch, ready to simulate.
#[derive(Debug)]
pub struct Batch {
    /// The compatibility key every member shares.
    pub key: BatchKey,
    /// The members, oldest first.
    pub requests: Vec<Pending>,
    /// When the batch sealed (simulation starts here).
    pub sealed: Instant,
}

struct Inner {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// The bounded, coalescing request queue.
pub struct RequestQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    depth: usize,
}

impl RequestQueue {
    /// Creates a queue shedding beyond `depth` queued requests.
    pub fn new(depth: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { queue: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Locks the queue state, recovering from poisoning: a worker that
    /// panicked mid-lock leaves `Inner` structurally intact (a VecDeque
    /// and a bool have no invariant a partial critical section can
    /// break), and the serve path must keep answering rather than
    /// cascade the panic through every worker.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Currently queued (not yet batched) requests.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a request, or sheds it with a typed reason. Never blocks.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] at capacity, [`ShedReason::ShuttingDown`]
    /// after [`RequestQueue::close`].
    pub fn submit(&self, req: Request, tx: Sender<Response>) -> Result<(), ShedReason> {
        let mut g = self.lock();
        if g.closed {
            return Err(ShedReason::ShuttingDown);
        }
        if g.queue.len() >= self.depth {
            return Err(ShedReason::QueueFull);
        }
        let key = BatchKey::of(&req);
        g.queue.push_back(Pending { req, key, tx, submitted: Instant::now(), joined: None });
        drop(g);
        // Wake every parked worker: a lingering worker may consume a
        // single notification meant for an idle one.
        self.available.notify_all();
        Ok(())
    }

    /// Closes the queue: pending requests still drain into batches, new
    /// submissions shed, and workers return `None` once empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// `true` once [`RequestQueue::close`] has been called (the
    /// supervisor's exit signal).
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Abrupt close: discards every queued (not-yet-batched) request
    /// *without answering it* and closes the queue. This is the
    /// shard-kill path — the killed shard's connections were already
    /// severed, so the dropped requests' response channels point at
    /// nothing; the router observes the dead connection and re-issues
    /// the work on the fallback shard. Returns how many requests were
    /// discarded.
    pub fn abort(&self) -> usize {
        let mut g = self.lock();
        g.closed = true;
        let dropped = g.queue.len();
        g.queue.clear();
        drop(g);
        self.available.notify_all();
        dropped
    }

    /// Blocks for the next batch: seeds it with the oldest request,
    /// coalesces up to `max_batch` key-compatible requests, lingering up
    /// to `linger` for stragglers when not yet full. `None` once the
    /// queue is closed and drained.
    pub fn next_batch(&self, max_batch: usize, linger: Duration) -> Option<Batch> {
        let max_batch = max_batch.max(1);
        let mut g = self.lock();
        let mut lead = loop {
            if let Some(lead) = g.queue.pop_front() {
                break lead;
            }
            if g.closed {
                return None;
            }
            g = self.available.wait(g).unwrap_or_else(PoisonError::into_inner);
        };
        let key = lead.key;
        lead.joined = Some(Instant::now());
        let mut requests = vec![lead];
        let deadline = Instant::now() + linger;
        loop {
            // Pull every currently-queued compatible request (in FIFO
            // order); incompatible ones are left for other workers.
            let mut i = 0;
            while i < g.queue.len() && requests.len() < max_batch {
                if g.queue.get(i).is_some_and(|p| p.key == key) {
                    if let Some(mut p) = g.queue.remove(i) {
                        p.joined = Some(Instant::now());
                        requests.push(p);
                    }
                } else {
                    i += 1;
                }
            }
            if requests.len() >= max_batch || g.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .available
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if timeout.timed_out() {
                // One final scan below the loop exit would miss requests
                // racing the timeout; the scan at the top of the next
                // iteration handles them, then the deadline check breaks.
                continue;
            }
        }
        drop(g);
        Some(Batch { key, requests, sealed: Instant::now() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn req(id: u64, network: Network, engine: &str, seed: u64) -> Request {
        Request {
            id,
            network,
            repr: Representation::Fixed16,
            engine: engine.to_string(),
            seed,
            v: 1,
        }
    }

    #[test]
    fn queue_full_sheds_with_typed_reason() {
        let q = RequestQueue::new(2);
        let (tx, _rx) = channel();
        assert!(q.submit(req(0, Network::AlexNet, "DaDN", 1), tx.clone()).is_ok());
        assert!(q.submit(req(1, Network::AlexNet, "DaDN", 1), tx.clone()).is_ok());
        assert_eq!(
            q.submit(req(2, Network::AlexNet, "DaDN", 1), tx.clone()),
            Err(ShedReason::QueueFull)
        );
        // Draining a batch frees capacity again.
        let batch = q.next_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.requests.len(), 2);
        assert!(q.submit(req(3, Network::AlexNet, "DaDN", 1), tx).is_ok());
    }

    #[test]
    fn closed_queue_sheds_and_drains() {
        let q = RequestQueue::new(8);
        let (tx, _rx) = channel();
        q.submit(req(0, Network::NiN, "Stripes", 1), tx.clone()).unwrap();
        q.close();
        assert_eq!(q.submit(req(1, Network::NiN, "Stripes", 1), tx), Err(ShedReason::ShuttingDown));
        assert_eq!(q.next_batch(8, Duration::from_secs(5)).unwrap().requests.len(), 1);
        assert!(q.next_batch(8, Duration::ZERO).is_none(), "closed + drained returns None");
    }

    #[test]
    fn abort_discards_queued_work_and_closes() {
        let q = RequestQueue::new(8);
        let (tx, _rx) = channel();
        q.submit(req(0, Network::NiN, "DaDN", 1), tx.clone()).unwrap();
        q.submit(req(1, Network::NiN, "DaDN", 1), tx.clone()).unwrap();
        assert_eq!(q.abort(), 2, "both queued requests are discarded");
        assert!(q.is_closed());
        assert!(q.is_empty());
        assert_eq!(q.submit(req(2, Network::NiN, "DaDN", 1), tx), Err(ShedReason::ShuttingDown));
        assert!(q.next_batch(8, Duration::ZERO).is_none(), "workers see closed + empty");
    }

    #[test]
    fn incompatible_requests_are_left_queued() {
        let q = RequestQueue::new(16);
        let (tx, _rx) = channel();
        q.submit(req(0, Network::AlexNet, "DaDN", 1), tx.clone()).unwrap();
        q.submit(req(1, Network::NiN, "DaDN", 1), tx.clone()).unwrap();
        q.submit(req(2, Network::AlexNet, "PRA-2b", 1), tx.clone()).unwrap();
        q.submit(req(3, Network::AlexNet, "DaDN", 2), tx).unwrap();
        let batch = q.next_batch(8, Duration::ZERO).unwrap();
        // Only ids 0 and 2 share (network, repr, seed, encoding).
        let ids: Vec<u64> = batch.requests.iter().map(|p| p.req.id).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(q.len(), 2, "other keys stay queued for other workers");
    }

    #[test]
    fn linger_expiry_seals_a_partial_batch() {
        let q = RequestQueue::new(8);
        let (tx, _rx) = channel();
        q.submit(req(0, Network::VggM, "PRA-4b", 7), tx).unwrap();
        let linger = Duration::from_millis(40);
        let start = Instant::now();
        let batch = q.next_batch(8, linger).unwrap();
        let waited = start.elapsed();
        assert_eq!(batch.requests.len(), 1, "nothing compatible ever arrived");
        assert!(waited >= linger, "sealed after {waited:?}, before the {linger:?} linger expired");
        assert!(batch.sealed >= batch.requests[0].joined.unwrap());
    }

    #[test]
    fn full_batch_seals_without_waiting_out_the_linger() {
        let q = RequestQueue::new(8);
        let (tx, _rx) = channel();
        for id in 0..3 {
            q.submit(req(id, Network::VggS, "DaDN", 3), tx.clone()).unwrap();
        }
        let start = Instant::now();
        let batch = q.next_batch(3, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.requests.len(), 3);
        assert!(start.elapsed() < Duration::from_secs(5), "full batch must not linger");
    }

    #[test]
    fn poisoned_lock_recovers_for_submit_and_next_batch() {
        use std::sync::Arc;
        let q = Arc::new(RequestQueue::new(2));
        let (tx, _rx) = channel();
        q.submit(req(0, Network::AlexNet, "DaDN", 1), tx.clone()).unwrap();

        // Poison the queue mutex the way a buggy worker would: panic
        // while holding the guard (PR 6's recovery path).
        let q2 = Arc::clone(&q);
        let poisoner = std::thread::spawn(move || {
            let _g = q2.inner.lock().unwrap();
            panic!("deliberate: poison the queue mutex");
        });
        assert!(poisoner.join().is_err(), "the poisoning thread must have panicked");
        assert!(q.inner.is_poisoned(), "the mutex must actually be poisoned");

        // Every operation keeps working through the poisoned lock, and
        // the admission invariants (depth cap, close semantics) still
        // hold — recovery must not silently skip the shed checks.
        assert_eq!(q.len(), 1);
        assert!(q.submit(req(1, Network::AlexNet, "DaDN", 1), tx.clone()).is_ok());
        assert_eq!(
            q.submit(req(2, Network::AlexNet, "DaDN", 1), tx.clone()),
            Err(ShedReason::QueueFull),
            "depth cap survives poisoning"
        );
        let batch = q.next_batch(8, Duration::ZERO).expect("batch forms through a poisoned lock");
        assert_eq!(batch.requests.iter().map(|p| p.req.id).collect::<Vec<_>>(), vec![0, 1]);
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(
            q.submit(req(3, Network::AlexNet, "DaDN", 1), tx),
            Err(ShedReason::ShuttingDown),
            "close semantics survive poisoning"
        );
        assert!(q.next_batch(8, Duration::ZERO).is_none(), "closed + drained still returns None");
    }

    #[test]
    fn lingering_worker_picks_up_late_compatible_arrivals() {
        use std::sync::Arc;
        let q = Arc::new(RequestQueue::new(8));
        let (tx, _rx) = channel();
        q.submit(req(0, Network::Vgg19, "DaDN", 5), tx.clone()).unwrap();
        let q2 = Arc::clone(&q);
        let feeder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (tx2, _rx2) = channel();
            q2.submit(req(1, Network::Vgg19, "DaDN", 5), tx2).unwrap();
            // Keep the late response channel alive past the join below.
            std::mem::forget(_rx2);
        });
        let batch = q.next_batch(8, Duration::from_millis(500)).unwrap();
        feeder.join().unwrap();
        assert_eq!(batch.requests.len(), 2, "the linger window must absorb the late arrival");
    }
}
