//! `pra bench-serve`: a closed-loop load generator for the serving
//! path, with latency percentiles and a response-digest fingerprint.
//!
//! The generator keeps a fixed window of requests in flight over one
//! connection (closed loop: each completion immediately releases the
//! next request), so the offered load adapts to the service instead of
//! overrunning it — the right harness for latency measurement. The
//! request mix is a pure function of the request index and the bench
//! seed: runs with different server worker counts or batch sizes issue
//! byte-identical requests, and because responses are
//! scheduling-independent, the combined response digest must come out
//! identical too. CI's `serve-smoke` job pins that digest against
//! `tests/golden/serve_responses.sha256`.
//!
//! Results land in `bench.json` as a `"serve"` section *merged into*
//! the existing sweep document (phase timings intact), plus
//! `serve_responses.sha256` next to it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use pra_workloads::cache::sha256;
use pra_workloads::{Network, Representation};

use crate::codec::hex;
use crate::protocol::{engine_labels, Request, Response};

/// What `pra bench-serve` runs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:9100`.
    pub addr: String,
    /// Total requests to issue.
    pub requests: usize,
    /// In-flight window (`--batch`): how many requests are outstanding
    /// at once — sized to the server's batch so coalescing has material.
    pub window: usize,
    /// Workload seed every request carries.
    pub seed: u64,
    /// How long to keep retrying the initial connect (covers the racy
    /// `pra serve & pra bench-serve` startup in CI).
    pub connect_timeout: Duration,
    /// How many times a *retryable* shed (`queue_full`, `deadline`,
    /// `worker_lost`, `overloaded` — not `shutting_down`) is re-issued
    /// before it is recorded as the request's final outcome. Zero (the
    /// default) records sheds as-is, which is what keeps the golden
    /// digest gates byte-stable; the chaos smoke runs with a budget so
    /// injected faults converge back to `ok`.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt (capped)
    /// with deterministic jitter derived from `(seed, id, attempt)`.
    pub backoff_ms: u64,
    /// Negotiate protocol v2 (`--v2`): requests carry `"v": 2`, the
    /// server streams per-layer `layer_result` frames, and the bench
    /// records time-to-first-frame alongside full-response latency.
    /// The request *mix* is unchanged — only the version field — and
    /// the terminal payloads are byte-identical to v1, so the golden
    /// digest holds in both modes.
    pub v2: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9100".to_string(),
            requests: 64,
            window: 8,
            seed: pra_bench::SEED,
            connect_timeout: Duration::from_secs(10),
            retries: 0,
            backoff_ms: 25,
            v2: false,
        }
    }
}

/// Jittered exponential backoff, fully determined by its inputs: the
/// exponential part doubles per attempt from `base_ms` (capped at 1 s),
/// the jitter adds up to half of it, keyed on `(seed, id, attempt)` via
/// a splitmix64 step — reruns back off identically, concurrent ids
/// don't thunder in herd.
pub fn backoff_delay(base_ms: u64, attempt: u32, seed: u64, id: u64) -> Duration {
    let attempt = attempt.max(1);
    let exp = base_ms.saturating_mul(1u64 << (attempt.min(6) - 1)).min(1_000);
    let mut z = seed
        ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Duration::from_millis(exp + z % (exp / 2 + 1))
}

/// The deterministic request mix: blocks of eight consecutive ids share
/// one workload (network × representation) so a window of eight gives
/// the server coalescable company, while engines cycle within the
/// block. Depends only on `(i, seed)` — never on timing or server
/// configuration.
pub fn request_mix(i: usize, seed: u64) -> Request {
    let block = i / 8;
    let repr =
        if block.is_multiple_of(2) { Representation::Fixed16 } else { Representation::Quant8 };
    let labels = engine_labels(repr);
    Request {
        id: i as u64,
        network: Network::ALL[block % Network::ALL.len()],
        repr,
        engine: labels[i % labels.len()].clone(),
        seed,
        v: 1,
    }
}

/// Aggregated bench outcome.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Requests issued.
    pub requests: usize,
    /// `ok` responses.
    pub ok: usize,
    /// `shed` responses (final outcomes, after any retries).
    pub shed: usize,
    /// `error` responses.
    pub errors: usize,
    /// Re-issued requests: every retryable shed the retry budget
    /// absorbed on its way to a final outcome.
    pub retries: usize,
    /// Client-observed latency percentiles (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Mean client-observed latency (ms).
    pub mean_ms: f64,
    /// Mean server-reported phase split (ms).
    pub mean_enqueue_ms: f64,
    /// Mean linger/fill wait (ms).
    pub mean_batch_wait_ms: f64,
    /// Mean simulation time (ms).
    pub mean_sim_ms: f64,
    /// Mean batch size the requests rode in.
    pub mean_batch: f64,
    /// Median time to the first v2 `layer_result` frame (ms); `0.0`
    /// when the bench ran v1 (no frames to time).
    pub p50_first_frame_ms: f64,
    /// Total v2 `layer_result` frames observed (0 under v1).
    pub frames: usize,
    /// Whole-run wall clock (ms).
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// In-flight window used.
    pub window: usize,
    /// Hex SHA-256 over every response digest in id order — the value
    /// the CI golden pins.
    pub digest: String,
}

/// Exact percentile by rank over a sorted sample: the smallest value
/// with at least `q`·n samples at or below it.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(format!("could not connect to {addr} within {timeout:?}: {e}")),
        }
    }
}

/// Runs the closed-loop bench and returns the metrics plus every
/// response (id-indexed by the caller if needed).
///
/// # Errors
///
/// Connection failures and protocol violations (unparsable response,
/// missing responses after a 120 s stall).
pub fn run_bench(cfg: &BenchConfig) -> Result<(ServeMetrics, Vec<Response>), String> {
    let n = cfg.requests.max(1);
    let window = cfg.window.clamp(1, n);
    let stream = connect_with_retry(&cfg.addr, cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;

    // Reader thread: parse each response line, stamp arrival.
    let (tx, rx) = std::sync::mpsc::channel::<Result<(Response, Instant), String>>();
    let reader = std::thread::spawn(move || {
        let lines = BufReader::new(read_half).lines();
        for line in lines {
            let msg = match line {
                Ok(l) if l.trim().is_empty() => continue,
                Ok(l) => Response::parse(&l)
                    .map(|r| (r, Instant::now()))
                    .map_err(|e| format!("parse response: {e}")),
                Err(e) => Err(format!("read: {e}")),
            };
            if tx.send(msg).is_err() {
                break;
            }
        }
    });

    fn send_req(
        i: usize,
        seed: u64,
        v2: bool,
        out: &mut TcpStream,
        send_at: &mut [Option<Instant>],
        first_frame: &mut [Option<Instant>],
    ) -> Result<(), String> {
        let mut req = request_mix(i, seed);
        if v2 {
            req.v = 2;
        }
        // A (re-)send restarts both latency clocks for this id.
        send_at[i] = Some(Instant::now());
        first_frame[i] = None;
        out.write_all((req.to_json_line() + "\n").as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("send request {i}: {e}"))
    }

    let mut out = stream;
    let started = Instant::now();
    let mut send_at: Vec<Option<Instant>> = vec![None; n];
    let mut first_frame: Vec<Option<Instant>> = vec![None; n];
    let mut next = 0;
    while next < window.min(n) {
        send_req(next, cfg.seed, cfg.v2, &mut out, &mut send_at, &mut first_frame)?;
        next += 1;
    }

    let mut responses: Vec<Option<Response>> = vec![None; n];
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut first_latencies: Vec<f64> = Vec::new();
    let mut frames = 0usize;
    let mut attempts: Vec<u32> = vec![0; n];
    let mut retried = 0usize;
    let mut done = 0;
    while done < n {
        let (resp, at) = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|e| format!("no response within 120s ({e}); {done}/{n} done"))??;
        // v2 progress frames are timing signals, not outcomes: stamp
        // the first one per id, count them all, and keep waiting for
        // the terminal.
        if let Response::LayerResult { id, .. } = &resp {
            let id = *id as usize;
            if id < n && first_frame[id].is_none() {
                first_frame[id] = Some(at);
            }
            frames += 1;
            continue;
        }
        // A v2 terminal arrives wrapped in its done frame; the inner
        // response is bytewise the v1 terminal, which is what keeps
        // the digest fingerprint identical across protocol versions.
        let resp = match resp {
            Response::Done { inner, .. } => *inner,
            other => other,
        };
        // The bench only ever sends well-formed numeric ids, so a
        // malformed-id error (string-typed id echo) is a protocol
        // violation, not a per-request outcome.
        if let Response::MalformedId { raw_id, message } = &resp {
            return Err(format!("server rejected a request line (id text '{raw_id}'): {message}"));
        }
        let id = resp.id() as usize;
        if id >= n || responses[id].is_some() {
            return Err(format!("unexpected response id {id}"));
        }
        // A retryable shed with budget left is re-issued (same id, same
        // payload) after a deterministic jittered backoff instead of
        // being recorded; its latency clock restarts with the re-send.
        let retryable = matches!(&resp, Response::Shed { reason, .. } if reason.retryable());
        if retryable && attempts[id] < cfg.retries {
            attempts[id] += 1;
            retried += 1;
            std::thread::sleep(backoff_delay(cfg.backoff_ms, attempts[id], cfg.seed, id as u64));
            send_req(id, cfg.seed, cfg.v2, &mut out, &mut send_at, &mut first_frame)?;
            continue;
        }
        if let Some(sent) = send_at[id] {
            latencies.push(at.duration_since(sent).as_secs_f64() * 1e3);
            if let Some(ff) = first_frame[id] {
                if let Some(d) = ff.checked_duration_since(sent) {
                    first_latencies.push(d.as_secs_f64() * 1e3);
                }
            }
        }
        responses[id] = Some(resp);
        done += 1;
        if next < n {
            send_req(next, cfg.seed, cfg.v2, &mut out, &mut send_at, &mut first_frame)?;
            next += 1;
        }
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    // Orderly teardown. `out` and `read_half` are dup'd fds of one
    // socket, so merely dropping `out` would NOT send a FIN (the reader
    // still holds the socket open) and both sides would wait on each
    // other forever; an explicit write-side shutdown tells the server
    // we are done, it closes its end, and the reader sees EOF.
    let _ = out.shutdown(std::net::Shutdown::Write);
    let _ = reader.join();

    let responses: Vec<Response> = responses.into_iter().map(|r| r.expect("counted")).collect();
    let metrics =
        summarize(&responses, latencies, first_latencies, frames, elapsed_ms, window, retried);
    Ok((metrics, responses))
}

/// Folds responses + client latencies into [`ServeMetrics`].
fn summarize(
    responses: &[Response],
    mut latencies: Vec<f64>,
    mut first_latencies: Vec<f64>,
    frames: usize,
    elapsed_ms: f64,
    window: usize,
    retries: usize,
) -> ServeMetrics {
    let n = responses.len();
    let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
    let (mut enq, mut bat, mut sim, mut batch_sz) = (0.0, 0.0, 0.0, 0.0);
    // The combined digest hashes one line per response in id order:
    // the response digest for ok, the status otherwise (a shed or error
    // therefore always breaks the golden, loudly).
    let mut fingerprint = String::new();
    for r in responses {
        // Defensive normalization for direct callers: run_bench already
        // unwraps done frames and never records progress frames.
        let r = match r {
            Response::Done { inner, .. } => inner.as_ref(),
            Response::LayerResult { .. } => continue,
            other => other,
        };
        match r {
            Response::Ok { digest, latency, batch_size, .. } => {
                ok += 1;
                enq += latency.enqueue_ms;
                bat += latency.batch_ms;
                sim += latency.sim_ms;
                batch_sz += *batch_size as f64;
                fingerprint.push_str(digest);
            }
            Response::Shed { reason, .. } => {
                shed += 1;
                fingerprint.push_str(&format!("shed:{}", reason.label()));
            }
            Response::Error { message, .. } => {
                errors += 1;
                fingerprint.push_str(&format!("error:{message}"));
            }
            Response::MalformedId { message, .. } => {
                // Unreachable through run_bench (it errors out first);
                // counted defensively for direct callers.
                errors += 1;
                fingerprint.push_str(&format!("error:{message}"));
            }
            Response::LayerResult { .. } | Response::Done { .. } => {
                // Unreachable: normalized away above, and the parser
                // rejects nested frames. Counted defensively.
                errors += 1;
                fingerprint.push_str("error:unexpected frame");
            }
        }
        fingerprint.push('\n');
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    first_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = |sum: f64, k: usize| if k > 0 { sum / k as f64 } else { 0.0 };
    ServeMetrics {
        requests: n,
        ok,
        shed,
        errors,
        retries,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        mean_ms: mean(latencies.iter().sum(), latencies.len()),
        mean_enqueue_ms: mean(enq, ok),
        mean_batch_wait_ms: mean(bat, ok),
        mean_sim_ms: mean(sim, ok),
        mean_batch: mean(batch_sz, ok),
        p50_first_frame_ms: percentile(&first_latencies, 0.50),
        frames,
        elapsed_ms,
        rps: if elapsed_ms > 0.0 { n as f64 / (elapsed_ms / 1e3) } else { 0.0 },
        window,
        digest: hex(&sha256(fingerprint.as_bytes())),
    }
}

/// Renders the `"serve"` section as one flat JSON line (no newline),
/// ready for [`merge_bench_json`]. Key names deliberately avoid the
/// sweep parser's phase keys (`gen_ms`, `wall_ms`, `total_wall_ms`) so
/// `phase_totals` never mistakes this line for a job timing.
pub fn serve_section(m: &ServeMetrics) -> String {
    format!(
        "  \"serve\": {{\"requests\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
         \"retries\": {}, \
         \"window\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"mean_ms\": {:.3}, \"mean_enqueue_ms\": {:.3}, \"mean_batch_wait_ms\": {:.3}, \
         \"mean_sim_ms\": {:.3}, \"mean_batch\": {:.2}, \"p50_first_frame_ms\": {:.3}, \
         \"frames\": {}, \"elapsed_ms\": {:.3}, \"rps\": {:.2}, \
         \"responses_sha256\": {}}},",
        m.requests,
        m.ok,
        m.shed,
        m.errors,
        m.retries,
        m.window,
        m.p50_ms,
        m.p95_ms,
        m.p99_ms,
        m.mean_ms,
        m.mean_enqueue_ms,
        m.mean_batch_wait_ms,
        m.mean_sim_ms,
        m.mean_batch,
        m.p50_first_frame_ms,
        m.frames,
        m.elapsed_ms,
        m.rps,
        pra_bench::report::json_string(&m.digest),
    )
}

/// Merges a one-line section into a `bench.json` document: the existing
/// content (sweep phase timings, other sections) is preserved, a
/// previous line under the *same key* is replaced. The key is whatever
/// the section line names — `"serve":` for the single-server bench,
/// `"cluster":` for the topology sweep — so each producer owns its own
/// line. With no existing document a minimal versioned one is created.
/// Both paths produce the section as a single line directly after the
/// opening brace, which is also what makes replacement exact.
pub fn merge_bench_json(existing: Option<&str>, section_line: &str) -> String {
    let key = match section_line.trim_start().split_once(':') {
        Some((k, _)) => format!("{k}:"),
        None => "\"serve\":".to_string(),
    };
    match existing {
        Some(body) if body.trim_start().starts_with('{') => {
            let mut out = String::with_capacity(body.len() + section_line.len() + 1);
            let mut inserted = false;
            for line in body.lines() {
                if line.trim_start().starts_with(&key) {
                    continue; // replaced below
                }
                out.push_str(line);
                out.push('\n');
                if !inserted && line.trim_end() == "{" {
                    out.push_str(section_line);
                    out.push('\n');
                    inserted = true;
                }
            }
            if inserted {
                out
            } else {
                minimal_doc(section_line) // unrecognized layout: start over
            }
        }
        _ => minimal_doc(section_line),
    }
}

fn minimal_doc(section_line: &str) -> String {
    format!(
        "{{\n{section_line}\n  \"schema_version\": {}\n}}\n",
        pra_bench::sweep::BENCH_SCHEMA_VERSION
    )
}

/// Writes `bench.json` (merged) and `serve_responses.sha256` under
/// `target/pra-reports/`; returns the bench.json path on success
/// (best-effort, like every report).
pub fn write_serve_report(m: &ServeMetrics) -> Option<std::path::PathBuf> {
    let dir = pra_bench::report::report_dir();
    let existing = std::fs::read_to_string(dir.join("bench.json")).ok();
    let merged = merge_bench_json(existing.as_deref(), &serve_section(m));
    let _ = pra_bench::report::write_text(
        "serve_responses.sha256",
        "digest",
        &(m.digest.clone() + "\n"),
    );
    pra_bench::report::write_json("bench", &merged)
}

/// The human summary table `pra bench-serve` prints.
pub fn metrics_table(m: &ServeMetrics) -> pra_bench::Table {
    let mut t = pra_bench::Table::new(["metric", "value"]);
    t.row([
        "requests",
        &format!(
            "{} ({} ok, {} shed, {} errors, {} retried)",
            m.requests, m.ok, m.shed, m.errors, m.retries
        ),
    ]);
    t.row(["in-flight window", &m.window.to_string()]);
    t.row(["p50 / p95 / p99", &format!("{:.1} / {:.1} / {:.1} ms", m.p50_ms, m.p95_ms, m.p99_ms)]);
    if m.frames > 0 {
        t.row([
            "p50 first frame",
            &format!("{:.1} ms ({} layer frames)", m.p50_first_frame_ms, m.frames),
        ]);
    }
    t.row(["mean latency", &format!("{:.1} ms", m.mean_ms)]);
    t.row([
        "mean phase split",
        &format!(
            "enqueue {:.1} + batch-wait {:.1} + sim {:.1} ms",
            m.mean_enqueue_ms, m.mean_batch_wait_ms, m.mean_sim_ms
        ),
    ]);
    t.row(["mean batch size", &format!("{:.2}", m.mean_batch)]);
    t.row(["throughput", &format!("{:.1} req/s", m.rps)]);
    t.row(["responses sha256", &m.digest]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LatencySplit;

    #[test]
    fn request_mix_is_deterministic_and_blocked() {
        for i in 0..64 {
            assert_eq!(request_mix(i, 7), request_mix(i, 7));
        }
        // Ids 0..8 share a workload; engines cycle within the block.
        let keys: Vec<_> =
            (0..8).map(|i| (request_mix(i, 7).network, request_mix(i, 7).repr)).collect();
        assert!(keys.windows(2).all(|w| w[0] == w[1]), "one block, one workload");
        assert_ne!(request_mix(0, 7).engine, request_mix(1, 7).engine);
        // The next block moves on.
        assert_ne!(
            (request_mix(0, 7).network, request_mix(0, 7).repr),
            (request_mix(8, 7).network, request_mix(8, 7).repr)
        );
        // Seed flows through verbatim.
        assert_eq!(request_mix(3, 0xABC).seed, 0xABC);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        // Same inputs, same delay — reruns of a chaos smoke back off
        // identically.
        assert_eq!(backoff_delay(25, 1, 7, 3), backoff_delay(25, 1, 7, 3));
        // Different ids jitter apart at the same attempt.
        let spread: std::collections::BTreeSet<_> =
            (0..32).map(|id| backoff_delay(25, 1, 7, id)).collect();
        assert!(spread.len() > 8, "jitter must actually spread ids");
        for attempt in 1..=8u32 {
            let d = backoff_delay(25, attempt, 7, 0);
            let exp = 25u64.saturating_mul(1 << (attempt.min(6) - 1)).min(1_000);
            assert!(d >= Duration::from_millis(exp), "at least the exponential part");
            assert!(d <= Duration::from_millis(exp + exp / 2), "jitter capped at half");
        }
        // The cap keeps a long retry storm from stalling the bench.
        assert!(backoff_delay(1_000, 30, 1, 1) <= Duration::from_millis(1_500));
    }

    #[test]
    fn percentiles_by_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    fn ok(id: u64, digest: &str) -> Response {
        Response::Ok {
            id,
            network: "Alexnet".into(),
            repr: "fp16".into(),
            engine: "DaDN".into(),
            seed: 1,
            cycles: 10,
            terms: 5,
            speedup: 1.0,
            digest: digest.into(),
            batch_size: 2,
            latency: LatencySplit { enqueue_ms: 1.0, batch_ms: 2.0, sim_ms: 3.0, total_ms: 6.0 },
        }
    }

    #[test]
    fn summary_digest_is_order_stable_and_shed_sensitive() {
        let a = summarize(&[ok(0, "aaa"), ok(1, "bbb")], vec![1.0, 2.0], Vec::new(), 0, 10.0, 2, 0);
        let b = summarize(&[ok(0, "aaa"), ok(1, "bbb")], vec![2.0, 1.0], Vec::new(), 0, 99.0, 4, 3);
        assert_eq!(a.digest, b.digest, "digest depends on responses only");
        let with_shed = summarize(
            &[
                ok(0, "aaa"),
                Response::Shed { id: 1, reason: crate::protocol::ShedReason::QueueFull },
            ],
            vec![1.0],
            Vec::new(),
            0,
            10.0,
            2,
            0,
        );
        assert_ne!(a.digest, with_shed.digest);
        assert_eq!(with_shed.shed, 1);
    }

    #[test]
    fn merge_preserves_sweep_content_and_replaces_serve() {
        let sweep_doc =
            "{\n  \"schema_version\": 2,\n  \"total_wall_ms\": 12.0,\n  \"jobs\": 1\n}\n";
        let m = summarize(&[ok(0, "aaa")], vec![1.0], Vec::new(), 0, 10.0, 1, 0);
        let merged = merge_bench_json(Some(sweep_doc), &serve_section(&m));
        assert!(merged.contains("\"total_wall_ms\": 12.0"), "sweep content intact");
        assert!(merged.contains("\"serve\": {"));
        assert!(merged.contains("\"p99_ms\""));
        // Re-merging replaces rather than duplicates.
        let remerged = merge_bench_json(Some(&merged), &serve_section(&m));
        assert_eq!(remerged.matches("\"serve\":").count(), 1);
        // And the sweep parser still reads the document.
        assert!(pra_bench::sweep::phase_totals(&merged).is_none(), "no job timings in this doc");
        // From nothing, a minimal versioned doc appears.
        let fresh = merge_bench_json(None, &serve_section(&m));
        assert!(fresh.contains("\"schema_version\""));
        assert_eq!(fresh.matches("\"serve\":").count(), 1);
    }

    #[test]
    fn merge_keys_sections_independently() {
        let m = summarize(&[ok(0, "aaa")], vec![1.0], Vec::new(), 0, 10.0, 1, 0);
        let with_serve = merge_bench_json(None, &serve_section(&m));
        let cluster_line = "  \"cluster\": {\"topologies\": 3},";
        // A cluster section lands next to the serve one…
        let both = merge_bench_json(Some(&with_serve), cluster_line);
        assert_eq!(both.matches("\"serve\":").count(), 1);
        assert_eq!(both.matches("\"cluster\":").count(), 1);
        // …and re-merging either replaces only its own line.
        let re_cluster = merge_bench_json(Some(&both), "  \"cluster\": {\"topologies\": 4},");
        assert_eq!(re_cluster.matches("\"cluster\":").count(), 1);
        assert!(re_cluster.contains("\"topologies\": 4"));
        assert_eq!(re_cluster.matches("\"serve\":").count(), 1, "serve section untouched");
    }
}
