//! Deterministic, seeded fault injection for the serving tier
//! (DESIGN.md §12).
//!
//! A [`FaultPlan`] maps named [`Site`]s — places in the serve stack
//! where something can plausibly go wrong — to firing rates and, for
//! the delay-shaped sites, stall durations. The plan is armed
//! process-wide (from a `PRA_CHAOS` spec string or programmatically)
//! and consulted at each site via [`fires`]/[`stall`]/[`mangle`]. When
//! nothing is armed every site collapses to one relaxed atomic load,
//! so production paths pay essentially nothing.
//!
//! Determinism: whether the *n*-th invocation of a site fires is a
//! pure function of `(seed, site, n)` — each draw seeds a fresh
//! xoshiro256** stream from those three values instead of advancing a
//! shared stream, so thread interleaving changes *which worker* hits a
//! fault but never *how many* faults the run injects. That is what
//! makes a chaos soak reproducible enough to gate CI on: the fault
//! count for a given `(seed, rate, N invocations)` is a constant.
//!
//! This crate is dependency-free and sits below `pra-workloads` and
//! `pra-serve` in the workspace graph, so the cache-read sites and the
//! serve-stack sites consult the same armed plan.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A named fault-injection point. Labels are the `PRA_CHAOS` spec
/// vocabulary and are wire/CLI-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Flip one byte of a cache entry as it is read (the entry's
    /// integrity trailer must catch it and force regeneration).
    CacheCorrupt,
    /// Truncate a cache entry as it is read (ditto).
    CacheTruncate,
    /// Panic a serve worker at the top of a batch (the supervisor must
    /// reclaim the batch and respawn the worker).
    WorkerPanic,
    /// Stall the simulation path mid-batch (deadline enforcement and
    /// wedge detection must keep answering).
    SlowSim,
    /// Fail a worker-thread spawn attempt (the supervisor must retry).
    SpawnFail,
    /// Drop a connection while reading a request line.
    SockReadErr,
    /// Drop a connection while writing a response line.
    SockWriteErr,
    /// Stall a connection's writer before a response line.
    SockStall,
    /// Kill a serving shard mid-request: sever every live connection,
    /// discard queued work unanswered, and stop accepting — the router
    /// must fail the lost in-flight requests over to the fallback
    /// shard. One-shot: fires at most once per armed plan, so a
    /// cluster-wide plan can never take *every* replica down.
    ShardKill,
    /// Stall a router health probe past its heartbeat deadline (the
    /// probe counts as failed, driving the UP → DEGRADED → DOWN state
    /// machine without any shard actually misbehaving).
    ProbeStall,
}

impl Site {
    /// Every site, in spec order.
    pub const ALL: [Site; 10] = [
        Site::CacheCorrupt,
        Site::CacheTruncate,
        Site::WorkerPanic,
        Site::SlowSim,
        Site::SpawnFail,
        Site::SockReadErr,
        Site::SockWriteErr,
        Site::SockStall,
        Site::ShardKill,
        Site::ProbeStall,
    ];

    /// Stable spec/CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            Site::CacheCorrupt => "cache-corrupt",
            Site::CacheTruncate => "cache-truncate",
            Site::WorkerPanic => "worker-panic",
            Site::SlowSim => "slow-sim",
            Site::SpawnFail => "spawn-fail",
            Site::SockReadErr => "sock-read-err",
            Site::SockWriteErr => "sock-write-err",
            Site::SockStall => "sock-stall",
            Site::ShardKill => "shard-kill",
            Site::ProbeStall => "probe-stall",
        }
    }

    /// Resolves a spec label.
    pub fn from_label(label: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.label() == label)
    }

    /// Stall length used when the spec gives a rate but no `:millis`.
    /// Zero for the sites where a delay makes no sense.
    fn default_delay_ms(&self) -> u64 {
        match self {
            Site::SlowSim => 25,
            Site::SockStall => 50,
            Site::ProbeStall => 100,
            _ => 0,
        }
    }

    /// Whether the site fires at most once per armed plan, no matter
    /// how many invocations draw a hit. A shard kill is terminal for
    /// the shard that draws it; capping the plan at one kill keeps a
    /// cluster-wide chaos run from taking every replica of a key down
    /// at once (which would turn a failover test into an outage test).
    pub fn one_shot(&self) -> bool {
        matches!(self, Site::ShardKill)
    }

    fn index(&self) -> usize {
        Site::ALL.iter().position(|s| s == self).unwrap_or(0)
    }
}

/// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its
/// authors recommend. Small, fast, and good enough spectral quality
/// that per-site firing counts track their configured rates closely.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the full 256-bit state.
    pub fn seeded(seed: u64) -> Xoshiro256 {
        let mut x = seed;
        let s = [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)];
        Xoshiro256 { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Per-site plan state: the firing threshold in 1/2⁶⁴ units, the stall
/// length, and the invocation/fired counters.
#[derive(Debug)]
struct SitePlan {
    /// A draw fires when `< threshold`; 0 disables the site entirely.
    threshold: u64,
    delay: Duration,
    invocations: AtomicU64,
    fired: AtomicU64,
}

impl SitePlan {
    fn off() -> SitePlan {
        SitePlan {
            threshold: 0,
            delay: Duration::ZERO,
            invocations: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }
}

/// A seeded set of per-site fault rates. Build one with
/// [`FaultPlan::parse`] (the `PRA_CHAOS` spec grammar) or
/// [`FaultPlan::new`] + [`FaultPlan::with_site`], then [`arm`] it.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: [SitePlan; Site::ALL.len()],
}

impl FaultPlan {
    /// An empty plan (no site ever fires) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, sites: std::array::from_fn(|_| SitePlan::off()) }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets `site` to fire with probability `rate` (clamped to [0, 1]),
    /// stalling `delay_ms` (`None` keeps the site default) when it is a
    /// delay-shaped site.
    #[must_use]
    pub fn with_site(mut self, site: Site, rate: f64, delay_ms: Option<u64>) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            // rate · 2⁶⁴, computed in f64 (53-bit precision is far finer
            // than any rate a spec writes).
            (rate * 2f64.powi(64)) as u64
        };
        let delay = Duration::from_millis(delay_ms.unwrap_or_else(|| site.default_delay_ms()));
        self.sites[site.index()] =
            SitePlan { threshold, delay, invocations: AtomicU64::new(0), fired: AtomicU64::new(0) };
        self
    }

    /// Parses a `PRA_CHAOS` spec: comma-separated clauses, one
    /// `seed=<u64>` (decimal or `0x`-hex) and any number of
    /// `<site>=<rate>[:<stall-millis>]`, e.g.
    /// `seed=3,worker-panic=0.2,slow-sim=0.5:25`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause and, for unknown
    /// sites, the valid vocabulary.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = None;
        let mut sites: Vec<(Site, f64, Option<u64>)> = Vec::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) =
                clause.split_once('=').ok_or_else(|| format!("bad clause '{clause}'"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                let v = if let Some(hex) = value.strip_prefix("0x").or(value.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    value.parse().ok()
                };
                seed = Some(v.ok_or_else(|| format!("bad seed '{value}'"))?);
                continue;
            }
            let site = Site::from_label(key).ok_or_else(|| {
                format!(
                    "unknown site '{key}' (one of: {})",
                    Site::ALL.map(|s| s.label()).join(", ")
                )
            })?;
            let (rate_str, delay) = match value.split_once(':') {
                Some((r, d)) => {
                    let ms =
                        d.parse().map_err(|_| format!("bad stall millis '{d}' in '{clause}'"))?;
                    (r, Some(ms))
                }
                None => (value, None),
            };
            let rate: f64 =
                rate_str.parse().map_err(|_| format!("bad rate '{rate_str}' in '{clause}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} out of [0, 1] in '{clause}'"));
            }
            sites.push((site, rate, delay));
        }
        let mut plan = FaultPlan::new(seed.ok_or("spec needs a seed=<u64> clause")?);
        for (site, rate, delay) in sites {
            plan = plan.with_site(site, rate, delay);
        }
        Ok(plan)
    }

    /// One-line summary of the armed sites (for startup logging).
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("seed={:#x}", self.seed)];
        for site in Site::ALL {
            let sp = &self.sites[site.index()];
            if sp.threshold > 0 {
                let rate = sp.threshold as f64 / 2f64.powi(64);
                if sp.delay.is_zero() {
                    parts.push(format!("{}={rate:.3}", site.label()));
                } else {
                    parts.push(format!("{}={rate:.3}:{}ms", site.label(), sp.delay.as_millis()));
                }
            }
        }
        parts.join(",")
    }

    /// Draws the fire/no-fire decision for this invocation of `site`.
    /// The decision for the *n*-th invocation is a pure function of
    /// `(seed, site, n)`; the counters only sequence the draws.
    pub fn fires(&self, site: Site) -> bool {
        let sp = &self.sites[site.index()];
        if sp.threshold == 0 {
            return false;
        }
        // relaxed-ok: the counter only needs each invocation to get a
        // distinct draw index; no other memory is published through it.
        let n = sp.invocations.fetch_add(1, Ordering::Relaxed);
        let fire = self.draw(site, n) < sp.threshold;
        if !fire {
            return false;
        }
        if site.one_shot() {
            // relaxed-ok: the CAS itself elects the single winner; no
            // other memory is published through the counter.
            return sp.fired.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok();
        }
        // relaxed-ok: monotonic stat counter; nothing synchronizes
        // through it.
        sp.fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The stall length configured for `site`.
    pub fn site_delay(&self, site: Site) -> Duration {
        self.sites[site.index()].delay
    }

    /// How often `site` has fired since the plan was armed.
    pub fn fired_count(&self, site: Site) -> u64 {
        // relaxed-ok: monotonic stat counter read for reporting only.
        self.sites[site.index()].fired.load(Ordering::Relaxed)
    }

    /// The raw 64-bit draw for invocation `n` of `site` — a fresh
    /// xoshiro256** stream per (seed, site, n) so the decision is
    /// interleaving-independent.
    fn draw(&self, site: Site, n: u64) -> u64 {
        let mut mix = self.seed;
        let _ = splitmix64(&mut mix);
        let salt = mix ^ (site.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        Xoshiro256::seeded(salt ^ n.wrapping_mul(0x9E6D_62D0_6F6A_9A9B)).next_u64()
    }
}

/// Fast disarm flag, mirrored from the plan slot below.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The armed plan. A mutex (not a OnceLock) so tests can arm, disarm
/// and re-arm within one process.
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

fn plan_slot() -> std::sync::MutexGuard<'static, Option<Arc<FaultPlan>>> {
    // A panicking holder cannot corrupt an Option<Arc>; keep serving.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether any plan is armed. This is the entire cost of an unarmed
/// site check.
pub fn armed() -> bool {
    // relaxed-ok: a stale read only delays fault onset/cancellation by
    // one check; the plan itself is read under the mutex.
    ARMED.load(Ordering::Relaxed)
}

/// Arms `plan` process-wide, replacing any previous plan.
pub fn arm(plan: FaultPlan) {
    *plan_slot() = Some(Arc::new(plan));
    // relaxed-ok: see `armed`.
    ARMED.store(true, Ordering::Relaxed);
}

/// Parses and arms a `PRA_CHAOS` spec string.
///
/// # Errors
///
/// Propagates the [`FaultPlan::parse`] error.
pub fn arm_spec(spec: &str) -> Result<(), String> {
    arm(FaultPlan::parse(spec)?);
    Ok(())
}

/// Arms from the `PRA_CHAOS` environment variable. `Ok(false)` when it
/// is unset or empty (the no-op production default).
///
/// # Errors
///
/// Propagates the spec parse error, prefixed with the variable name.
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var("PRA_CHAOS") {
        Ok(spec) if !spec.trim().is_empty() => {
            arm_spec(&spec).map_err(|e| format!("PRA_CHAOS: {e}"))?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarms fault injection. In-progress [`stall`]s notice within one
/// sleep slice and return early.
pub fn disarm() {
    // relaxed-ok: see `armed`.
    ARMED.store(false, Ordering::Relaxed);
    *plan_slot() = None;
}

/// The armed plan, if any.
pub fn current() -> Option<Arc<FaultPlan>> {
    if !armed() {
        return None;
    }
    plan_slot().clone()
}

/// Draws the fire decision for `site` against the armed plan. Always
/// `false` when nothing is armed.
pub fn fires(site: Site) -> bool {
    match current() {
        Some(plan) => plan.fires(site),
        None => false,
    }
}

/// How often `site` has fired under the armed plan.
pub fn fired_count(site: Site) -> u64 {
    current().map_or(0, |p| p.fired_count(site))
}

/// Sleep slice for [`stall`]: long enough to be cheap, short enough
/// that a disarm cancels promptly.
const STALL_SLICE: Duration = Duration::from_millis(10);

/// Stalls the calling thread for `site`'s configured delay when the
/// site fires. Sleeps in slices and re-checks [`armed`] so a test
/// tearing chaos down never waits out a long injected stall.
pub fn stall(site: Site) {
    let Some(plan) = current() else { return };
    if !plan.fires(site) {
        return;
    }
    let delay = plan.site_delay(site);
    let start = Instant::now();
    loop {
        let elapsed = start.elapsed();
        if elapsed >= delay || !armed() {
            return;
        }
        std::thread::sleep((delay - elapsed).min(STALL_SLICE));
    }
}

/// Mangles `bytes` for the cache-read sites when `site` fires: flips
/// one deterministic byte ([`Site::CacheCorrupt`]) or truncates to a
/// deterministic prefix ([`Site::CacheTruncate`]). Returns whether a
/// fault was injected.
pub fn mangle(site: Site, bytes: &mut Vec<u8>) -> bool {
    if bytes.is_empty() || !fires(site) {
        return false;
    }
    let seed = current().map_or(0, |p| p.seed());
    let mut rng = Xoshiro256::seeded(seed ^ bytes.len() as u64);
    let pick = rng.next_u64() as usize % bytes.len();
    match site {
        Site::CacheTruncate => bytes.truncate(pick),
        _ => {
            if let Some(b) = bytes.get_mut(pick) {
                *b ^= 0x40;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global plan slot.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("seed=0x2A, worker-panic=0.5, slow-sim=1:40").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.site_delay(Site::SlowSim), Duration::from_millis(40));
        assert!(plan.fires(Site::SlowSim), "rate 1 always fires");
        assert!(!plan.fires(Site::SockStall), "unconfigured site never fires");
        for bad in [
            "worker-panic=0.5",         // no seed
            "seed=1,warp-core=0.5",     // unknown site
            "seed=1,worker-panic=1.5",  // rate out of range
            "seed=1,slow-sim=0.5:fast", // bad millis
            "seed=banana,slow-sim=0.5", // bad seed
            "seed=1,worker-panic",      // no '='
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_site_and_index() {
        let a = FaultPlan::new(7).with_site(Site::WorkerPanic, 0.3, None);
        let b = FaultPlan::new(7).with_site(Site::WorkerPanic, 0.3, None);
        let da: Vec<bool> = (0..256).map(|_| a.fires(Site::WorkerPanic)).collect();
        let db: Vec<bool> = (0..256).map(|_| b.fires(Site::WorkerPanic)).collect();
        assert_eq!(da, db, "same seed, same decision sequence");
        let c = FaultPlan::new(8).with_site(Site::WorkerPanic, 0.3, None);
        let dc: Vec<bool> = (0..256).map(|_| c.fires(Site::WorkerPanic)).collect();
        assert_ne!(da, dc, "a different seed must reshuffle the decisions");
    }

    #[test]
    fn firing_rate_tracks_the_configured_rate() {
        let plan = FaultPlan::new(99).with_site(Site::CacheCorrupt, 0.25, None);
        let fired = (0..4000).filter(|_| plan.fires(Site::CacheCorrupt)).count();
        assert!((800..=1200).contains(&fired), "0.25 rate fired {fired}/4000");
        assert_eq!(plan.fired_count(Site::CacheCorrupt) as usize, fired);
    }

    #[test]
    fn one_shot_sites_fire_at_most_once_per_plan() {
        let plan = FaultPlan::new(11).with_site(Site::ShardKill, 1.0, None);
        let fired = (0..64).filter(|_| plan.fires(Site::ShardKill)).count();
        assert_eq!(fired, 1, "rate-1 shard-kill must still fire exactly once");
        assert_eq!(plan.fired_count(Site::ShardKill), 1);
        // A fresh plan re-arms the kill — one shot per *plan*, not per
        // process.
        let again = FaultPlan::new(11).with_site(Site::ShardKill, 1.0, None);
        assert!(again.fires(Site::ShardKill));
    }

    #[test]
    fn new_site_labels_round_trip() {
        for site in [Site::ShardKill, Site::ProbeStall] {
            assert_eq!(Site::from_label(site.label()), Some(site));
        }
        let plan = FaultPlan::parse("seed=1,shard-kill=0.5,probe-stall=1").unwrap();
        assert_eq!(plan.site_delay(Site::ProbeStall), Duration::from_millis(100));
        assert!(plan.summary().contains("shard-kill=0.500"));
    }

    #[test]
    fn unarmed_sites_are_inert_and_disarm_cancels() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        disarm();
        assert!(!armed());
        assert!(!fires(Site::WorkerPanic));
        let mut bytes = vec![1u8, 2, 3];
        assert!(!mangle(Site::CacheCorrupt, &mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);

        arm(FaultPlan::new(1).with_site(Site::SlowSim, 1.0, Some(60_000)));
        assert!(armed());
        let t = std::thread::spawn(|| stall(Site::SlowSim));
        std::thread::sleep(Duration::from_millis(30));
        disarm();
        let start = Instant::now();
        t.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "disarm must cancel a pending stall, waited {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn mangle_corrupts_and_truncates_deterministically() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        arm(FaultPlan::new(5).with_site(Site::CacheCorrupt, 1.0, None).with_site(
            Site::CacheTruncate,
            1.0,
            None,
        ));
        let clean: Vec<u8> = (0..64).collect();
        let mut a = clean.clone();
        let mut b = clean.clone();
        assert!(mangle(Site::CacheCorrupt, &mut a));
        assert!(mangle(Site::CacheCorrupt, &mut b));
        assert_eq!(a, b, "corruption position is seed-deterministic");
        assert_ne!(a, clean, "corruption must change the payload");
        assert_eq!(a.len(), clean.len(), "corruption preserves length");
        let mut t = clean.clone();
        assert!(mangle(Site::CacheTruncate, &mut t));
        assert!(t.len() < clean.len(), "truncation must shorten the payload");
        disarm();
    }

    #[test]
    fn xoshiro_reference_behavior() {
        // Distinct seeds give distinct streams; one seed replays.
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(1);
        let mut c = Xoshiro256::seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Crude uniformity: high bit set roughly half the time over a
        // longer run.
        let mut r = Xoshiro256::seeded(3);
        let high = (0..4096).filter(|_| r.next_u64() >> 63 == 1).count();
        assert!((1600..=2500).contains(&high), "high bit set {high}/4096");
    }
}
