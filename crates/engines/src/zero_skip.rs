//! Zero-neuron-skipping references (§II-B).
//!
//! * **ZN** — a hypothetical engine that skips *every* zero-valued neuron,
//!   including padding, with no synchronization loss: the upper bound for
//!   value-based zero skipping.
//! * **CVN** — a practical Cnvlutin-like design (paper ref 11): the 16
//!   neuron lanes of a unit each process the non-zero neurons of their own
//!   channel slice (lane `l` owns channels `i ≡ l mod 16`), synchronizing
//!   at window boundaries, and the first layer cannot be skipped at all.
//!   The per-window cost is therefore the *maximum* non-zero count across
//!   lanes, which is why CVN lands well short of ZN (63% vs 39% of DaDN
//!   terms on average in Fig. 2).

use pra_tensor::BRICK;
use pra_workloads::LayerWorkload;

/// Per-window cycles for a CVN unit on `layer`: max over the 16 channel
/// lanes of the lane's non-zero neuron count inside the window, summed
/// over all windows. The first layer (`is_first_layer`) is processed
/// densely at DaDN's rate.
pub fn cvn_window_cycles(layer: &LayerWorkload, is_first_layer: bool) -> u64 {
    let spec = &layer.spec;
    if is_first_layer {
        return (spec.windows() * spec.brick_steps()) as u64;
    }
    let mut total = 0u64;
    for wy in 0..spec.out_y() {
        for wx in 0..spec.out_x() {
            let (ox, oy) = spec.window_origin(wx, wy);
            let mut lane_nz = [0u32; BRICK];
            for fy in 0..spec.filter.y {
                for fx in 0..spec.filter.x {
                    let (nx, ny) = (ox + fx as isize, oy + fy as isize);
                    if nx < 0
                        || ny < 0
                        || nx as usize >= spec.input.x
                        || ny as usize >= spec.input.y
                    {
                        continue; // padding: all zeros, skipped by CVN
                    }
                    let (nx, ny) = (nx as usize, ny as usize);
                    let base = layer.neurons.index_of(nx, ny, 0);
                    let row = &layer.neurons.as_slice()[base..base + spec.input.i];
                    for (i, &v) in row.iter().enumerate() {
                        if v != 0 {
                            lane_nz[i % BRICK] += 1;
                        }
                    }
                }
            }
            total += u64::from(*lane_nz.iter().max().expect("16 lanes"));
        }
    }
    total
}

/// CVN equivalent term count: lane-cycles × 16 lanes × `bits` terms per
/// product × filter count (§II's accounting where every product of a
/// `bits`-wide engine costs `bits` terms). The dense first layer costs
/// exactly DaDN's terms — counting its lane-cycles would overcharge
/// layers whose channel depth is far below the brick size (e.g. the
/// 3-channel image layer).
pub fn cvn_terms(layer: &LayerWorkload, is_first_layer: bool, bits: u32) -> u64 {
    if is_first_layer {
        return layer.spec.multiplications() * u64::from(bits);
    }
    cvn_window_cycles(layer, is_first_layer)
        * BRICK as u64
        * bits as u64
        * layer.spec.num_filters as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};

    fn layer(nx: usize, i: usize, f: impl FnMut(usize, usize, usize) -> u16) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (nx, nx, i), (3, 3), 16, 1, 0).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, f),
            spec,
            window: PrecisionWindow::full(),
            stripes_precision: 16,
        }
    }

    #[test]
    fn all_zero_layer_costs_nothing() {
        let l = layer(8, 32, |_, _, _| 0);
        assert_eq!(cvn_window_cycles(&l, false), 0);
    }

    #[test]
    fn dense_layer_matches_dadn_rate() {
        // Every neuron non-zero: each lane owns Fx*Fy*I/16 neurons, so the
        // max equals DaDN's brick steps exactly when I is brick-aligned.
        let l = layer(8, 32, |_, _, _| 3);
        let dadn_rate = (l.spec.windows() * l.spec.brick_steps()) as u64;
        assert_eq!(cvn_window_cycles(&l, false), dadn_rate);
    }

    #[test]
    fn first_layer_is_dense() {
        let l = layer(8, 32, |_, _, _| 0);
        let dadn_rate = (l.spec.windows() * l.spec.brick_steps()) as u64;
        assert_eq!(cvn_window_cycles(&l, true), dadn_rate);
    }

    #[test]
    fn imbalanced_lanes_pay_the_max() {
        // Only channel 0 (lane 0) is non-zero: lane 0 has Fx*Fy = 9 neurons
        // per window, others 0 -> cost 9 per window, not 9/16.
        let l = layer(8, 32, |_, _, i| u16::from(i == 0));
        let per_window = 9u64;
        assert_eq!(cvn_window_cycles(&l, false), per_window * l.spec.windows() as u64);
    }

    #[test]
    fn balanced_sparsity_beats_imbalanced() {
        // Same number of non-zero neurons, spread across lanes vs packed
        // into one lane.
        let spread = layer(8, 32, |_, _, i| u16::from(i < 16)); // one per lane per brick0
        let packed = layer(8, 32, |_, _, i| u16::from(i % 16 == 0)); // lane 0 only
        let c_spread = cvn_window_cycles(&spread, false);
        let c_packed = cvn_window_cycles(&packed, false);
        // spread: lane max = 9 (one neuron per (fx,fy) position per lane).
        // packed: lane 0 sees 2 bricks x 9 positions = 18.
        assert!(c_packed > c_spread, "packed {c_packed} spread {c_spread}");
    }

    #[test]
    fn terms_scale_with_filters_and_bits() {
        let l = layer(8, 32, |_, _, _| 1);
        let t16 = cvn_terms(&l, false, 16);
        let t8 = cvn_terms(&l, false, 8);
        assert_eq!(t16, 2 * t8);
    }
}
