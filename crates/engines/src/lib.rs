//! Baseline accelerator models for the Pragmatic (MICRO 2017) reproduction.
//!
//! Pragmatic is evaluated against DaDianNao (the bit-parallel state of the
//! art) and Stripes (bit-serial with per-layer precisions), with two
//! zero-neuron-skipping references — ZN (ideal) and CVN (Cnvlutin-style,
//! practical) — appearing in the §II potential study. This crate models all
//! of them:
//!
//! * [`dadn`] — bit-parallel cycle and term model (§IV-B).
//! * [`stripes`] — bit-serial cycle model with per-layer precision and NM
//!   fetch overlap (§I, paper ref 4).
//! * [`zero_skip`] — ZN and CVN term models (§II-B).
//! * [`potential`] — the Figure 2/3 term-count study across all engines,
//!   including ideal PRA-fp16 and PRA-red.
//!
//! Shared conventions (see DESIGN.md): every engine performs the same
//! synapse-set reads and NM traffic ("computation was scheduled such that
//! all designs see the same reuse of synapses", §VI-A); cycle counts are
//! per chip with 256 concurrent filters; layers whose filter count exceeds
//! 256 run in `ceil(N/256)` filter groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dadn;
pub mod potential;
pub mod stripes;
pub mod zero_skip;

use pra_sim::{AccessCounters, ChipConfig, Dispatcher};
use pra_tensor::brick::{brick_steps, pallets};
use pra_tensor::ConvLayerSpec;
use pra_workloads::Representation;

/// NM/SB traffic for a layer, identical across engines by the scheduling
/// convention: one synapse-set read per (filter group × pallet × brick
/// step), neuron bricks fetched once per (pallet × brick step), NM rows
/// counted by the dispatcher's layout model.
pub fn shared_traffic(
    cfg: &ChipConfig,
    spec: &ConvLayerSpec,
    dispatcher: &Dispatcher,
) -> AccessCounters {
    let fg = cfg.filter_groups(spec.num_filters) as u64;
    let mut c = AccessCounters::new();
    for pallet in pallets(spec) {
        for step in brick_steps(spec) {
            let rows = dispatcher.fetch_cycles(spec, pallet, step);
            c.nm_row_activations += rows;
            for lane in 0..pallet.lanes {
                let b = pra_tensor::brick::brick_for(spec, pallet, lane, step);
                let inside = b.x >= 0
                    && b.y >= 0
                    && (b.x as usize) < spec.input.x
                    && (b.y as usize) < spec.input.y;
                if inside {
                    c.nm_brick_reads += 1;
                }
            }
            c.sb_set_reads += fg;
        }
    }
    // Output bricks written through NBout, once per window group of 16
    // filters.
    c.nm_brick_writes = (spec.windows() * spec.num_filters.div_ceil(cfg.brick)) as u64;
    c
}

/// Terms-per-multiplication for a bit-parallel engine under `repr` (the
/// §II convention: a `p`-bit multiplication is equivalent to `p` terms).
pub fn bit_parallel_terms_per_mult(repr: Representation) -> u64 {
    repr.bits() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_sim::NeuronMemory;

    #[test]
    fn shared_traffic_counts_sets_and_bricks() {
        let cfg = ChipConfig::dadn();
        let spec = ConvLayerSpec::new("t", (32, 4, 32), (3, 3), 512, 1, 0).unwrap();
        let d = Dispatcher::new(NeuronMemory::default());
        let c = shared_traffic(&cfg, &spec, &d);
        // 30x2 windows -> 2 pallets/row x 2 rows; 3*3*2 steps; 2 filter groups.
        let pallets = 2 * 2u64;
        let steps = 18u64;
        assert_eq!(c.sb_set_reads, pallets * steps * 2);
        // No padding -> every lane of every full pallet fetches.
        assert!(c.nm_brick_reads > 0);
        assert_eq!(c.nm_brick_writes, (30 * 2 * (512 / 16)) as u64);
    }

    #[test]
    fn padding_reduces_brick_reads() {
        let cfg = ChipConfig::dadn();
        let d = Dispatcher::new(NeuronMemory::default());
        let padded = ConvLayerSpec::new("p", (16, 16, 16), (3, 3), 16, 1, 1).unwrap();
        let unpadded = ConvLayerSpec::new("u", (18, 18, 16), (3, 3), 16, 1, 0).unwrap();
        // Same output geometry (16x16), same steps; padded layer skips
        // out-of-bounds bricks.
        let cp = shared_traffic(&cfg, &padded, &d);
        let cu = shared_traffic(&cfg, &unpadded, &d);
        assert!(cp.nm_brick_reads < cu.nm_brick_reads);
    }
}
