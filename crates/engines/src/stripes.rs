//! Stripes (STR) — bit-serial with per-layer precision (§I, ref 4).
//!
//! Stripes processes neurons bit-serially over `p` cycles, where `p` is
//! the layer's software-provided precision (Table II), while processing 16
//! windows (a pallet) per tile concurrently to match DaDN's throughput.
//! Each brick step of a pallet costs exactly `p` cycles regardless of the
//! neuron values — Stripes removes the Excess of Precision but not the
//! Lack of Explicitness. The ideal speedup over DaDN is `16/p`, degraded
//! by ragged pallets (the last pallet of a row runs with idle window
//! lanes) and, in principle, by NM fetch latency (§V-A4's `max(NMC, PC)`
//! rule, which this model applies per brick step).

use pra_sim::{AccessCounters, ChipConfig, Dispatcher, LayerResult, NeuronMemory, RunResult};
use pra_tensor::brick::{brick_steps, pallets};
use pra_workloads::{LayerView, LayerWorkload, NetworkWorkload, Representation};

use crate::shared_traffic;

/// Simulates one layer on Stripes with serial precision
/// `layer.stripes_precision`.
pub fn simulate_layer(
    cfg: &ChipConfig,
    layer: &LayerWorkload,
    repr: Representation,
) -> LayerResult {
    simulate_layer_view(cfg, layer.view(), repr, None)
}

/// Simulates one borrowed layer on Stripes. Stripes consumes the same
/// precision-trimmed streams as Pragmatic but its cost is value-blind —
/// `stripes_precision` cycles per brick step — so the view carries all
/// it needs. `traffic` reuses precomputed engine-independent NM/SB
/// counters (the §VI-A convention) instead of recounting them.
pub fn simulate_layer_view(
    cfg: &ChipConfig,
    layer: LayerView<'_>,
    repr: Representation,
    traffic: Option<&AccessCounters>,
) -> LayerResult {
    let spec = layer.spec;
    let p = u64::from(layer.stripes_precision.max(1));
    let dispatcher =
        Dispatcher::new(NeuronMemory::new(Default::default(), cfg.nm_row_neurons(repr.bits())));
    let fg = cfg.filter_groups(spec.num_filters) as u64;

    let mut cycles = 0u64;
    let mut stalls = 0u64;
    for pallet in pallets(spec) {
        for step in brick_steps(spec) {
            let nmc = dispatcher.fetch_cycles(spec, pallet, step);
            let (cost, stall) = Dispatcher::overlapped_cost(p, nmc);
            cycles += cost;
            stalls += stall;
        }
    }
    cycles *= fg;
    stalls *= fg;

    let mut counters = match traffic {
        Some(t) => *t,
        None => shared_traffic(cfg, spec, &dispatcher),
    };
    // Every multiplication is processed over p serial cycles -> p terms.
    counters.terms = spec.multiplications() * p;
    counters.stall_cycles = stalls;
    LayerResult {
        layer: spec.name().to_string(),
        cycles,
        multiplications: spec.multiplications(),
        counters,
    }
}

/// Simulates a network's convolutional layers on Stripes.
pub fn run(cfg: &ChipConfig, workload: &NetworkWorkload) -> RunResult {
    let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
    run_views(cfg, &views, workload.repr, None)
}

/// [`run`] over borrowed layer views, optionally reusing per-layer
/// engine-independent traffic counters (index-aligned with `views`).
pub fn run_views(
    cfg: &ChipConfig,
    views: &[LayerView<'_>],
    repr: Representation,
    traffic: Option<&[AccessCounters]>,
) -> RunResult {
    let mut result = RunResult::new("Stripes");
    for (idx, view) in views.iter().enumerate() {
        result.layers.push(simulate_layer_view(cfg, *view, repr, traffic.map(|t| &t[idx])));
    }
    result
}

/// Bit-exact functional model of the Stripes datapath: for each window and
/// filter, process the neurons one bit per cycle starting from the LSB —
/// AND each neuron bit with the full synapse, reduce the 16 lane terms,
/// shift by the bit position and accumulate (Fig. 4b). Neurons are first
/// trimmed to the layer's serial precision window: Stripes only ever sees
/// the `p` bits software selected.
///
/// The result equals the reference convolution over the trimmed neurons —
/// the baseline's functional-equivalence test.
pub fn compute_layer(
    spec: &pra_tensor::ConvLayerSpec,
    neurons: &pra_tensor::Tensor3<u16>,
    synapses: &[pra_tensor::Tensor3<i16>],
    window: pra_fixed::PrecisionWindow,
) -> pra_tensor::Tensor3<i64> {
    use pra_tensor::BRICK;
    let steps = pra_tensor::brick::brick_steps(spec);
    let mut out = pra_tensor::Tensor3::<i64>::zeros(spec.output_dim());
    for wy in 0..spec.out_y() {
        for wx in 0..spec.out_x() {
            let (ox, oy) = spec.window_origin(wx, wy);
            let mut acc = vec![0i64; spec.num_filters];
            for step in &steps {
                let brick =
                    neurons.brick_padded(ox + step.fx as isize, oy + step.fy as isize, step.i0);
                let trimmed: [u16; BRICK] = std::array::from_fn(|k| window.trim(brick[k]));
                for (f, filter) in synapses.iter().enumerate() {
                    // Serial cycles: bit positions lsb..=msb of the window.
                    for bit in window.lsb()..=window.msb() {
                        let mut tree = 0i64;
                        for (k, &n) in trimmed.iter().enumerate() {
                            if step.i0 + k >= spec.input.i {
                                break;
                            }
                            if n & (1 << bit) != 0 {
                                tree += i64::from(filter.get(step.fx, step.fy, step.i0 + k));
                            }
                        }
                        acc[f] += tree << bit;
                    }
                }
            }
            for (f, &v) in acc.iter().enumerate() {
                out.set(wx, wy, f, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dadn;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};

    fn layer_with_precision(nx: usize, p: u8) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (nx, nx, 32), (3, 3), 256, 1, 1).unwrap();
        let neurons = Tensor3::from_fn(spec.input, |x, y, k| ((x * y + k) % 13) as u16);
        let window =
            if p >= 14 { PrecisionWindow::full() } else { PrecisionWindow::with_width(p, 2) };
        LayerWorkload { spec, window, stripes_precision: p, neurons }
    }

    #[test]
    fn speedup_is_16_over_p_for_aligned_layers() {
        // 32x32 output: pallets divide evenly, so the ideal ratio holds
        // exactly when NM fetches stay hidden.
        let cfg = ChipConfig::dadn();
        let l = layer_with_precision(32, 8);
        let str_r = simulate_layer(&cfg, &l, Representation::Fixed16);
        let dadn_r = dadn::simulate_layer(&cfg, &l, Representation::Fixed16);
        let speedup = dadn_r.cycles as f64 / str_r.cycles as f64;
        assert!((speedup - 2.0).abs() < 1e-9, "speedup {speedup}");
    }

    #[test]
    fn precision_16_matches_dadn_on_aligned_layers() {
        let cfg = ChipConfig::dadn();
        let l = layer_with_precision(32, 16);
        let str_r = simulate_layer(&cfg, &l, Representation::Fixed16);
        let dadn_r = dadn::simulate_layer(&cfg, &l, Representation::Fixed16);
        assert_eq!(str_r.cycles, dadn_r.cycles);
    }

    #[test]
    fn ragged_pallets_cost_full_price() {
        // Ox = 17 -> 2 pallets per row (16 + 1 lanes), same cycles as 32
        // windows' worth per row.
        let cfg = ChipConfig::dadn();
        let spec = ConvLayerSpec::new("r", (19, 19, 16), (3, 3), 16, 1, 0).unwrap();
        let l = LayerWorkload {
            neurons: Tensor3::zeros(spec.input),
            spec,
            window: PrecisionWindow::with_width(8, 2),
            stripes_precision: 8,
        };
        let r = simulate_layer(&cfg, &l, Representation::Fixed16);
        // 17 rows x 2 pallets x 9 steps x 8 cycles.
        assert_eq!(r.cycles, 17 * 2 * 9 * 8);
    }

    #[test]
    fn lower_precision_is_faster() {
        let cfg = ChipConfig::dadn();
        let l5 = layer_with_precision(32, 5);
        let l9 = layer_with_precision(32, 9);
        let c5 = simulate_layer(&cfg, &l5, Representation::Fixed16).cycles;
        let c9 = simulate_layer(&cfg, &l9, Representation::Fixed16).cycles;
        assert!(c5 < c9);
    }

    #[test]
    fn terms_are_p_per_multiplication() {
        let cfg = ChipConfig::dadn();
        let l = layer_with_precision(16, 7);
        let r = simulate_layer(&cfg, &l, Representation::Fixed16);
        assert_eq!(r.counters.terms, l.spec.multiplications() * 7);
    }

    #[test]
    fn nm_fetches_hidden_at_typical_precisions() {
        let cfg = ChipConfig::dadn();
        let l = layer_with_precision(32, 8);
        let r = simulate_layer(&cfg, &l, Representation::Fixed16);
        assert_eq!(r.counters.stall_cycles, 0);
    }

    #[test]
    fn functional_model_matches_reference_on_trimmed_values() {
        use pra_tensor::conv::convolve;
        let spec = ConvLayerSpec::new("f", (7, 6, 20), (3, 3), 4, 1, 1).unwrap();
        let neurons =
            Tensor3::from_fn(spec.input, |x, y, i| ((x * 977 + y * 131 + i * 17) % 65536) as u16);
        let synapses = pra_workloads::generator::generate_synapses(&spec, 0xABBA);
        let window = PrecisionWindow::new(10, 2);
        let got = compute_layer(&spec, &neurons, &synapses, window);
        let trimmed = neurons.map(|v| window.trim(v));
        assert_eq!(got, convolve(&spec, &trimmed, &synapses));
    }

    #[test]
    fn functional_model_full_window_is_exact() {
        use pra_tensor::conv::convolve;
        let spec = ConvLayerSpec::new("f", (5, 5, 16), (2, 2), 3, 2, 0).unwrap();
        let neurons =
            Tensor3::from_fn(spec.input, |x, y, i| ((x + 3 * y + 7 * i) * 2551 % 65536) as u16);
        let synapses = pra_workloads::generator::generate_synapses(&spec, 0xD1CE);
        let got = compute_layer(&spec, &neurons, &synapses, PrecisionWindow::full());
        assert_eq!(got, convolve(&spec, &neurons, &synapses));
    }
}
