//! DaDianNao (DaDN) — the bit-parallel baseline (§IV-B).
//!
//! Each cycle a DaDN tile accepts one neuron brick (16 neurons) and 16
//! synapse bricks (one per filter), computing 256 16-bit products; the
//! 16-tile chip covers 256 filters. A window therefore takes
//! `Fx · Fy · ceil(I/16)` cycles and a layer
//! `Ox · Oy · Fx · Fy · ceil(I/16) · ceil(N/256)` cycles, independent of
//! the neuron values — DaDN processes every bit of every neuron.

use pra_sim::{AccessCounters, ChipConfig, Dispatcher, LayerResult, NeuronMemory, RunResult};
use pra_workloads::{LayerView, LayerWorkload, NetworkWorkload, Representation};

use crate::shared_traffic;

/// DaDN cycles for a layer: one brick step per cycle per window, times
/// filter groups.
pub fn layer_cycles(cfg: &ChipConfig, layer: &LayerWorkload) -> u64 {
    layer_cycles_spec(cfg, &layer.spec)
}

/// [`layer_cycles`] from the bare geometry (DaDN is value-blind).
pub fn layer_cycles_spec(cfg: &ChipConfig, spec: &pra_tensor::ConvLayerSpec) -> u64 {
    (spec.windows() * spec.brick_steps()) as u64 * cfg.filter_groups(spec.num_filters) as u64
}

/// Simulates one layer on DaDN.
pub fn simulate_layer(
    cfg: &ChipConfig,
    layer: &LayerWorkload,
    repr: Representation,
) -> LayerResult {
    simulate_layer_view(cfg, layer.view(), repr, None)
}

/// Simulates one borrowed layer on DaDN, optionally reusing precomputed
/// engine-independent NM/SB traffic counters. The dispatcher models the
/// representation's actual row capacity (256 16-bit or 512 8-bit neurons
/// per 512-byte row), the same convention the other engines use.
pub fn simulate_layer_view(
    cfg: &ChipConfig,
    layer: LayerView<'_>,
    repr: Representation,
    traffic: Option<&AccessCounters>,
) -> LayerResult {
    let spec = layer.spec;
    let mut counters = match traffic {
        Some(t) => *t,
        None => {
            let nm = NeuronMemory::new(Default::default(), cfg.nm_row_neurons(repr.bits()));
            shared_traffic(cfg, spec, &Dispatcher::new(nm))
        }
    };
    counters.terms = spec.multiplications() * crate::bit_parallel_terms_per_mult(repr);
    LayerResult {
        layer: spec.name().to_string(),
        cycles: layer_cycles_spec(cfg, spec),
        multiplications: spec.multiplications(),
        counters,
    }
}

/// Simulates a network's convolutional layers on DaDN.
pub fn run(cfg: &ChipConfig, workload: &NetworkWorkload) -> RunResult {
    let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
    run_views(cfg, &views, workload.repr, None)
}

/// [`run`] over borrowed layer views, optionally reusing per-layer
/// engine-independent traffic counters (index-aligned with `views`).
pub fn run_views(
    cfg: &ChipConfig,
    views: &[LayerView<'_>],
    repr: Representation,
    traffic: Option<&[AccessCounters]>,
) -> RunResult {
    let mut result = RunResult::new("DaDN");
    for (idx, view) in views.iter().enumerate() {
        result.layers.push(simulate_layer_view(cfg, *view, repr, traffic.map(|t| &t[idx])));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};

    fn toy_layer(nx: usize, i: usize, n: usize) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (nx, nx, i), (3, 3), n, 1, 1).unwrap();
        let neurons = Tensor3::from_fn(spec.input, |x, y, k| ((x + y + k) % 7) as u16);
        LayerWorkload { spec, window: PrecisionWindow::full(), stripes_precision: 16, neurons }
    }

    #[test]
    fn cycles_formula() {
        let cfg = ChipConfig::dadn();
        let l = toy_layer(16, 32, 256);
        // 16x16 windows, 3*3*2 brick steps, 1 filter group.
        assert_eq!(layer_cycles(&cfg, &l), 16 * 16 * 18);
    }

    #[test]
    fn filter_groups_multiply_cycles() {
        let cfg = ChipConfig::dadn();
        let small = toy_layer(16, 32, 256);
        let big = toy_layer(16, 32, 512);
        assert_eq!(layer_cycles(&cfg, &big), 2 * layer_cycles(&cfg, &small));
    }

    #[test]
    fn cycles_independent_of_values() {
        let cfg = ChipConfig::dadn();
        let mut a = toy_layer(16, 32, 64);
        let r1 = simulate_layer(&cfg, &a, Representation::Fixed16);
        a.neurons = Tensor3::from_fn(a.spec.input, |_, _, _| u16::MAX);
        let r2 = simulate_layer(&cfg, &a, Representation::Fixed16);
        assert_eq!(r1.cycles, r2.cycles);
    }

    #[test]
    fn terms_are_16_per_multiplication() {
        let cfg = ChipConfig::dadn();
        let l = toy_layer(8, 16, 16);
        let r = simulate_layer(&cfg, &l, Representation::Fixed16);
        assert_eq!(r.counters.terms, l.spec.multiplications() * 16);
        let r8 = simulate_layer(&cfg, &l, Representation::Quant8);
        assert_eq!(r8.counters.terms, l.spec.multiplications() * 8);
    }

    #[test]
    fn ragged_depth_rounds_to_brick() {
        let cfg = ChipConfig::dadn();
        let l17 = toy_layer(8, 17, 16);
        let l32 = toy_layer(8, 32, 16);
        assert_eq!(layer_cycles(&cfg, &l17), layer_cycles(&cfg, &l32));
    }
}
