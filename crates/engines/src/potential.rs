//! The §II potential study: equivalent term counts per engine (Figs. 2, 3).
//!
//! Each multiplication is accounted an equivalent number of terms
//! (additions): `bits` for the bit-parallel engines (DaDN, ZN, CVN), the
//! layer precision `p` for Stripes, and the neuron's essential bit count
//! for ideal Pragmatic — over the full stored value for PRA-fp16 and over
//! the software-trimmed value for PRA-red. A CSD (modified-Booth) variant
//! is included as the encoding ablation.
//!
//! Term sums weight every *multiplication*, i.e. each stored neuron is
//! weighted by the number of (window × filter-element) pairs that read it
//! times the filter count; the weights come from a closed-form coverage
//! count per spatial coordinate, making the whole study exact in one pass
//! over the neuron array.

use serde::{Deserialize, Serialize};

use pra_fixed::csd;
use pra_tensor::ConvLayerSpec;
use pra_workloads::{LayerWorkload, NetworkWorkload, Representation};

use crate::zero_skip;

/// Equivalent term counts for one layer or network, per engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermCounts {
    /// Bit-parallel baseline (DaDN at 16 bit, or the 8-bit engine of
    /// Fig. 3).
    pub dadn: u64,
    /// Ideal zero-neuron skipping.
    pub zn: u64,
    /// Cnvlutin-style practical zero skipping.
    pub cvn: u64,
    /// Stripes (per-layer precision).
    pub stripes: u64,
    /// Ideal Pragmatic on the full stored values (PRA-fp16).
    pub pra: u64,
    /// Ideal Pragmatic with software-trimmed values (PRA-red).
    pub pra_red: u64,
    /// Ideal Pragmatic with CSD/Booth recoding of trimmed values
    /// (extension ablation).
    pub pra_csd: u64,
}

impl TermCounts {
    /// Adds another count set into this one.
    pub fn merge(&mut self, o: &TermCounts) {
        self.dadn += o.dadn;
        self.zn += o.zn;
        self.cvn += o.cvn;
        self.stripes += o.stripes;
        self.pra += o.pra;
        self.pra_red += o.pra_red;
        self.pra_csd += o.pra_csd;
    }

    /// Terms normalized to the bit-parallel baseline (the y-axis of
    /// Figs. 2 and 3; lower is better).
    pub fn normalized(&self) -> NormalizedTerms {
        let d = self.dadn as f64;
        NormalizedTerms {
            zn: self.zn as f64 / d,
            cvn: self.cvn as f64 / d,
            stripes: self.stripes as f64 / d,
            pra: self.pra as f64 / d,
            pra_red: self.pra_red as f64 / d,
            pra_csd: self.pra_csd as f64 / d,
        }
    }
}

/// Term counts relative to the bit-parallel baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedTerms {
    /// Ideal zero skipping / baseline.
    pub zn: f64,
    /// Cnvlutin / baseline.
    pub cvn: f64,
    /// Stripes / baseline.
    pub stripes: f64,
    /// PRA-fp16 / baseline.
    pub pra: f64,
    /// PRA-red / baseline.
    pub pra_red: f64,
    /// PRA-CSD / baseline (ablation).
    pub pra_csd: f64,
}

/// Per-coordinate coverage: `coverage_x(spec)[x]` is the number of
/// `(window, filter-element)` pairs along the x dimension that read input
/// column `x`.
pub fn coverage_x(spec: &ConvLayerSpec) -> Vec<u64> {
    coverage(spec.input.x, spec.out_x(), spec.filter.x, spec.stride, spec.padding)
}

/// Per-coordinate coverage along y.
pub fn coverage_y(spec: &ConvLayerSpec) -> Vec<u64> {
    coverage(spec.input.y, spec.out_y(), spec.filter.y, spec.stride, spec.padding)
}

fn coverage(n: usize, out: usize, f: usize, stride: usize, pad: usize) -> Vec<u64> {
    let mut c = vec![0u64; n];
    for w in 0..out {
        let origin = w as isize * stride as isize - pad as isize;
        for k in 0..f {
            let x = origin + k as isize;
            if x >= 0 && (x as usize) < n {
                c[x as usize] += 1;
            }
        }
    }
    c
}

/// Computes the potential-study term counts for one layer.
///
/// `layer_index` selects CVN's dense-first-layer rule (index 0).
pub fn layer_terms(layer: &LayerWorkload, repr: Representation, layer_index: usize) -> TermCounts {
    let spec = &layer.spec;
    let bits = u64::from(repr.bits());
    let n_filters = spec.num_filters as u64;
    let cx = coverage_x(spec);
    let cy = coverage_y(spec);

    let mut zn_mults = 0u64;
    let mut pra_bits = 0u64;
    let mut red_bits = 0u64;
    let mut csd_terms = 0u64;
    let window = layer.window;
    let data = layer.neurons.as_slice();
    let (nx, ni) = (spec.input.x, spec.input.i);
    #[allow(clippy::needless_range_loop)] // x, y also index into the tensor
    for y in 0..spec.input.y {
        for x in 0..nx {
            let w = cx[x] * cy[y];
            if w == 0 {
                continue;
            }
            let base = (y * nx + x) * ni;
            for &v in &data[base..base + ni] {
                if v == 0 {
                    continue;
                }
                zn_mults += w;
                pra_bits += w * u64::from(v.count_ones());
                let t = window.trim(v);
                red_bits += w * u64::from(t.count_ones());
                csd_terms += w * u64::from(csd::term_count(t));
            }
        }
    }

    TermCounts {
        dadn: spec.multiplications() * bits,
        zn: zn_mults * n_filters * bits,
        cvn: zero_skip::cvn_terms(layer, layer_index == 0, repr.bits()),
        stripes: spec.multiplications() * u64::from(layer.stripes_precision),
        pra: pra_bits * n_filters,
        pra_red: red_bits * n_filters,
        pra_csd: csd_terms * n_filters,
    }
}

/// Sums [`layer_terms`] over a whole network workload.
pub fn network_terms(workload: &NetworkWorkload) -> TermCounts {
    let mut total = TermCounts::default();
    for (idx, layer) in workload.layers.iter().enumerate() {
        total.merge(&layer_terms(layer, workload.repr, idx));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};

    fn layer(
        nx: usize,
        i: usize,
        pad: usize,
        f: impl FnMut(usize, usize, usize) -> u16,
    ) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (nx, nx, i), (3, 3), 8, 1, pad).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, f),
            spec,
            window: PrecisionWindow::with_width(8, 2),
            stripes_precision: 8,
        }
    }

    #[test]
    fn coverage_sums_to_windows_times_filter() {
        let spec = ConvLayerSpec::new("t", (17, 17, 4), (3, 3), 2, 2, 1).unwrap();
        let cx = coverage_x(&spec);
        // Total (window, element) pairs that land in-bounds is at most
        // Ox*Fx; padding reduces it.
        let total: u64 = cx.iter().sum();
        assert!(total <= (spec.out_x() * spec.filter.x) as u64);
        assert!(total > 0);
    }

    #[test]
    fn coverage_interior_is_full_for_unit_stride() {
        let spec = ConvLayerSpec::new("t", (16, 16, 4), (3, 3), 2, 1, 1).unwrap();
        let cx = coverage_x(&spec);
        // Interior columns are read by all 3 filter elements.
        assert_eq!(cx[8], 3);
        // Border columns by fewer.
        assert!(cx[0] < 3);
    }

    #[test]
    fn zero_neurons_contribute_no_pra_terms() {
        let l = layer(8, 16, 0, |_, _, _| 0);
        let t = layer_terms(&l, Representation::Fixed16, 1);
        assert_eq!(t.pra, 0);
        assert_eq!(t.zn, 0);
        assert!(t.dadn > 0);
        assert_eq!(t.stripes, l.spec.multiplications() * 8);
    }

    #[test]
    fn pra_counts_essential_bits_exactly() {
        // Value 0b101 everywhere (2 essential bits), no padding: PRA terms
        // = 2 * mults; DaDN = 16 * mults.
        let l = layer(8, 16, 0, |_, _, _| 0b101 << 2);
        let t = layer_terms(&l, Representation::Fixed16, 1);
        assert_eq!(t.pra, l.spec.multiplications() * 2);
        assert_eq!(t.dadn, l.spec.multiplications() * 16);
        assert_eq!(t.zn, l.spec.multiplications() * 16);
    }

    #[test]
    fn trimming_reduces_pra_red_below_pra() {
        // Suffix bit below the window: trimmed away in PRA-red.
        let l = layer(8, 16, 0, |_, _, _| (0b101 << 2) | 0b1);
        let t = layer_terms(&l, Representation::Fixed16, 1);
        assert_eq!(t.pra, l.spec.multiplications() * 3);
        assert_eq!(t.pra_red, l.spec.multiplications() * 2);
    }

    #[test]
    fn csd_never_exceeds_pra_red() {
        let l = layer(8, 32, 1, |x, y, i| ((x * 7 + y * 13 + i * 3) % 251) as u16);
        let t = layer_terms(&l, Representation::Fixed16, 1);
        assert!(t.pra_csd <= t.pra_red);
    }

    #[test]
    fn padding_counts_for_dadn_but_not_zn() {
        // With padding, DaDN multiplies zeros; ZN skips them, so even a
        // dense all-ones tensor gives zn < dadn.
        let l = layer(8, 16, 1, |_, _, _| 1 << 2);
        let t = layer_terms(&l, Representation::Fixed16, 1);
        assert!(t.zn < t.dadn);
    }

    #[test]
    fn normalized_is_fraction_of_dadn() {
        let l = layer(8, 16, 0, |_, _, i| if i % 2 == 0 { 0b11 << 2 } else { 0 });
        let t = layer_terms(&l, Representation::Fixed16, 1);
        let n = t.normalized();
        // Half the neurons are zero: ZN halves the terms.
        assert!((n.zn - 0.5).abs() < 1e-12);
        // PRA: 2 bits of 16 on half the neurons.
        assert!((n.pra - 0.5 * 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn quant8_uses_8_bit_baseline() {
        let l = LayerWorkload {
            stripes_precision: 8,
            window: PrecisionWindow::new(7, 0),
            ..layer(8, 16, 0, |_, _, _| 0b11)
        };
        let t = layer_terms(&l, Representation::Quant8, 1);
        assert_eq!(t.dadn, l.spec.multiplications() * 8);
        assert_eq!(t.pra, l.spec.multiplications() * 2);
    }
}
