//! Engine cycle models against the real network geometry of all six
//! evaluated networks (value-independent identities, so zero-filled
//! tensors keep this fast).

use pra_engines::{dadn, stripes};
use pra_fixed::PrecisionWindow;
use pra_sim::ChipConfig;
use pra_tensor::Tensor3;
use pra_workloads::generator::{layer_window, stripes_precision};
use pra_workloads::{profiles, LayerWorkload, Network, NetworkWorkload, Representation};

fn zero_workload(net: Network) -> NetworkWorkload {
    let specs = net.conv_layers();
    let precs = profiles::precisions(net);
    let layers = specs
        .into_iter()
        .zip(precs)
        .map(|(spec, &p)| LayerWorkload {
            window: layer_window(Representation::Fixed16, p),
            stripes_precision: stripes_precision(Representation::Fixed16, p),
            neurons: Tensor3::zeros(spec.input),
            spec,
        })
        .collect();
    NetworkWorkload {
        network: net,
        repr: Representation::Fixed16,
        model: pra_workloads::ActivationModel {
            zero_frac: 1.0,
            sigma: 0.0,
            suffix_density: 0.0,
            outlier_prob: 0.0,
            dense_prob: 0.0,
            heavy_share: 0.0,
        },
        layers,
    }
}

#[test]
fn dadn_cycles_match_closed_form_on_all_networks() {
    let chip = ChipConfig::dadn();
    for net in Network::ALL {
        let w = zero_workload(net);
        let r = dadn::run(&chip, &w);
        for (lr, layer) in r.layers.iter().zip(&w.layers) {
            let spec = &layer.spec;
            let expected = (spec.windows() * spec.brick_steps()) as u64
                * chip.filter_groups(spec.num_filters) as u64;
            assert_eq!(lr.cycles, expected, "{net}/{}", spec.name());
        }
    }
}

#[test]
fn stripes_bounded_by_dadn_times_raggedness() {
    // Per layer, Stripes = pallets·steps·p against DaDN's windows·steps:
    // the ratio is exactly (p/16) × (pallet slots / windows). Layers with
    // tiny spatial outputs (NiN's 6×6 stages fill only 6 of 16 lanes) can
    // make bit-serial *slower* than bit-parallel — a real effect this
    // test pins down; at the network level Stripes still wins everywhere.
    let chip = ChipConfig::dadn();
    for net in Network::ALL {
        let w = zero_workload(net);
        let d = dadn::run(&chip, &w);
        let s = stripes::run(&chip, &w);
        for ((dl, sl), layer) in d.layers.iter().zip(&s.layers).zip(&w.layers) {
            let spec = &layer.spec;
            let ragged = (spec.pallets() * 16) as f64 / spec.windows() as f64;
            let p = f64::from(layer.stripes_precision);
            let bound = dl.cycles as f64 * (p / 16.0) * ragged;
            assert!(
                (sl.cycles as f64 - bound).abs() < 1.0,
                "{net}/{}: {} vs bound {bound}",
                dl.layer,
                sl.cycles
            );
        }
        assert!(s.total_cycles() < d.total_cycles(), "{net}: Stripes must win at network level");
    }
}

#[test]
fn stripes_speedup_bounded_by_ideal_16_over_p() {
    let chip = ChipConfig::dadn();
    for net in Network::ALL {
        let w = zero_workload(net);
        let d = dadn::run(&chip, &w);
        let s = stripes::run(&chip, &w);
        for ((dl, sl), layer) in d.layers.iter().zip(&s.layers).zip(&w.layers) {
            let speedup = dl.cycles as f64 / sl.cycles as f64;
            let ideal = 16.0 / f64::from(layer.stripes_precision);
            assert!(speedup <= ideal + 1e-9, "{net}/{}: {speedup:.3} > ideal {ideal:.3}", dl.layer);
        }
    }
}

#[test]
fn nm_fetch_latency_stays_hidden_on_all_real_layers() {
    // §V-A4 claims fetches overlap with processing at real strides and
    // precisions; verify no Stripes layer of any network stalls on NM.
    let chip = ChipConfig::dadn();
    for net in Network::ALL {
        let w = zero_workload(net);
        let s = stripes::run(&chip, &w);
        for l in &s.layers {
            assert_eq!(l.counters.stall_cycles, 0, "{net}/{}", l.layer);
        }
    }
}

#[test]
fn googlenet_aggregation_preserves_magnitude() {
    // The 11-group GoogLeNet approximation (DESIGN.md) should still put
    // the network's total work in the right ballpark: above AlexNet,
    // below VGG19.
    let g = Network::GoogLeNet.total_multiplications();
    assert!(g > Network::AlexNet.total_multiplications());
    assert!(g < Network::Vgg19.total_multiplications());
}

#[test]
fn window_lanes_utilization_per_network() {
    // Raggedness audit: the share of idle window lanes (pallet slots
    // minus windows) explains the Stripes deficit discussed in
    // EXPERIMENTS.md; it must stay below ~30% everywhere.
    for net in Network::ALL {
        let specs = net.conv_layers();
        let windows: u64 = specs.iter().map(|s| s.windows() as u64).sum();
        let slots: u64 = specs.iter().map(|s| (s.pallets() * 16) as u64).sum();
        let waste = 1.0 - windows as f64 / slots as f64;
        assert!(waste < 0.30, "{net}: lane waste {waste:.2}");
    }
}

#[test]
fn full_precision_stripes_equals_dadn_modulo_raggedness() {
    let chip = ChipConfig::dadn();
    for net in [Network::AlexNet, Network::Vgg19] {
        let mut w = zero_workload(net);
        for l in &mut w.layers {
            l.stripes_precision = 16;
            l.window = PrecisionWindow::full();
        }
        let d = dadn::run(&chip, &w).total_cycles();
        let s = stripes::run(&chip, &w).total_cycles();
        // With p = 16, Stripes' only deviation from DaDN is ragged pallet
        // slots (s >= d), bounded by the lane-waste audit above.
        assert!(s >= d, "{net}");
        assert!((s as f64) < d as f64 * 1.45, "{net}: {s} vs {d}");
    }
}
