//! Shape check of the §II potential study (Figs. 2 and 3) on calibrated
//! workloads: who wins, by roughly what factor. Exact paper-vs-measured
//! rows are printed by the `fig2`/`fig3` bench targets.

use pra_engines::potential;
use pra_sim::geomean;
use pra_workloads::{Network, NetworkWorkload, Representation};

#[test]
fn fig2_shape_16bit() {
    let mut zn = vec![];
    let mut cvn = vec![];
    let mut stripes = vec![];
    let mut pra = vec![];
    let mut pra_red = vec![];
    for net in Network::ALL {
        let w = NetworkWorkload::build(net, Representation::Fixed16, 0xF162);
        let n = potential::network_terms(&w).normalized();
        println!(
            "{:8}  zn={:.3} cvn={:.3} str={:.3} pra={:.3} red={:.3} csd={:.3}",
            net.name(),
            n.zn,
            n.cvn,
            n.stripes,
            n.pra,
            n.pra_red,
            n.pra_csd
        );
        zn.push(n.zn);
        cvn.push(n.cvn);
        stripes.push(n.stripes);
        pra.push(n.pra);
        pra_red.push(n.pra_red);
    }
    let (zn, cvn, stripes, pra, pra_red) =
        (geomean(&zn), geomean(&cvn), geomean(&stripes), geomean(&pra), geomean(&pra_red));
    println!("geo: zn={zn:.3} cvn={cvn:.3} str={stripes:.3} pra={pra:.3} red={pra_red:.3}");

    // Paper averages: ZN 39%, CVN 63%, STR 53%, PRA-fp16 10%, PRA-red 8%.
    // Require the ordering and the rough magnitudes.
    assert!(pra_red < pra, "red {pra_red} < pra {pra}");
    assert!(pra < zn, "pra {pra} < zn {zn}");
    assert!(zn < stripes || zn < cvn, "zn should beat practical engines");
    assert!(cvn > zn, "cvn {cvn} > zn {zn}");
    assert!((0.05..0.20).contains(&pra), "pra {pra} vs paper 0.10");
    assert!((0.04..0.16).contains(&pra_red), "pra_red {pra_red} vs paper 0.08");
    assert!((0.40..0.70).contains(&stripes), "stripes {stripes} vs paper 0.53");
    assert!((0.25..0.55).contains(&zn), "zn {zn} vs paper 0.39");
    assert!((0.45..0.85).contains(&cvn), "cvn {cvn} vs paper 0.63");
}

#[test]
fn fig3_shape_quant8() {
    let mut zn = vec![];
    let mut pra = vec![];
    for net in Network::ALL {
        let w = NetworkWorkload::build(net, Representation::Quant8, 0xF163);
        let n = potential::network_terms(&w).normalized();
        println!("{:8}  zn={:.3} pra={:.3}", net.name(), n.zn, n.pra);
        zn.push(n.zn);
        pra.push(n.pra);
    }
    let (zn, pra) = (geomean(&zn), geomean(&pra));
    println!("geo: zn={zn:.3} pra={pra:.3}");

    // Paper: skipping zero neurons removes ~30% of terms (zn ~ 0.70), PRA
    // removes up to 71% (pra ~ 0.29).
    assert!(pra < zn);
    assert!((0.20..0.45).contains(&pra), "pra {pra} vs paper ~0.29");
    assert!((0.55..0.85).contains(&zn), "zn {zn} vs paper ~0.70");
}
