//! Tensor substrate for the Pragmatic (MICRO 2017) reproduction.
//!
//! Convolutional layers process and produce *neuron arrays*: 3D arrays of
//! numbers indexed `(x, y, i)` where `i` is the channel (depth) dimension
//! (§IV-A of the paper). This crate provides:
//!
//! * [`Dim3`] and [`ConvLayerSpec`]: layer geometry (input dims, filter
//!   dims, filter count, stride, padding) and the derived output geometry.
//! * [`Tensor3`]: a dense 3D array with the accelerator's storage layout
//!   (`i` fastest, then `x`, then `y`), so a *brick* — 16 elements
//!   contiguous along `i` — is contiguous in memory.
//! * Window, brick and pallet iteration ([`window`], [`brick`]).
//! * A reference integer convolution ([`conv`]) used as the functional
//!   golden model for every accelerator in the workspace.
//!
//! # Example
//!
//! ```
//! use pra_tensor::{ConvLayerSpec, Tensor3, conv::convolve};
//!
//! // A tiny 4x4x16 input, two 3x3x16 filters, stride 1, no padding.
//! let spec = ConvLayerSpec::new("toy", (4, 4, 16), (3, 3), 2, 1, 0)?;
//! let neurons = Tensor3::from_fn(spec.input, |x, y, i| (x + y + i) as u16);
//! let synapses = spec.filters_from_fn(|_f, _x, _y, i| if i % 2 == 0 { 1i16 } else { -1 });
//! let out = convolve(&spec, &neurons, &synapses);
//! assert_eq!(out.dim(), spec.output_dim());
//! # Ok::<(), pra_tensor::ShapeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brick;
pub mod conv;
mod error;
pub mod pool;
mod shape;
mod tensor3;
pub mod window;

pub use error::ShapeError;
pub use shape::{ConvLayerSpec, Dim3, FilterDim};
pub use tensor3::Tensor3;

/// Number of elements in a brick: 16 elements contiguous along the `i`
/// dimension (§IV-A1 of the paper). This is also the number of neuron lanes
/// per window and synapse lanes per filter in DaDianNao and Pragmatic.
pub const BRICK: usize = 16;

/// Number of bricks in a pallet: 16 bricks from adjacent windows along the
/// `x` dimension, separated by the layer stride (§IV-A1).
pub const PALLET: usize = 16;
