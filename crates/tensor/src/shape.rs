use serde::{Deserialize, Serialize};

use crate::error::ShapeError;
use crate::tensor3::Tensor3;
use crate::BRICK;

/// Dimensions of a 3D neuron array: `x` (width), `y` (height) and `i`
/// (channels / depth). The paper writes the input array as `Nx × Ny × I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along the `x` (width) dimension.
    pub x: usize,
    /// Extent along the `y` (height) dimension.
    pub y: usize,
    /// Extent along the `i` (channel) dimension.
    pub i: usize,
}

impl Dim3 {
    /// Creates a new dimension triple.
    pub const fn new(x: usize, y: usize, i: usize) -> Self {
        Self { x, y, i }
    }

    /// Total number of elements `x * y * i`.
    pub const fn len(&self) -> usize {
        self.x * self.y * self.i
    }

    /// Whether the array holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of bricks along the `i` dimension, `ceil(i / 16)`.
    pub const fn bricks_deep(&self) -> usize {
        self.i.div_ceil(BRICK)
    }
}

impl From<(usize, usize, usize)> for Dim3 {
    fn from((x, y, i): (usize, usize, usize)) -> Self {
        Self { x, y, i }
    }
}

/// Spatial dimensions of a filter (`Fx × Fy`); the channel depth always
/// equals the input depth `I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilterDim {
    /// Filter extent along `x`.
    pub x: usize,
    /// Filter extent along `y`.
    pub y: usize,
}

impl From<(usize, usize)> for FilterDim {
    fn from((x, y): (usize, usize)) -> Self {
        Self { x, y }
    }
}

/// Geometry of one convolutional layer (§IV-A).
///
/// The layer applies `num_filters` 3D filters of `filter.x × filter.y × input.i`
/// synapses over the input in a sliding-window fashion with constant
/// `stride`, producing an `Ox × Oy × N` output where
/// `Ox = (Nx − Fx + 2·pad)/S + 1` and `Oy = (Ny − Fy + 2·pad)/S + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayerSpec {
    name: String,
    /// Input neuron array dimensions `Nx × Ny × I`.
    pub input: Dim3,
    /// Spatial filter dimensions `Fx × Fy`.
    pub filter: FilterDim,
    /// Number of filters `N` (= output depth).
    pub num_filters: usize,
    /// Sliding-window stride `S`.
    pub stride: usize,
    /// Symmetric zero padding applied to both spatial dimensions.
    pub padding: usize,
}

impl ConvLayerSpec {
    /// Creates a layer spec, validating that the geometry is consistent.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the stride is zero, any dimension is zero,
    /// or the (padded) input is smaller than the filter.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<Dim3>,
        filter: impl Into<FilterDim>,
        num_filters: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        let input = input.into();
        let filter = filter.into();
        if stride == 0 {
            return Err(ShapeError::new("stride must be non-zero"));
        }
        if input.is_empty() {
            return Err(ShapeError::new("input dimensions must be non-zero"));
        }
        if filter.x == 0 || filter.y == 0 || num_filters == 0 {
            return Err(ShapeError::new("filter dimensions must be non-zero"));
        }
        if input.x + 2 * padding < filter.x || input.y + 2 * padding < filter.y {
            return Err(ShapeError::new(format!(
                "padded input {}x{} smaller than filter {}x{}",
                input.x + 2 * padding,
                input.y + 2 * padding,
                filter.x,
                filter.y
            )));
        }
        Ok(Self { name: name.into(), input, filter, num_filters, stride, padding })
    }

    /// The layer's human-readable name (e.g. `"conv2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A fully-connected layer expressed as a degenerate convolution: one
    /// 1×1 window over an `inputs`-deep column, `outputs` filters. The
    /// paper's accelerators (and this reproduction's models) handle it,
    /// but with a single window there is no pallet parallelism, which is
    /// why Pragmatic targets convolutional layers (§I: they are >92% of
    /// execution time).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `inputs` or `outputs` is zero.
    pub fn fully_connected(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
    ) -> Result<Self, ShapeError> {
        Self::new(name, (1, 1, inputs), (1, 1), outputs, 1, 0)
    }

    /// Output width `Ox = (Nx − Fx + 2·pad)/S + 1`.
    pub fn out_x(&self) -> usize {
        (self.input.x + 2 * self.padding - self.filter.x) / self.stride + 1
    }

    /// Output height `Oy = (Ny − Fy + 2·pad)/S + 1`.
    pub fn out_y(&self) -> usize {
        (self.input.y + 2 * self.padding - self.filter.y) / self.stride + 1
    }

    /// Output dimensions `Ox × Oy × N`.
    pub fn output_dim(&self) -> Dim3 {
        Dim3::new(self.out_x(), self.out_y(), self.num_filters)
    }

    /// Number of output windows `Ox × Oy` (one output neuron per window and
    /// filter).
    pub fn windows(&self) -> usize {
        self.out_x() * self.out_y()
    }

    /// Number of synapses per filter, `Fx × Fy × I`.
    pub fn synapses_per_filter(&self) -> usize {
        self.filter.x * self.filter.y * self.input.i
    }

    /// Total multiplications performed by the layer:
    /// `Ox·Oy·Fx·Fy·I·N` (each window × filter inner product).
    pub fn multiplications(&self) -> u64 {
        self.windows() as u64 * self.synapses_per_filter() as u64 * self.num_filters as u64
    }

    /// Number of brick steps per window: `Fx × Fy × ceil(I/16)`.
    ///
    /// A *brick step* is the unit of work DaDianNao performs per cycle per
    /// window (one 16-deep slice of the filter volume) and the unit at which
    /// Pragmatic's neuron lanes synchronize.
    pub fn brick_steps(&self) -> usize {
        self.filter.x * self.filter.y * self.input.i.div_ceil(BRICK)
    }

    /// Number of pallets per output row, `ceil(Ox / 16)`; windows are
    /// grouped into pallets of 16 adjacent windows along `x` (§IV-A1).
    pub fn pallets_per_row(&self) -> usize {
        self.out_x().div_ceil(crate::PALLET)
    }

    /// Total number of pallets, `Oy × ceil(Ox / 16)`.
    pub fn pallets(&self) -> usize {
        self.out_y() * self.pallets_per_row()
    }

    /// Builds the filter bank as a [`Tensor3`] per filter using a generator
    /// function `(filter, x, y, i) -> synapse`.
    pub fn filters_from_fn<T: Copy + Default>(
        &self,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Vec<Tensor3<T>> {
        let fdim = Dim3::new(self.filter.x, self.filter.y, self.input.i);
        (0..self.num_filters).map(|n| Tensor3::from_fn(fdim, |x, y, i| f(n, x, y, i))).collect()
    }

    /// Coordinates of the input-space origin (top-left, first channel) of
    /// window `(wx, wy)`; may be negative when padding is used.
    pub fn window_origin(&self, wx: usize, wy: usize) -> (isize, isize) {
        (
            wx as isize * self.stride as isize - self.padding as isize,
            wy as isize * self.stride as isize - self.padding as isize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(
        input: (usize, usize, usize),
        f: (usize, usize),
        n: usize,
        s: usize,
        p: usize,
    ) -> ConvLayerSpec {
        ConvLayerSpec::new("t", input, f, n, s, p).unwrap()
    }

    #[test]
    fn output_dims_alexnet_conv1() {
        // AlexNet conv1: 227x227x3 input, 11x11 filters, stride 4 -> 55x55.
        let l = spec((227, 227, 3), (11, 11), 96, 4, 0);
        assert_eq!(l.out_x(), 55);
        assert_eq!(l.out_y(), 55);
        assert_eq!(l.output_dim(), Dim3::new(55, 55, 96));
    }

    #[test]
    fn output_dims_with_padding() {
        // 13x13 input, 3x3 filter, pad 1, stride 1 -> 13x13 (same).
        let l = spec((13, 13, 256), (3, 3), 384, 1, 1);
        assert_eq!(l.output_dim(), Dim3::new(13, 13, 384));
    }

    #[test]
    fn multiplication_count() {
        let l = spec((4, 4, 16), (3, 3), 2, 1, 0);
        // 2x2 windows, 3*3*16 synapses per filter, 2 filters.
        assert_eq!(l.multiplications(), 4 * 144 * 2);
    }

    #[test]
    fn brick_steps_rounds_up_partial_bricks() {
        let l = spec((4, 4, 17), (3, 3), 2, 1, 0);
        assert_eq!(l.brick_steps(), 3 * 3 * 2);
        let l = spec((4, 4, 3), (3, 3), 2, 1, 0);
        assert_eq!(l.brick_steps(), 3 * 3);
    }

    #[test]
    fn pallets_round_up_partial_rows() {
        let l = spec((36, 4, 16), (3, 3), 2, 1, 0); // Ox = 34
        assert_eq!(l.pallets_per_row(), 3);
        assert_eq!(l.pallets(), 3 * l.out_y());
    }

    #[test]
    fn window_origin_accounts_for_padding_and_stride() {
        let l = spec((13, 13, 16), (3, 3), 2, 2, 1);
        assert_eq!(l.window_origin(0, 0), (-1, -1));
        assert_eq!(l.window_origin(2, 1), (3, 1));
    }

    #[test]
    fn zero_stride_rejected() {
        assert!(ConvLayerSpec::new("t", (4, 4, 16), (3, 3), 2, 0, 0).is_err());
    }

    #[test]
    fn filter_larger_than_padded_input_rejected() {
        assert!(ConvLayerSpec::new("t", (4, 4, 16), (7, 7), 2, 1, 1).is_err());
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(ConvLayerSpec::new("t", (0, 4, 16), (3, 3), 2, 1, 0).is_err());
        assert!(ConvLayerSpec::new("t", (4, 4, 16), (0, 3), 2, 1, 0).is_err());
        assert!(ConvLayerSpec::new("t", (4, 4, 16), (3, 3), 0, 1, 0).is_err());
    }

    #[test]
    fn dim3_bricks_deep() {
        assert_eq!(Dim3::new(1, 1, 16).bricks_deep(), 1);
        assert_eq!(Dim3::new(1, 1, 17).bricks_deep(), 2);
        assert_eq!(Dim3::new(1, 1, 3).bricks_deep(), 1);
    }

    #[test]
    fn filters_from_fn_builds_all_filters() {
        let l = spec((4, 4, 4), (2, 2), 3, 1, 0);
        let filters = l.filters_from_fn(|n, x, y, i| (n * 1000 + x * 100 + y * 10 + i) as i16);
        assert_eq!(filters.len(), 3);
        assert_eq!(filters[2].get(1, 1, 3), 2113);
    }
}
