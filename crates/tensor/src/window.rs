//! Window enumeration for convolutional layers.
//!
//! A *window* is a filter-sized `Fx × Fy × I` sub-array of the input; there
//! is one output neuron per window and filter (§IV-A). Windows are indexed
//! by their output coordinates `(wx, wy)`.

use crate::shape::ConvLayerSpec;

/// One sliding window of a convolutional layer, identified by its output
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Output `x` coordinate of the window.
    pub wx: usize,
    /// Output `y` coordinate of the window.
    pub wy: usize,
    /// Input-space origin of the window (may be negative with padding).
    pub origin: (isize, isize),
}

/// Iterator over all windows of a layer in row-major order (`wy` outer,
/// `wx` inner), which matches the order pallets are scheduled in.
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    spec: &'a ConvLayerSpec,
    wx: usize,
    wy: usize,
}

impl<'a> Windows<'a> {
    /// Creates the iterator for `spec`.
    pub fn new(spec: &'a ConvLayerSpec) -> Self {
        Self { spec, wx: 0, wy: 0 }
    }
}

impl Iterator for Windows<'_> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.wy >= self.spec.out_y() {
            return None;
        }
        let w =
            Window { wx: self.wx, wy: self.wy, origin: self.spec.window_origin(self.wx, self.wy) };
        self.wx += 1;
        if self.wx == self.spec.out_x() {
            self.wx = 0;
            self.wy += 1;
        }
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self.spec.windows();
        let done = self.wy * self.spec.out_x() + self.wx;
        let rem = total.saturating_sub(done);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Windows<'_> {}

/// Returns an iterator over all windows of `spec`.
pub fn windows(spec: &ConvLayerSpec) -> Windows<'_> {
    Windows::new(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvLayerSpec;

    #[test]
    fn enumerates_all_windows_in_row_major_order() {
        let spec = ConvLayerSpec::new("t", (5, 4, 8), (2, 2), 1, 1, 0).unwrap();
        let ws: Vec<_> = windows(&spec).collect();
        assert_eq!(ws.len(), spec.windows());
        assert_eq!(ws[0], Window { wx: 0, wy: 0, origin: (0, 0) });
        assert_eq!(ws[1].wx, 1);
        assert_eq!(ws[spec.out_x()].wy, 1);
    }

    #[test]
    fn window_origins_follow_stride_and_padding() {
        let spec = ConvLayerSpec::new("t", (7, 7, 8), (3, 3), 1, 2, 1).unwrap();
        let ws: Vec<_> = windows(&spec).collect();
        assert_eq!(ws[0].origin, (-1, -1));
        assert_eq!(ws[1].origin, (1, -1));
    }

    #[test]
    fn size_hint_is_exact() {
        let spec = ConvLayerSpec::new("t", (5, 5, 8), (3, 3), 1, 1, 0).unwrap();
        let mut it = windows(&spec);
        assert_eq!(it.len(), 9);
        it.next();
        assert_eq!(it.len(), 8);
    }
}
