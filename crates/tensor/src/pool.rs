//! Spatial pooling — the layer type between the convolutional stages of
//! every evaluated network. Pooling does not involve synapses and runs on
//! DaDianNao's (and Pragmatic's) activation path, so the accelerators'
//! cycle models are unaffected; the functional model needs it to chain
//! layers end to end (AlexNet conv1 → pool → conv2, etc.).

use crate::shape::Dim3;
use crate::tensor3::Tensor3;

/// Max-pools `input` with a `k × k` window and the given stride,
/// truncating partial windows (Caffe-style `floor` pooling).
///
/// # Panics
///
/// Panics if `k` or `stride` is zero, or `k` exceeds either spatial
/// dimension.
pub fn max_pool(input: &Tensor3<u16>, k: usize, stride: usize) -> Tensor3<u16> {
    pool_by(input, k, stride, |acc, v| acc.max(v), 0)
}

/// Average-pools `input` with a `k × k` window and the given stride
/// (integer mean, rounding down).
///
/// # Panics
///
/// Panics as for [`max_pool`].
pub fn avg_pool(input: &Tensor3<u16>, k: usize, stride: usize) -> Tensor3<u16> {
    let dim = input.dim();
    assert!(k >= 1 && stride >= 1, "pool window and stride must be positive");
    assert!(k <= dim.x && k <= dim.y, "pool window larger than input");
    let ox = (dim.x - k) / stride + 1;
    let oy = (dim.y - k) / stride + 1;
    let mut out = Tensor3::<u16>::zeros(Dim3::new(ox, oy, dim.i));
    for wy in 0..oy {
        for wx in 0..ox {
            for i in 0..dim.i {
                let mut sum = 0u32;
                for dy in 0..k {
                    for dx in 0..k {
                        sum += u32::from(input.get(wx * stride + dx, wy * stride + dy, i));
                    }
                }
                out.set(wx, wy, i, (sum / (k * k) as u32) as u16);
            }
        }
    }
    out
}

fn pool_by(
    input: &Tensor3<u16>,
    k: usize,
    stride: usize,
    mut reduce: impl FnMut(u16, u16) -> u16,
    init: u16,
) -> Tensor3<u16> {
    let dim = input.dim();
    assert!(k >= 1 && stride >= 1, "pool window and stride must be positive");
    assert!(k <= dim.x && k <= dim.y, "pool window larger than input");
    let ox = (dim.x - k) / stride + 1;
    let oy = (dim.y - k) / stride + 1;
    let mut out = Tensor3::<u16>::zeros(Dim3::new(ox, oy, dim.i));
    for wy in 0..oy {
        for wx in 0..ox {
            for i in 0..dim.i {
                let mut acc = init;
                for dy in 0..k {
                    for dx in 0..k {
                        acc = reduce(acc, input.get(wx * stride + dx, wy * stride + dy, i));
                    }
                }
                out.set(wx, wy, i, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(nx: usize, ny: usize, i: usize) -> Tensor3<u16> {
        Tensor3::from_fn((nx, ny, i), |x, y, c| (y * 100 + x * 10 + c) as u16)
    }

    #[test]
    fn max_pool_2x2_stride_2() {
        let t = ramp(4, 4, 1);
        let p = max_pool(&t, 2, 2);
        assert_eq!(p.dim(), crate::Dim3::new(2, 2, 1));
        // Window (0,0): values {0,10,100,110} -> 110.
        assert_eq!(p.get(0, 0, 0), 110);
        assert_eq!(p.get(1, 1, 0), 330);
    }

    #[test]
    fn overlapping_pool_3x3_stride_2() {
        // AlexNet-style overlapped pooling: 4 -> (4-3)/2+1 = 1... use 5.
        let t = ramp(5, 5, 2);
        let p = max_pool(&t, 3, 2);
        assert_eq!(p.dim().x, 2);
        assert_eq!(p.dim().i, 2);
        assert_eq!(p.get(0, 0, 1), 221);
    }

    #[test]
    fn channels_pool_independently() {
        let t = Tensor3::from_fn((2, 2, 3), |x, y, c| ((x + y) * 10 + c * 100) as u16);
        let p = max_pool(&t, 2, 2);
        assert_eq!(p.get(0, 0, 0), 20);
        assert_eq!(p.get(0, 0, 2), 220);
    }

    #[test]
    fn avg_pool_means() {
        let t = Tensor3::from_fn((2, 2, 1), |x, y, _| ((y * 2 + x) * 4) as u16); // 0,4,8,12
        let p = avg_pool(&t, 2, 2);
        assert_eq!(p.get(0, 0, 0), 6);
    }

    #[test]
    fn pool_truncates_partial_windows() {
        let t = ramp(5, 5, 1);
        let p = max_pool(&t, 2, 2);
        assert_eq!(p.dim().x, 2); // column 4 dropped
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_window_panics() {
        let t = ramp(2, 2, 1);
        let _ = max_pool(&t, 3, 1);
    }
}
