use std::error::Error;
use std::fmt;

/// Error produced when constructing layer geometry from inconsistent
/// dimensions (e.g. a filter larger than the padded input, or a zero
/// stride).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer shape: {}", self.msg)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let e = ShapeError::new("stride must be non-zero");
        assert!(e.to_string().contains("stride must be non-zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
