//! Bricks and pallets (§IV-A1).
//!
//! A *brick* is a set of 16 elements of a 3D array contiguous along the `i`
//! dimension, denoted by its origin element `nB(x, y, i)`. A *pallet* is a
//! set of 16 bricks from adjacent windows along the `x` dimension (stride
//! `S` apart): `nB(x, y, i) … nB(x + 15·S, y, i)`.
//!
//! These are the units of data movement: DaDianNao broadcasts one neuron
//! brick per cycle; Pragmatic broadcasts one pallet's worth of oneffsets per
//! cycle (one brick per window lane).

use crate::shape::ConvLayerSpec;
use crate::tensor3::Tensor3;
use crate::{BRICK, PALLET};

/// Identifies a brick by its origin input-space coordinates. Spatial
/// coordinates are `isize` so that padded (out-of-bounds, all-zero) bricks
/// can be referred to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrickRef {
    /// Input-space `x` of the brick origin.
    pub x: isize,
    /// Input-space `y` of the brick origin.
    pub y: isize,
    /// Channel of the brick origin (multiple of 16 in scheduled use).
    pub i: usize,
}

/// Identifies a pallet: 16 bricks at `x + w·S` for window lanes
/// `w = 0..16`, all sharing `(y, i)` and the brick-step offset within the
/// filter volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PalletRef {
    /// Output `x` coordinate of the pallet's first window.
    pub wx0: usize,
    /// Output `y` coordinate of the pallet's windows.
    pub wy: usize,
    /// Number of valid windows in the pallet (16, or fewer for the ragged
    /// last pallet of a row).
    pub lanes: usize,
}

/// One step of the brick-granular schedule: the `(fx, fy, i0)` offset within
/// the filter volume that every window lane processes simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrickStep {
    /// Filter-space `x` offset.
    pub fx: usize,
    /// Filter-space `y` offset.
    pub fy: usize,
    /// Channel origin of the brick (multiple of 16).
    pub i0: usize,
}

/// Enumerates the pallets of a layer in schedule order (rows outer, pallets
/// along `x` inner). The last pallet of a row may have fewer than 16 lanes.
pub fn pallets(spec: &ConvLayerSpec) -> Vec<PalletRef> {
    let mut out = Vec::with_capacity(spec.pallets());
    for wy in 0..spec.out_y() {
        let mut wx0 = 0;
        while wx0 < spec.out_x() {
            let lanes = PALLET.min(spec.out_x() - wx0);
            out.push(PalletRef { wx0, wy, lanes });
            wx0 += PALLET;
        }
    }
    out
}

/// Enumerates the brick steps of a layer: all `(fx, fy, i0)` offsets of the
/// filter volume, `i0` innermost so consecutive steps reuse nearby neurons.
pub fn brick_steps(spec: &ConvLayerSpec) -> Vec<BrickStep> {
    let mut out = Vec::with_capacity(spec.brick_steps());
    for fy in 0..spec.filter.y {
        for fx in 0..spec.filter.x {
            let mut i0 = 0;
            while i0 < spec.input.i {
                out.push(BrickStep { fx, fy, i0 });
                i0 += BRICK;
            }
        }
    }
    out
}

/// The input-space brick reference for window lane `lane` of `pallet` at
/// `step`.
pub fn brick_for(
    spec: &ConvLayerSpec,
    pallet: PalletRef,
    lane: usize,
    step: BrickStep,
) -> BrickRef {
    let (ox, oy) = spec.window_origin(pallet.wx0 + lane, pallet.wy);
    BrickRef { x: ox + step.fx as isize, y: oy + step.fy as isize, i: step.i0 }
}

/// Fetches the neuron values of one pallet at one brick step: `lanes`
/// bricks of 16 neurons each. Lanes beyond `pallet.lanes` are zero-filled
/// (an idle window lane forces null terms, §V-A4).
pub fn fetch_pallet_step<T: Copy + Default>(
    spec: &ConvLayerSpec,
    neurons: &Tensor3<T>,
    pallet: PalletRef,
    step: BrickStep,
) -> [[T; BRICK]; PALLET] {
    let mut out = [[T::default(); BRICK]; PALLET];
    for (lane, slot) in out.iter_mut().enumerate().take(pallet.lanes) {
        let b = brick_for(spec, pallet, lane, step);
        *slot = neurons.brick_padded(b.x, b.y, b.i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvLayerSpec;

    fn toy_spec() -> ConvLayerSpec {
        ConvLayerSpec::new("t", (20, 3, 32), (3, 3), 4, 1, 1).unwrap()
    }

    #[test]
    fn pallet_count_matches_spec() {
        let s = toy_spec();
        assert_eq!(pallets(&s).len(), s.pallets());
    }

    #[test]
    fn ragged_last_pallet_has_fewer_lanes() {
        let s = toy_spec(); // Ox = 20 -> pallets of 16 and 4 lanes
        let ps = pallets(&s);
        assert_eq!(ps[0].lanes, 16);
        assert_eq!(ps[1].lanes, 4);
        assert_eq!(ps[1].wx0, 16);
    }

    #[test]
    fn brick_steps_cover_filter_volume() {
        let s = toy_spec();
        let steps = brick_steps(&s);
        assert_eq!(steps.len(), s.brick_steps());
        assert_eq!(steps[0], BrickStep { fx: 0, fy: 0, i0: 0 });
        assert_eq!(steps[1], BrickStep { fx: 0, fy: 0, i0: 16 });
        assert_eq!(steps[2], BrickStep { fx: 1, fy: 0, i0: 0 });
    }

    #[test]
    fn brick_for_applies_window_stride() {
        let s = ConvLayerSpec::new("t", (40, 8, 16), (3, 3), 4, 2, 0).unwrap();
        let p = PalletRef { wx0: 0, wy: 1, lanes: 16 };
        let step = BrickStep { fx: 1, fy: 2, i0: 0 };
        let b0 = brick_for(&s, p, 0, step);
        let b1 = brick_for(&s, p, 1, step);
        assert_eq!(b0, BrickRef { x: 1, y: 4, i: 0 });
        assert_eq!(b1.x - b0.x, 2); // stride apart
    }

    #[test]
    fn fetch_pallet_step_zero_fills_idle_lanes() {
        let s = toy_spec();
        let n = Tensor3::from_fn(s.input, |_, _, _| 7u16);
        let ps = pallets(&s);
        let got = fetch_pallet_step(&s, &n, ps[1], BrickStep { fx: 1, fy: 1, i0: 0 });
        // lanes 0..4 are real (interior -> all 7s), lanes 4..16 idle (zeros)
        assert!(got[0].iter().all(|&v| v == 7));
        assert!(got[4].iter().all(|&v| v == 0));
        assert!(got[15].iter().all(|&v| v == 0));
    }

    #[test]
    fn fetch_pallet_step_padding_is_zero() {
        let s = toy_spec();
        let n = Tensor3::from_fn(s.input, |_, _, _| 7u16);
        let ps = pallets(&s);
        // First window at (0,0) with pad 1: at step (fx=0, fy=1) lane 0
        // reads x = -1 (padding -> zeros) while lane 1 reads x = 0, y = 0.
        let got = fetch_pallet_step(&s, &n, ps[0], BrickStep { fx: 0, fy: 1, i0: 0 });
        assert!(got[0].iter().all(|&v| v == 0));
        assert!(got[1].iter().all(|&v| v == 7)); // lane 1 reads x = 0
    }
}
