//! Reference integer convolution — the functional golden model.
//!
//! Computes §IV-A's layer equation directly:
//!
//! ```text
//! o(k, l, f) = Σ_y Σ_x Σ_i  s_f(x, y, i) · n(x + k·S − pad, y + l·S − pad, i)
//! ```
//!
//! with unsigned 16-bit neurons, signed 16-bit synapses and exact `i64`
//! accumulation. Every accelerator model in the workspace is verified
//! bit-exactly against this function.

use crate::shape::ConvLayerSpec;
use crate::tensor3::Tensor3;

/// Computes the layer's raw output sums (no activation function applied).
///
/// `neurons` must have the layer's input dimensions; `synapses` must contain
/// `spec.num_filters` tensors of `Fx × Fy × I`.
///
/// # Panics
///
/// Panics if the tensor shapes do not match `spec`.
pub fn convolve(
    spec: &ConvLayerSpec,
    neurons: &Tensor3<u16>,
    synapses: &[Tensor3<i16>],
) -> Tensor3<i64> {
    check_shapes(spec, neurons, synapses);
    let mut out = Tensor3::<i64>::zeros(spec.output_dim());
    for wy in 0..spec.out_y() {
        for wx in 0..spec.out_x() {
            let (ox, oy) = spec.window_origin(wx, wy);
            for (f, filter) in synapses.iter().enumerate() {
                let mut acc: i64 = 0;
                for fy in 0..spec.filter.y {
                    for fx in 0..spec.filter.x {
                        let (nx, ny) = (ox + fx as isize, oy + fy as isize);
                        for i in 0..spec.input.i {
                            let n = neurons.get_padded(nx, ny, i) as i64;
                            let s = filter.get(fx, fy, i) as i64;
                            acc += n * s;
                        }
                    }
                }
                out.set(wx, wy, f, acc);
            }
        }
    }
    out
}

/// Applies a rectifier (ReLU) and re-quantizes raw `i64` sums back to
/// unsigned 16-bit neurons by an arithmetic right shift — the minimal model
/// of the activation path between layers (the paper's `f` in Fig. 5).
///
/// Values are clamped to `u16::MAX` after shifting.
pub fn relu_requantize(raw: &Tensor3<i64>, shift: u32) -> Tensor3<u16> {
    raw.map(|v| {
        let v = v.max(0) >> shift;
        v.min(u16::MAX as i64) as u16
    })
}

fn check_shapes(spec: &ConvLayerSpec, neurons: &Tensor3<u16>, synapses: &[Tensor3<i16>]) {
    assert_eq!(neurons.dim(), spec.input, "neuron tensor shape mismatch");
    assert_eq!(synapses.len(), spec.num_filters, "filter count mismatch");
    for (f, s) in synapses.iter().enumerate() {
        assert_eq!(
            s.dim(),
            crate::Dim3::new(spec.filter.x, spec.filter.y, spec.input.i),
            "filter {f} shape mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvLayerSpec;

    #[test]
    fn identity_filter_extracts_center() {
        // 1x1 filter with weight 1 on channel 0: output = input channel 0.
        let spec = ConvLayerSpec::new("t", (3, 3, 2), (1, 1), 1, 1, 0).unwrap();
        let n =
            Tensor3::from_fn(spec.input, |x, y, i| if i == 0 { (10 * x + y) as u16 } else { 99 });
        let s = spec.filters_from_fn(|_, _, _, i| if i == 0 { 1i16 } else { 0 });
        let o = convolve(&spec, &n, &s);
        assert_eq!(o.get(2, 1, 0), 21);
        assert_eq!(o.get(0, 0, 0), 0);
    }

    #[test]
    fn all_ones_filter_sums_window() {
        let spec = ConvLayerSpec::new("t", (4, 4, 1), (2, 2), 1, 1, 0).unwrap();
        let n = Tensor3::from_fn(spec.input, |_, _, _| 1u16);
        let s = spec.filters_from_fn(|_, _, _, _| 1i16);
        let o = convolve(&spec, &n, &s);
        // Every 2x2 window of ones sums to 4.
        for wy in 0..3 {
            for wx in 0..3 {
                assert_eq!(o.get(wx, wy, 0), 4);
            }
        }
    }

    #[test]
    fn negative_synapses_produce_negative_sums() {
        let spec = ConvLayerSpec::new("t", (2, 2, 1), (2, 2), 1, 1, 0).unwrap();
        let n = Tensor3::from_fn(spec.input, |_, _, _| 3u16);
        let s = spec.filters_from_fn(|_, _, _, _| -2i16);
        let o = convolve(&spec, &n, &s);
        assert_eq!(o.get(0, 0, 0), -24);
    }

    #[test]
    fn padding_contributes_zero() {
        let spec = ConvLayerSpec::new("t", (2, 2, 1), (3, 3), 1, 1, 1).unwrap();
        let n = Tensor3::from_fn(spec.input, |_, _, _| 1u16);
        let s = spec.filters_from_fn(|_, _, _, _| 1i16);
        let o = convolve(&spec, &n, &s);
        // Corner window covers only the 2x2 valid region.
        assert_eq!(o.get(0, 0, 0), 4);
    }

    #[test]
    fn stride_skips_windows() {
        let spec = ConvLayerSpec::new("t", (5, 5, 1), (1, 1), 1, 2, 0).unwrap();
        let n = Tensor3::from_fn(spec.input, |x, y, _| (y * 5 + x) as u16);
        let s = spec.filters_from_fn(|_, _, _, _| 1i16);
        let o = convolve(&spec, &n, &s);
        assert_eq!(o.dim().x, 3);
        assert_eq!(o.get(1, 1, 0), (2 * 5 + 2) as i64);
    }

    #[test]
    fn relu_requantize_rectifies_and_shifts() {
        let raw = Tensor3::from_vec((2, 1, 1), vec![-100i64, 1 << 10]);
        let q = relu_requantize(&raw, 4);
        assert_eq!(q.as_slice(), &[0, 64]);
    }

    #[test]
    fn relu_requantize_saturates() {
        let raw = Tensor3::from_vec((1, 1, 1), vec![i64::MAX / 2]);
        let q = relu_requantize(&raw, 0);
        assert_eq!(q.get(0, 0, 0), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "filter count mismatch")]
    fn shape_mismatch_panics() {
        let spec = ConvLayerSpec::new("t", (2, 2, 1), (2, 2), 2, 1, 0).unwrap();
        let n = Tensor3::<u16>::zeros(spec.input);
        let s = vec![Tensor3::<i16>::zeros((2, 2, 1))];
        let _ = convolve(&spec, &n, &s);
    }

    #[test]
    fn max_magnitude_does_not_overflow() {
        // Worst case: 65535 * 32767 * (filter volume) must fit in i64.
        let spec = ConvLayerSpec::new("t", (3, 3, 4), (3, 3), 1, 1, 0).unwrap();
        let n = Tensor3::from_fn(spec.input, |_, _, _| u16::MAX);
        let s = spec.filters_from_fn(|_, _, _, _| i16::MIN);
        let o = convolve(&spec, &n, &s);
        let expected = (u16::MAX as i64) * (i16::MIN as i64) * 36;
        assert_eq!(o.get(0, 0, 0), expected);
    }
}
