use serde::{Deserialize, Serialize};

use crate::shape::Dim3;
use crate::BRICK;

/// A dense 3D array in the accelerator storage layout.
///
/// Elements are stored with `i` fastest, then `x`, then `y`:
/// `index(x, y, i) = (y · Nx + x) · I + i`. A *brick* — [`BRICK`] elements
/// contiguous along `i` — is therefore contiguous in memory, matching how
/// DaDianNao and Pragmatic lay neurons out in the Neuron Memory (§IV-A1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor3<T> {
    dim: Dim3,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor3<T> {
    /// Creates a tensor filled with `T::default()`.
    pub fn zeros(dim: impl Into<Dim3>) -> Self {
        let dim = dim.into();
        Self { dim, data: vec![T::default(); dim.len()] }
    }

    /// Creates a tensor by evaluating `f(x, y, i)` for every element.
    pub fn from_fn(dim: impl Into<Dim3>, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let dim = dim.into();
        let mut data = Vec::with_capacity(dim.len());
        for y in 0..dim.y {
            for x in 0..dim.x {
                for i in 0..dim.i {
                    data.push(f(x, y, i));
                }
            }
        }
        Self { dim, data }
    }

    /// Creates a tensor from a flat vector in storage order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim.len()`.
    pub fn from_vec(dim: impl Into<Dim3>, data: Vec<T>) -> Self {
        let dim = dim.into();
        assert_eq!(
            data.len(),
            dim.len(),
            "data length {} does not match dimensions {:?}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// The tensor's dimensions.
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Flat storage-order index of `(x, y, i)`.
    #[inline]
    pub fn index_of(&self, x: usize, y: usize, i: usize) -> usize {
        debug_assert!(x < self.dim.x && y < self.dim.y && i < self.dim.i);
        (y * self.dim.x + x) * self.dim.i + i
    }

    /// Element at `(x, y, i)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, i: usize) -> T {
        self.data[self.index_of(x, y, i)]
    }

    /// Element at `(x, y, i)`, or `T::default()` (zero) when the spatial
    /// coordinates fall outside the array. This implements zero padding:
    /// `i` must still be in bounds.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim.i`.
    #[inline]
    pub fn get_padded(&self, x: isize, y: isize, i: usize) -> T {
        if x < 0 || y < 0 || x as usize >= self.dim.x || y as usize >= self.dim.y {
            T::default()
        } else {
            self.get(x as usize, y as usize, i)
        }
    }

    /// Sets the element at `(x, y, i)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, i: usize, v: T) {
        let idx = self.index_of(x, y, i);
        self.data[idx] = v;
    }

    /// The brick (up to [`BRICK`] elements along `i`) starting at channel
    /// `i0`, zero-extended to exactly [`BRICK`] elements when it crosses the
    /// end of the channel dimension, and zero-filled entirely when the
    /// spatial coordinates are out of bounds (padding).
    pub fn brick_padded(&self, x: isize, y: isize, i0: usize) -> [T; BRICK] {
        let mut out = [T::default(); BRICK];
        if x < 0 || y < 0 || x as usize >= self.dim.x || y as usize >= self.dim.y {
            return out;
        }
        let (x, y) = (x as usize, y as usize);
        if i0 < self.dim.i {
            let n = (i0 + BRICK).min(self.dim.i) - i0;
            let base = self.index_of(x, y, i0);
            out[..n].copy_from_slice(&self.data[base..base + n]);
        }
        out
    }

    /// Applies `f` to every element, producing a new tensor of the same
    /// shape.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tensor3<U> {
        Tensor3 { dim: self.dim, data: self.data.iter().map(|&v| f(v)).collect() }
    }
}

impl<T> Tensor3<T> {
    /// Flat view of the underlying storage in layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the underlying storage in layout order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat storage vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_i_fastest() {
        let t = Tensor3::from_fn((2, 2, 3), |x, y, i| (x * 100 + y * 10 + i) as u16);
        // (y, x, i) order: (0,0,*), (1,0,*)... wait: x varies before y.
        assert_eq!(t.as_slice()[0], 0); // (0,0,0)
        assert_eq!(t.as_slice()[1], 1); // (0,0,1)
        assert_eq!(t.as_slice()[3], 100); // (1,0,0)
        assert_eq!(t.as_slice()[6], 10); // (0,1,0)
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor3::<u16>::zeros((3, 4, 5));
        t.set(2, 3, 4, 77);
        assert_eq!(t.get(2, 3, 4), 77);
        assert_eq!(t.get(0, 0, 0), 0);
    }

    #[test]
    fn get_padded_returns_zero_outside() {
        let t = Tensor3::from_fn((2, 2, 1), |_, _, _| 5u16);
        assert_eq!(t.get_padded(-1, 0, 0), 0);
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(2, 0, 0), 0);
        assert_eq!(t.get_padded(1, 1, 0), 5);
    }

    #[test]
    fn brick_padded_full_brick_is_contiguous() {
        let t = Tensor3::from_fn((1, 1, 32), |_, _, i| i as u16);
        let b = t.brick_padded(0, 0, 16);
        assert_eq!(b[0], 16);
        assert_eq!(b[15], 31);
    }

    #[test]
    fn brick_padded_zero_extends_ragged_depth() {
        let t = Tensor3::from_fn((1, 1, 20), |_, _, i| (i + 1) as u16);
        let b = t.brick_padded(0, 0, 16);
        assert_eq!(&b[..4], &[17, 18, 19, 20]);
        assert_eq!(&b[4..], &[0; 12]);
    }

    #[test]
    fn brick_padded_out_of_bounds_is_zero() {
        let t = Tensor3::from_fn((2, 2, 16), |_, _, _| 9u16);
        assert_eq!(t.brick_padded(-1, 0, 0), [0u16; BRICK]);
        assert_eq!(t.brick_padded(0, 5, 0), [0u16; BRICK]);
    }

    #[test]
    fn map_preserves_shape() {
        let t = Tensor3::from_fn((2, 3, 4), |x, _, _| x as u16);
        let u = t.map(|v| v as u32 * 2);
        assert_eq!(u.dim(), t.dim());
        assert_eq!(u.get(1, 2, 3), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Tensor3::from_vec((2, 2, 2), vec![0u16; 7]);
    }
}
