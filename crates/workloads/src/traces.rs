//! Activation-trace serialization: feed *real* traces to the simulators.
//!
//! The reproduction generates calibrated synthetic streams, but everything
//! downstream only needs per-layer neuron tensors — so users who can run
//! the original networks can dump their activations and evaluate every
//! engine on real data. The `PRAT` format is deliberately simple:
//!
//! ```text
//! magic   b"PRAT"
//! u32 LE  version (1)
//! u32 LE  representation bits (8 or 16)
//! u32 LE  layer count
//! per layer:
//!   u32 LE       name length, then UTF-8 name bytes
//!   u32 LE ×3    dims x, y, i
//!   u16 LE ×len  stored neuron values, tensor storage order
//! ```

use std::io::{self, Read, Write};

use pra_tensor::{Dim3, Tensor3};

use crate::generator::{
    layer_window, stripes_precision, LayerWorkload, NetworkWorkload, Representation,
};
use crate::networks::Network;
use crate::profiles;

const MAGIC: &[u8; 4] = b"PRAT";
const VERSION: u32 = 1;

/// Writes a network workload's activation streams as a trace.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(mut w: W, workload: &NetworkWorkload) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&workload.repr.bits().to_le_bytes())?;
    w.write_all(&(workload.layers.len() as u32).to_le_bytes())?;
    for layer in &workload.layers {
        let name = layer.spec.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let d = layer.neurons.dim();
        for v in [d.x, d.y, d.i] {
            w.write_all(&(v as u32).to_le_bytes())?;
        }
        for &v in layer.neurons.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// One layer read back from a trace.
#[derive(Debug, Clone)]
pub struct TraceLayer {
    /// Layer name recorded in the trace.
    pub name: String,
    /// The stored neuron values.
    pub neurons: Tensor3<u16>,
}

/// Reads a trace: the representation plus each layer's neuron tensor.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic, version,
/// representation width or truncated payload, besides propagating I/O
/// errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<(Representation, Vec<TraceLayer>)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a PRAT trace (bad magic)"));
    }
    if read_u32(&mut r)? != VERSION {
        return Err(bad("unsupported PRAT version"));
    }
    let repr = match read_u32(&mut r)? {
        16 => Representation::Fixed16,
        8 => Representation::Quant8,
        other => return Err(bad(format!("unsupported representation width {other}"))),
    };
    let layers = read_u32(&mut r)? as usize;
    if layers > 10_000 {
        return Err(bad("implausible layer count"));
    }
    let mut out = Vec::with_capacity(layers);
    for _ in 0..layers {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(bad("implausible layer name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("layer name is not UTF-8"))?;
        let (x, y, i) =
            (read_u32(&mut r)? as usize, read_u32(&mut r)? as usize, read_u32(&mut r)? as usize);
        let dim = Dim3::new(x, y, i);
        // Bulk read: one read_exact per layer instead of one per neuron
        // (a warm cache load parses tens of MB through this path).
        let mut bytes = vec![0u8; dim.len() * 2];
        r.read_exact(&mut bytes)?;
        let data: Vec<u16> =
            bytes.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
        if repr == Representation::Quant8 && data.iter().any(|&v| v > 255) {
            return Err(bad("8-bit trace contains values above 255"));
        }
        out.push(TraceLayer { name, neurons: Tensor3::from_vec(dim, data) });
    }
    Ok((repr, out))
}

/// Rebuilds a [`NetworkWorkload`] from a trace, attaching `network`'s
/// layer geometry and Table II precision windows. Layer tensors must match
/// the network's input dimensions layer by layer.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if the trace's layer count or
/// any tensor shape does not match `network`.
pub fn workload_from_trace<R: Read>(r: R, network: Network) -> io::Result<NetworkWorkload> {
    let (repr, traced) = read_trace(r)?;
    let specs = network.conv_layers();
    let precs = profiles::precisions(network);
    if traced.len() != specs.len() {
        return Err(bad(format!(
            "trace has {} layers but {network} has {}",
            traced.len(),
            specs.len()
        )));
    }
    let layers = specs
        .into_iter()
        .zip(precs)
        .zip(traced)
        .map(|((spec, &p), t)| {
            if t.neurons.dim() != spec.input {
                return Err(bad(format!(
                    "layer {}: trace dims {:?} but the network expects {:?}",
                    spec.name(),
                    t.neurons.dim(),
                    spec.input
                )));
            }
            Ok(LayerWorkload {
                window: layer_window(repr, p),
                stripes_precision: stripes_precision(repr, p),
                neurons: t.neurons,
                spec,
            })
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(NetworkWorkload {
        network,
        repr,
        // Marker value: traced workloads carry no generator parameters.
        model: crate::generator::ActivationModel {
            zero_frac: f64::NAN,
            sigma: f64::NAN,
            suffix_density: f64::NAN,
            outlier_prob: f64::NAN,
            dense_prob: f64::NAN,
            heavy_share: f64::NAN,
        },
        layers,
    })
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ActivationModel;

    fn tiny_workload() -> NetworkWorkload {
        let model = ActivationModel {
            zero_frac: 0.5,
            sigma: 0.1,
            suffix_density: 0.3,
            outlier_prob: 0.0,
            dense_prob: 0.05,
            heavy_share: 0.5,
        };
        NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, model, 77)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let w = tiny_workload();
        let mut buf = Vec::new();
        write_trace(&mut buf, &w).unwrap();
        let (repr, layers) = read_trace(buf.as_slice()).unwrap();
        assert_eq!(repr, Representation::Fixed16);
        assert_eq!(layers.len(), w.layers.len());
        for (t, l) in layers.iter().zip(&w.layers) {
            assert_eq!(t.name, l.spec.name());
            assert_eq!(&t.neurons, &l.neurons);
        }
    }

    #[test]
    fn workload_round_trip_is_simulatable() {
        let w = tiny_workload();
        let mut buf = Vec::new();
        write_trace(&mut buf, &w).unwrap();
        let back = workload_from_trace(buf.as_slice(), Network::AlexNet).unwrap();
        assert_eq!(back.layers.len(), 5);
        assert_eq!(back.layers[0].neurons, w.layers[0].neurons);
        assert_eq!(back.layers[2].stripes_precision, 5);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_trace_rejected() {
        let w = tiny_workload();
        let mut buf = Vec::new();
        write_trace(&mut buf, &w).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_network_rejected() {
        let w = tiny_workload();
        let mut buf = Vec::new();
        write_trace(&mut buf, &w).unwrap();
        let err = workload_from_trace(buf.as_slice(), Network::Vgg19).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("layers"));
    }

    #[test]
    fn oversized_q8_values_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PRAT");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&8u32.to_le_bytes()); // Quant8
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'x');
        for d in [1u32, 1, 1] {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        buf.extend_from_slice(&300u16.to_le_bytes());
        assert!(read_trace(buf.as_slice()).is_err());
    }
}
