//! Calibration of the synthetic activation model against Table I.
//!
//! For each network and representation the paper reports the essential-bit
//! content of the real activation stream over all neurons ("All") and over
//! non-zero neurons ("NZ"). Two generator parameters are derived from the
//! published row:
//!
//! * `zero_frac = 1 − All/NZ` — exact by definition of the two columns;
//! * `sigma` — fitted by bisection so the measured NZ essential-bit
//!   fraction of the generated stream matches the published NZ value.
//!
//! The suffix-noise density and prefix-outlier probability model the bits
//! that §V-F software trimming removes; they are global constants chosen
//! so the software-guidance benefit lands in the range of Table V (~19%
//! on average), and they are *included* in the calibration measurement so
//! Table I still matches.
//!
//! Bisection uses common random numbers (the same seed for every candidate
//! sigma), making the objective deterministic and monotone enough for a
//! robust fit. Results are cached process-wide.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::generator::{
    layer_window, mix_seed, ActivationModel, DrawParts, Representation, Sampler,
};
use crate::networks::Network;
use crate::profiles;

/// Suffix-noise density for the 16-bit fixed-point generator: each of the
/// two bits below the precision window of a non-zero neuron is set with
/// this probability (the fraction tail of a real-valued activation is
/// essentially uniform, density ½).
pub const SUFFIX_DENSITY: f64 = 0.35;

/// Prefix-outlier probability for the 16-bit fixed-point generator: a
/// non-zero neuron carries one stray bit above the precision window with
/// this probability (profiled precisions tolerate a small accuracy loss,
/// so real streams contain rare values that trimming clips).
pub const OUTLIER_PROB: f64 = 0.008;

/// Heavy-tail share: probability that a non-zero neuron is drawn uniformly
/// over the precision window instead of from the half-Gaussian. Fitted
/// once, globally, so the pallet-synchronized PRAsingle speedup lands at
/// the paper's Fig. 9 geometric mean (2.59×); the half-Gaussian alone has
/// too thin a tail and overstates Pragmatic's gains (max-oneffset
/// statistics drive the cycle count).
pub const DENSE_PROB: f64 = 0.10;

/// Heavy share inside the dense component (see
/// [`ActivationModel::heavy_share`]): fitted together with [`DENSE_PROB`]
/// against Fig. 9 (pallet sync) and Fig. 10 (column sync).
pub const HEAVY_SHARE: f64 = 0.40;

/// Tail constants for the 8-bit quantized generator. Quantization
/// compresses the value range (the layer maximum maps to 255), flattening
/// the popcount tail relative to 16-bit fixed point, so the quantized
/// stream needs a lighter dense component to land on the paper's Fig. 12
/// speedups while Table I (which fixes the mean) still holds.
pub const DENSE_PROB_Q8: f64 = 0.03;

/// Heavy share for the 8-bit quantized generator (see [`DENSE_PROB_Q8`]).
pub const HEAVY_SHARE_Q8: f64 = 0.25;

/// Deterministic seed used by all calibration measurements (hashed into
/// workload cache keys: changing it changes the fit, hence the stream).
pub(crate) const CALIBRATION_SEED: u64 = 0xCA11_B8A7_E5EE_D001;

/// Total samples drawn per objective evaluation, spread across layers in
/// proportion to their neuron counts (hashed into workload cache keys).
pub(crate) const CALIBRATION_SAMPLES: usize = 120_000;

/// Returns the calibrated activation model for `network` under `repr`,
/// fitting it on first use and caching the result process-wide.
pub fn calibrated_model(network: Network, repr: Representation) -> ActivationModel {
    static CACHE: OnceLock<Mutex<BTreeMap<(Network, Representation), ActivationModel>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(m) = cache.lock().expect("calibration cache poisoned").get(&(network, repr)) {
        return *m;
    }
    let fitted = fit_model(network, repr);
    cache.lock().expect("calibration cache poisoned").insert((network, repr), fitted);
    fitted
}

/// Fits the activation model without touching the cache.
pub fn fit_model(network: Network, repr: Representation) -> ActivationModel {
    match repr {
        Representation::Fixed16 => fit_model_with_tail(network, repr, DENSE_PROB, HEAVY_SHARE),
        Representation::Quant8 => fit_model_with_tail(network, repr, DENSE_PROB_Q8, HEAVY_SHARE_Q8),
    }
}

/// Fits the activation model with explicit tail parameters.
pub fn fit_model_with_tail(
    network: Network,
    repr: Representation,
    dense_prob: f64,
    heavy_share: f64,
) -> ActivationModel {
    let row = profiles::table1(network);
    let (all, nz) = match repr {
        Representation::Fixed16 => (row.fp16_all, row.fp16_nz),
        Representation::Quant8 => (row.q8_all, row.q8_nz),
    };
    let zero_frac = 1.0 - all / nz;
    let (suffix_density, outlier_prob) = match repr {
        Representation::Fixed16 => (SUFFIX_DENSITY, OUTLIER_PROB),
        Representation::Quant8 => (0.0, 0.0),
    };

    let plan = sample_plan(network);
    // Freeze the sigma-independent randomness once; every bisection
    // iteration then re-assembles the same draws under its candidate
    // sigma ([`ActivationModel::store_parts`] — pure arithmetic). This
    // is the classic common-random-numbers objective, factored so its
    // cost is one sampling pass plus cheap per-iteration popcounts
    // instead of a full re-sample per iteration.
    let base = ActivationModel {
        zero_frac: 0.0,
        sigma: 1.0,
        suffix_density,
        outlier_prob,
        dense_prob,
        heavy_share,
    };
    let draws = freeze_draws(&base, repr, &plan);
    let objective = |sigma: f64| -> f64 {
        let model = ActivationModel { sigma, ..base };
        nz_fraction(&model, repr, &draws)
    };

    // Bisection on sigma; the NZ essential-bit fraction grows with sigma
    // (larger magnitudes set more window bits). Common random numbers make
    // the objective deterministic.
    let (mut lo, mut hi) = (1e-4, 2.0);
    let f_lo = objective(lo);
    let f_hi = objective(hi);
    let target = nz;
    let sigma = if target <= f_lo {
        lo
    } else if target >= f_hi {
        hi
    } else {
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if objective(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    ActivationModel { zero_frac, sigma, suffix_density, outlier_prob, dense_prob, heavy_share }
}

/// Per-layer sampling plan: (Table II precision, samples to draw).
fn sample_plan(network: Network) -> Vec<(u8, usize)> {
    let specs = network.conv_layers();
    let precs = profiles::precisions(network);
    let total_neurons: f64 = specs.iter().map(|s| s.input.len() as f64).sum();
    specs
        .iter()
        .zip(precs.iter().copied())
        .map(|(spec, p)| {
            let share = spec.input.len() as f64 / total_neurons;
            let n = ((CALIBRATION_SAMPLES as f64 * share) as usize).max(2_000);
            (p, n)
        })
        .collect()
}

/// Draws the sigma-independent calibration set: one non-zero draw per
/// planned sample, each remembering its layer's precision window.
fn freeze_draws(
    base: &ActivationModel,
    repr: Representation,
    plan: &[(u8, usize)],
) -> Vec<(pra_fixed::PrecisionWindow, DrawParts)> {
    let mut draws = Vec::with_capacity(plan.iter().map(|&(_, n)| n).sum());
    for (idx, &(p, n)) in plan.iter().enumerate() {
        let window = layer_window(repr, p);
        let mut sampler = Sampler::seeded(mix_seed(CALIBRATION_SEED, idx as u64));
        for _ in 0..n {
            draws.push((window, base.draw_nonzero_parts(window, repr, &mut sampler)));
        }
    }
    draws
}

/// The essential-bit fraction of the frozen non-zero draws assembled
/// under `model`'s sigma.
fn nz_fraction(
    model: &ActivationModel,
    repr: Representation,
    draws: &[(pra_fixed::PrecisionWindow, DrawParts)],
) -> f64 {
    let bits: u64 = draws
        .iter()
        .map(|&(window, parts)| model.store_parts(parts, window, repr).count_ones() as u64)
        .sum();
    bits as f64 / (draws.len() as f64 * repr.bits() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::BitContentStats;

    /// End-to-end calibration check: generated streams reproduce Table I
    /// within a percentage point (absolute, on the fraction scale).
    fn check_network(net: Network, repr: Representation) {
        let row = profiles::table1(net);
        let (all_t, nz_t) = match repr {
            Representation::Fixed16 => (row.fp16_all, row.fp16_nz),
            Representation::Quant8 => (row.q8_all, row.q8_nz),
        };
        let model = calibrated_model(net, repr);
        let plan = sample_plan(net);
        let mut stats = BitContentStats::new();
        for (idx, &(p, n)) in plan.iter().enumerate() {
            let window = layer_window(repr, p);
            let mut sampler = Sampler::seeded(mix_seed(0xFEED, idx as u64));
            for _ in 0..n {
                stats.record(model.sample(window, repr, &mut sampler));
            }
        }
        let all_m = stats.fraction_all(repr.bits());
        let nz_m = stats.fraction_nonzero(repr.bits());
        assert!(
            (all_m - all_t).abs() < 0.012,
            "{net} {repr}: All measured {all_m:.3} target {all_t:.3}"
        );
        assert!(
            (nz_m - nz_t).abs() < 0.012,
            "{net} {repr}: NZ measured {nz_m:.3} target {nz_t:.3}"
        );
    }

    #[test]
    fn alexnet_fixed16_matches_table1() {
        check_network(Network::AlexNet, Representation::Fixed16);
    }

    #[test]
    fn vgg19_fixed16_matches_table1() {
        check_network(Network::Vgg19, Representation::Fixed16);
    }

    #[test]
    fn googlenet_fixed16_matches_table1() {
        check_network(Network::GoogLeNet, Representation::Fixed16);
    }

    #[test]
    fn alexnet_quant8_matches_table1() {
        check_network(Network::AlexNet, Representation::Quant8);
    }

    #[test]
    fn vgg19_quant8_matches_table1() {
        check_network(Network::Vgg19, Representation::Quant8);
    }

    #[test]
    fn zero_frac_matches_table1_ratio() {
        for net in Network::ALL {
            let row = profiles::table1(net);
            let m = calibrated_model(net, Representation::Fixed16);
            assert!((m.zero_frac - (1.0 - row.fp16_all / row.fp16_nz)).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_returns_same_model() {
        let a = calibrated_model(Network::VggM, Representation::Fixed16);
        let b = calibrated_model(Network::VggM, Representation::Fixed16);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_is_deterministic() {
        let a = fit_model(Network::VggS, Representation::Quant8);
        let b = fit_model(Network::VggS, Representation::Quant8);
        assert_eq!(a, b);
    }
}
