//! Table I measurement over generated workloads.

use pra_fixed::BitContentStats;

use crate::generator::{NetworkWorkload, Representation};
use crate::networks::Network;

/// Essential-bit statistics of a full network workload (all layer input
/// streams combined, weighted by layer neuron count as in Table I).
pub fn measure_workload(workload: &NetworkWorkload) -> BitContentStats {
    let mut stats = BitContentStats::new();
    for layer in &workload.layers {
        stats.record_all(layer.neurons.as_slice());
    }
    stats
}

/// One measured row of Table I: `(all, nz)` essential-bit fractions.
pub fn measured_table1(network: Network, repr: Representation, seed: u64) -> (f64, f64) {
    let w = NetworkWorkload::build(network, repr, seed);
    let stats = measure_workload(&w);
    (stats.fraction_all(repr.bits()), stats.fraction_nonzero(repr.bits()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn full_workload_reproduces_table1_alexnet() {
        let row = profiles::table1(Network::AlexNet);
        let (all, nz) = measured_table1(Network::AlexNet, Representation::Fixed16, 42);
        assert!((all - row.fp16_all).abs() < 0.012, "All {all:.3} vs {:.3}", row.fp16_all);
        assert!((nz - row.fp16_nz).abs() < 0.012, "NZ {nz:.3} vs {:.3}", row.fp16_nz);
    }

    #[test]
    fn full_workload_reproduces_table1_vggm_quant8() {
        let row = profiles::table1(Network::VggM);
        let (all, nz) = measured_table1(Network::VggM, Representation::Quant8, 42);
        assert!((all - row.q8_all).abs() < 0.012, "All {all:.3} vs {:.3}", row.q8_all);
        assert!((nz - row.q8_nz).abs() < 0.012, "NZ {nz:.3} vs {:.3}", row.q8_nz);
    }

    #[test]
    fn stats_merge_over_layers() {
        let w = NetworkWorkload::build(Network::AlexNet, Representation::Fixed16, 1);
        let total = measure_workload(&w);
        let sum: u64 = w.layers.iter().map(|l| l.neurons.as_slice().len() as u64).sum();
        assert_eq!(total.neurons, sum);
    }
}
