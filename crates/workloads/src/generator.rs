//! Seeded synthetic activation streams.
//!
//! The paper measures real ImageNet traces; this reproduction generates
//! synthetic streams whose bit-level statistics are calibrated to the
//! paper's own measurements (Table I), which is what every experiment
//! actually depends on (DESIGN.md §2). The value model follows the paper's
//! observation that "the measurements are consistent with the neuron values
//! following a normal distribution centered at 0, and then being filtered
//! by a rectifier linear unit" (§II-A):
//!
//! * a neuron is zero with probability `zero_frac` (the rectified half),
//! * otherwise its magnitude is a half-Gaussian scaled into the layer's
//!   precision window (Table II),
//! * low-order *suffix* bits below the window and rare *prefix* outlier
//!   bits above it model the fraction tail and outlier values that the
//!   software-provided precision of §V-F trims away.
//!
//! Generation is organized as independent *row jobs*: every `(layer, y)`
//! row of a network draws from its own [`Sampler`] stream, seeded through
//! the SplitMix64-style [`mix_seed`] mixer. Because each row's stream
//! depends only on `(workload seed, layer index, row index)` — never on
//! which thread runs the job or in what order — fanning the jobs out on
//! the rayon pool produces bit-identical tensors to the serial path
//! (DESIGN.md §8).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pra_fixed::PrecisionWindow;
use pra_tensor::{ConvLayerSpec, Tensor3};

use crate::networks::Network;
use crate::profiles;

/// Bit position where fixed-point precision windows are anchored: every
/// layer keeps `lsb = 2`, leaving two suffix-noise bits below the window.
pub const WINDOW_LSB: u8 = 2;

/// Derives an independent child seed from `seed` for stream number
/// `stream` — the SplitMix64 finalizer over the golden-ratio sequence.
///
/// Every generation job (one per layer, then one per row within a layer)
/// seeds its own [`Sampler`] with a mixed seed, so jobs can run in any
/// order, on any thread, and still produce the exact bytes the serial
/// path produces. The finalizer's avalanche guarantees that adjacent
/// stream numbers land on statistically independent xoshiro states
/// (a plain `seed ^ stream` would hand neighbouring rows correlated
/// low bits).
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded activation-stream sampler: the RNG plus the cached second
/// output of the Box–Muller transform.
///
/// Box–Muller produces two independent normals per `(ln, sqrt, sin_cos)`
/// evaluation; the naive generator discarded the second one and paid the
/// transcendental cost on every non-zero draw. Caching the spare halves
/// the dominant cost of workload generation without changing the
/// distribution — each cached value is an independent standard normal.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: StdRng,
    spare_normal: Option<f64>,
}

impl Sampler {
    /// Creates a sampler for one generation stream.
    pub fn seeded(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// 64 uniformly random bits.
    #[inline]
    fn bits(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The absolute value of a standard normal draw (Box–Muller with the
    /// spare second output cached across calls).
    fn half_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z.abs();
        }
        let u1: f64 = self.uniform().max(1e-12);
        let u2: f64 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare_normal = Some(r * s);
        (r * c).abs()
    }
}

/// The two neuron representations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Representation {
    /// DaDianNao's 16-bit fixed point (§I).
    Fixed16,
    /// TensorFlow's 8-bit quantized representation (§VI-F).
    Quant8,
}

impl Representation {
    /// Container width in bits (16 or 8).
    pub fn bits(&self) -> u32 {
        match self {
            Representation::Fixed16 => 16,
            Representation::Quant8 => 8,
        }
    }

    /// Largest oneffset power (15 or 7).
    pub fn max_pow(&self) -> u8 {
        (self.bits() - 1) as u8
    }
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::Fixed16 => f.write_str("16-bit fixed-point"),
            Representation::Quant8 => f.write_str("8-bit quantized"),
        }
    }
}

/// Distribution parameters of the synthetic activation stream for one
/// network and representation. Produced by [`crate::calibrate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationModel {
    /// Probability a neuron is exactly zero (rectified).
    pub zero_frac: f64,
    /// Half-Gaussian scale, relative to the precision-window maximum.
    pub sigma: f64,
    /// Probability that each suffix bit (below the window) of a non-zero
    /// neuron is set. Zero in the 8-bit quantized representation.
    pub suffix_density: f64,
    /// Probability that a non-zero neuron carries a prefix outlier bit
    /// above the window. Zero in the 8-bit quantized representation.
    pub outlier_prob: f64,
    /// Probability that a non-zero neuron comes from the *dense* mixture
    /// component instead of the half-Gaussian: real activation traces
    /// contain a share of large, bit-dense values that dominate the
    /// max-oneffset statistics Pragmatic's synchronization pays for.
    /// Fitted once, globally, against Fig. 9/10 (see `calibrate`).
    pub dense_prob: f64,
    /// Within the dense component, the share of *heavy* draws (uniform
    /// over the full window, reaching the highest bit densities); the rest
    /// are *medium* draws with 3–6 essential bits. Medium draws set the
    /// per-column (max-of-16) statistics, heavy draws the per-pallet
    /// (max-of-256) statistics.
    pub heavy_share: f64,
}

/// The sigma-independent randomness of one non-zero draw: the dense
/// component's magnitude (or the half-Gaussian variate when the draw
/// took the Gaussian component) plus the tail bits. Splitting the draw
/// this way lets the calibration bisection freeze one set of draws and
/// re-assemble them under every candidate sigma
/// ([`ActivationModel::store_parts`]) instead of re-sampling the full
/// stream per iteration.
#[derive(Debug, Clone, Copy)]
pub struct DrawParts {
    /// Dense-component magnitude; `None` when the draw took the
    /// half-Gaussian component.
    pub dense_mag: Option<u32>,
    /// Standard half-Gaussian variate (0 when the draw is dense).
    pub gaussian: f64,
    /// Suffix-noise and prefix-outlier bits (0 under `Quant8`).
    pub tail: u16,
}

impl ActivationModel {
    /// Draws one stored neuron value for a layer whose precision window is
    /// `window`, in representation `repr`.
    ///
    /// One uniform draw decides both the rectification and the mixture
    /// component: conditioned on landing in `[zero_frac, 1)`, the rescaled
    /// draw is again uniform, so the component decision costs no extra
    /// randomness. The tail bits of a fixed-point neuron are decided by
    /// 16-bit slices of a single 64-bit draw (probabilities quantized to
    /// `1/65536` — self-consistent, because calibration measures through
    /// this exact path).
    pub fn sample(&self, window: PrecisionWindow, repr: Representation, s: &mut Sampler) -> u16 {
        let u = s.uniform();
        if u < self.zero_frac {
            return 0;
        }
        let u_nz = (u - self.zero_frac) / (1.0 - self.zero_frac);
        let parts = self.draw_parts(u_nz, window, repr, s);
        self.store_parts(parts, window, repr)
    }

    /// Draws the sigma-independent randomness of a non-zero neuron —
    /// the calibration entry point (its objective model has
    /// `zero_frac = 0`, so every draw is non-zero by construction).
    pub fn draw_nonzero_parts(
        &self,
        window: PrecisionWindow,
        repr: Representation,
        s: &mut Sampler,
    ) -> DrawParts {
        let u_nz = s.uniform();
        self.draw_parts(u_nz, window, repr, s)
    }

    /// The sigma-independent half of [`ActivationModel::sample`]:
    /// component choice, dense magnitude or standard half-Gaussian
    /// variate, and tail bits. `u_nz` is uniform in `[0, 1)` given that
    /// the neuron is non-zero.
    fn draw_parts(
        &self,
        u_nz: f64,
        window: PrecisionWindow,
        repr: Representation,
        s: &mut Sampler,
    ) -> DrawParts {
        let dense = u_nz < self.dense_prob;
        let (p, max) = match repr {
            Representation::Fixed16 => {
                let p = window.width() as u32;
                (p, (1u32 << p) - 1)
            }
            Representation::Quant8 => (8, 255),
        };
        let dense_mag = dense.then(|| self.dense_draw(p, max, u_nz / self.dense_prob, s));
        let gaussian = if dense { 0.0 } else { s.half_gaussian() };
        let tail = match repr {
            Representation::Fixed16 => self.tail_bits(window, s),
            Representation::Quant8 => 0,
        };
        DrawParts { dense_mag, gaussian, tail }
    }

    /// The sigma-dependent half of [`ActivationModel::sample`]: scales
    /// the half-Gaussian variate into the window under this model's
    /// `sigma` and assembles the stored value. Pure arithmetic — the
    /// calibration fit calls this against frozen [`DrawParts`] to
    /// evaluate many sigma candidates without re-drawing.
    pub fn store_parts(
        &self,
        parts: DrawParts,
        window: PrecisionWindow,
        repr: Representation,
    ) -> u16 {
        let max = match repr {
            Representation::Fixed16 => (1u32 << window.width() as u32) - 1,
            Representation::Quant8 => 255,
        };
        let mag = match parts.dense_mag {
            Some(m) => m,
            None => (parts.gaussian * self.sigma * max as f64).round() as u32,
        };
        let core = mag.clamp(1, max) as u16;
        match repr {
            Representation::Fixed16 => (core << window.lsb()) | parts.tail,
            Representation::Quant8 => core,
        }
    }

    /// Suffix-noise bits below the window, plus the rare prefix outlier
    /// bit above it.
    fn tail_bits(&self, window: PrecisionWindow, s: &mut Sampler) -> u16 {
        if self.suffix_density == 0.0 && self.outlier_prob == 0.0 {
            return 0;
        }
        let mut chunks = s.bits();
        let mut avail = 4u32;
        let mut out = 0u16;
        let suffix_t = (self.suffix_density * 65536.0) as u64;
        for b in 0..window.lsb() {
            if avail == 0 {
                chunks = s.bits();
                avail = 4;
            }
            if chunks & 0xFFFF < suffix_t {
                out |= 1 << b;
            }
            chunks >>= 16;
            avail -= 1;
        }
        if window.msb() < 15 {
            if avail == 0 {
                chunks = s.bits();
            }
            if chunks & 0xFFFF < (self.outlier_prob * 65536.0) as u64 {
                let hi = s.rng.random_range(window.msb() + 1..=15);
                out |= 1 << hi;
            }
        }
        out
    }

    /// One draw of the dense mixture component: heavy (uniform over the
    /// window) with probability `heavy_share`, otherwise medium — 3 to 6
    /// essential bits scattered uniformly across the window. `heavy_u` is
    /// the caller's rescaled component draw, uniform given *dense*.
    fn dense_draw(&self, p: u32, max: u32, heavy_u: f64, s: &mut Sampler) -> u32 {
        if heavy_u < self.heavy_share {
            return s.rng.random_range(1..=max);
        }
        let k = s.rng.random_range(3..=6u32).min(p);
        let mut v = 0u32;
        while v.count_ones() < k {
            v |= 1 << s.rng.random_range(0..p);
        }
        v
    }
}

/// One convolutional layer plus its generated input-neuron stream.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer geometry.
    pub spec: ConvLayerSpec,
    /// The layer's precision window (Table II precision anchored at
    /// [`WINDOW_LSB`] for fixed point; the full 8-bit window for Quant8).
    pub window: PrecisionWindow,
    /// The Stripes serial precision for this layer: the Table II value for
    /// fixed point, clamped to 8 for the quantized representation.
    pub stripes_precision: u8,
    /// Generated input neurons (stored values; quantized codes fit in the
    /// low 8 bits under [`Representation::Quant8`]).
    pub neurons: Tensor3<u16>,
}

impl LayerWorkload {
    /// The layer's neurons after §V-F software trimming (prefix/suffix
    /// bits outside the precision window zeroed).
    pub fn trimmed_neurons(&self) -> Tensor3<u16> {
        let w = self.window;
        self.neurons.map(|v| w.trim(v))
    }

    /// A borrowed view of this layer, for callers that already own (or
    /// share) the neuron tensor and must not clone it into a workload.
    pub fn view(&self) -> LayerView<'_> {
        LayerView {
            spec: &self.spec,
            window: self.window,
            stripes_precision: self.stripes_precision,
            neurons: &self.neurons,
        }
    }
}

/// A borrowed [`LayerWorkload`]: the same simulation inputs without
/// ownership of the neuron tensor. The inference driver hands the cycle
/// simulator views of its live activation tensors instead of cloning
/// every layer's activations into a fresh workload.
#[derive(Debug, Clone, Copy)]
pub struct LayerView<'a> {
    /// Layer geometry.
    pub spec: &'a ConvLayerSpec,
    /// The layer's precision window.
    pub window: PrecisionWindow,
    /// The Stripes serial precision for this layer.
    pub stripes_precision: u8,
    /// The layer's input neurons.
    pub neurons: &'a Tensor3<u16>,
}

/// A network's full convolutional workload in one representation.
#[derive(Debug, Clone)]
pub struct NetworkWorkload {
    /// Which network.
    pub network: Network,
    /// Which representation.
    pub repr: Representation,
    /// The activation model the layers were drawn from.
    pub model: ActivationModel,
    /// Per-layer geometry and neuron streams.
    pub layers: Vec<LayerWorkload>,
}

/// One independent generation job: a single `(layer, y)` row of neurons
/// with its own mixed seed (see the module docs for the determinism
/// argument).
struct RowJob<'a> {
    window: PrecisionWindow,
    seed: u64,
    row: &'a mut [u16],
}

impl NetworkWorkload {
    /// Generates the workload for `network` under `repr` using the
    /// calibrated activation model and a deterministic `seed`,
    /// parallelizing row generation across the rayon pool.
    ///
    /// This is the *pure* generation kernel: it never touches disk.
    /// Cache-aware construction goes through
    /// [`crate::cache::ArtifactStore::workload`] (DESIGN.md §9/§15),
    /// which consults the content-addressed store first and falls back
    /// to this — bit-identical by the round-trip guarantee.
    pub fn build(network: Network, repr: Representation, seed: u64) -> Self {
        let model = crate::calibrate::calibrated_model(network, repr);
        Self::build_with_model(network, repr, model, seed)
    }

    /// [`NetworkWorkload::build`] on the serial path — bit-identical
    /// output, used to pin the serial-equals-parallel invariant.
    pub fn build_serial(network: Network, repr: Representation, seed: u64) -> Self {
        let model = crate::calibrate::calibrated_model(network, repr);
        Self::build_impl(network, repr, model, seed, false)
    }

    /// Generates the workload from an explicit activation model
    /// (parallel).
    pub fn build_with_model(
        network: Network,
        repr: Representation,
        model: ActivationModel,
        seed: u64,
    ) -> Self {
        Self::build_impl(network, repr, model, seed, true)
    }

    /// [`NetworkWorkload::build_with_model`] on the serial path.
    pub fn build_with_model_serial(
        network: Network,
        repr: Representation,
        model: ActivationModel,
        seed: u64,
    ) -> Self {
        Self::build_impl(network, repr, model, seed, false)
    }

    /// Shared generation core: allocate every layer tensor, flatten the
    /// network into per-row jobs, then run the jobs — on the rayon pool
    /// or in order. Each job's sampler stream depends only on the
    /// workload seed, the layer index and the row index, so both paths
    /// (and any thread count) produce bit-identical tensors.
    fn build_impl(
        network: Network,
        repr: Representation,
        model: ActivationModel,
        seed: u64,
        parallel: bool,
    ) -> Self {
        let specs = network.conv_layers();
        let precs = profiles::precisions(network);
        let mut layers: Vec<LayerWorkload> = specs
            .into_iter()
            .zip(precs.iter().copied())
            .map(|(spec, p)| LayerWorkload {
                window: layer_window(repr, p),
                stripes_precision: stripes_precision(repr, p),
                neurons: Tensor3::zeros(spec.input),
                spec,
            })
            .collect();
        let jobs: Vec<RowJob<'_>> = layers
            .iter_mut()
            .enumerate()
            .flat_map(|(idx, layer)| {
                let layer_seed = mix_seed(seed, idx as u64);
                let window = layer.window;
                let row_len = (layer.spec.input.x * layer.spec.input.i).max(1);
                layer.neurons.as_mut_slice().chunks_mut(row_len).enumerate().map(move |(y, row)| {
                    RowJob { window, seed: mix_seed(layer_seed, y as u64), row }
                })
            })
            .collect();
        let fill = |job: RowJob<'_>| {
            let mut sampler = Sampler::seeded(job.seed);
            for v in job.row.iter_mut() {
                *v = model.sample(job.window, repr, &mut sampler);
            }
        };
        if parallel && rayon::current_num_threads() > 1 {
            jobs.into_par_iter().for_each(fill);
        } else {
            jobs.into_iter().for_each(fill);
        }
        Self { network, repr, model, layers }
    }

    /// Total multiplications over all layers.
    pub fn total_multiplications(&self) -> u64 {
        self.layers.iter().map(|l| l.spec.multiplications()).sum()
    }
}

/// The precision window used for a layer of Table II precision `p` under
/// `repr`: `p` bits anchored at [`WINDOW_LSB`] for fixed point; the full
/// 8-bit window for the quantized representation.
pub fn layer_window(repr: Representation, p: u8) -> PrecisionWindow {
    match repr {
        Representation::Fixed16 => PrecisionWindow::with_width(p, WINDOW_LSB),
        Representation::Quant8 => PrecisionWindow::new(7, 0),
    }
}

/// The per-layer Stripes serial precision under `repr` (Table II clamped
/// to the container width).
pub fn stripes_precision(repr: Representation, p: u8) -> u8 {
    match repr {
        Representation::Fixed16 => p,
        Representation::Quant8 => p.min(8),
    }
}

/// Deterministic synapse bank for functional verification: small signed
/// values spanning positives, negatives and zeros.
pub fn generate_synapses(spec: &ConvLayerSpec, seed: u64) -> Vec<Tensor3<i16>> {
    let mut rng = StdRng::seed_from_u64(seed);
    spec.filters_from_fn(|_, _, _, _| {
        // Mix of magnitudes; ~10% zeros.
        if rng.random::<f64>() < 0.1 {
            0
        } else {
            let mag: i32 = rng.random_range(-256..=256);
            mag as i16
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ActivationModel {
        ActivationModel {
            zero_frac: 0.5,
            sigma: 0.1,
            suffix_density: 0.4,
            outlier_prob: 0.01,
            dense_prob: 0.05,
            heavy_share: 0.5,
        }
    }

    #[test]
    fn sample_respects_zero_fraction_roughly() {
        let m = toy_model();
        let w = PrecisionWindow::with_width(8, WINDOW_LSB);
        let mut s = Sampler::seeded(1);
        let zeros =
            (0..20_000).filter(|_| m.sample(w, Representation::Fixed16, &mut s) == 0).count();
        let frac = zeros as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn nonzero_fixed16_samples_have_window_bits() {
        let m = ActivationModel {
            outlier_prob: 0.0,
            suffix_density: 0.0,
            dense_prob: 0.0,
            ..toy_model()
        };
        let w = PrecisionWindow::with_width(9, WINDOW_LSB);
        let mut s = Sampler::seeded(2);
        for _ in 0..5_000 {
            let v = m.sample(w, Representation::Fixed16, &mut s);
            if v != 0 {
                assert_eq!(w.trim(v), v, "value {v:#018b} escapes window");
                assert!(v >= 1 << WINDOW_LSB);
            }
        }
    }

    #[test]
    fn quant8_samples_fit_in_8_bits() {
        let m = toy_model();
        let w = layer_window(Representation::Quant8, 9);
        let mut s = Sampler::seeded(3);
        for _ in 0..5_000 {
            let v = m.sample(w, Representation::Quant8, &mut s);
            assert!(v <= 255);
        }
    }

    #[test]
    fn larger_sigma_means_more_essential_bits() {
        let w = PrecisionWindow::with_width(9, WINDOW_LSB);
        let mean_bits = |sigma: f64| {
            let m = ActivationModel {
                zero_frac: 0.0,
                sigma,
                suffix_density: 0.0,
                outlier_prob: 0.0,
                dense_prob: 0.0,
                heavy_share: 0.0,
            };
            let mut s = Sampler::seeded(4);
            (0..20_000)
                .map(|_| m.sample(w, Representation::Fixed16, &mut s).count_ones() as f64)
                .sum::<f64>()
                / 20_000.0
        };
        assert!(mean_bits(0.02) < mean_bits(0.2));
        assert!(mean_bits(0.2) < mean_bits(0.9));
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let m = toy_model();
        let a = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        let b = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        assert_eq!(a.layers[2].neurons, b.layers[2].neurons);
        let c = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 8);
        assert_ne!(a.layers[2].neurons, c.layers[2].neurons);
    }

    #[test]
    fn layers_use_table2_windows() {
        let m = toy_model();
        let w = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        let widths: Vec<u8> = w.layers.iter().map(|l| l.window.width()).collect();
        assert_eq!(widths, vec![9, 8, 5, 5, 7]);
    }

    #[test]
    fn trimmed_neurons_live_in_window() {
        let m = toy_model();
        let w = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 9);
        let layer = &w.layers[0];
        let trimmed = layer.trimmed_neurons();
        for &v in trimmed.as_slice().iter().take(10_000) {
            assert_eq!(layer.window.trim(v), v);
        }
    }

    #[test]
    fn stripes_precision_clamped_for_quant8() {
        assert_eq!(stripes_precision(Representation::Fixed16, 12), 12);
        assert_eq!(stripes_precision(Representation::Quant8, 12), 8);
        assert_eq!(stripes_precision(Representation::Quant8, 5), 5);
    }

    #[test]
    fn synapses_are_mixed_sign() {
        let spec = ConvLayerSpec::new("t", (8, 8, 16), (3, 3), 4, 1, 0).unwrap();
        let banks = generate_synapses(&spec, 11);
        let all: Vec<i16> = banks.iter().flat_map(|t| t.as_slice().iter().copied()).collect();
        assert!(all.iter().any(|&s| s > 0));
        assert!(all.iter().any(|&s| s < 0));
        assert!(all.contains(&0));
    }
}
