//! Seeded synthetic activation streams.
//!
//! The paper measures real ImageNet traces; this reproduction generates
//! synthetic streams whose bit-level statistics are calibrated to the
//! paper's own measurements (Table I), which is what every experiment
//! actually depends on (DESIGN.md §2). The value model follows the paper's
//! observation that "the measurements are consistent with the neuron values
//! following a normal distribution centered at 0, and then being filtered
//! by a rectifier linear unit" (§II-A):
//!
//! * a neuron is zero with probability `zero_frac` (the rectified half),
//! * otherwise its magnitude is a half-Gaussian scaled into the layer's
//!   precision window (Table II),
//! * low-order *suffix* bits below the window and rare *prefix* outlier
//!   bits above it model the fraction tail and outlier values that the
//!   software-provided precision of §V-F trims away.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pra_fixed::PrecisionWindow;
use pra_tensor::{ConvLayerSpec, Tensor3};

use crate::networks::Network;
use crate::profiles;

/// Bit position where fixed-point precision windows are anchored: every
/// layer keeps `lsb = 2`, leaving two suffix-noise bits below the window.
pub const WINDOW_LSB: u8 = 2;

/// The two neuron representations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Representation {
    /// DaDianNao's 16-bit fixed point (§I).
    Fixed16,
    /// TensorFlow's 8-bit quantized representation (§VI-F).
    Quant8,
}

impl Representation {
    /// Container width in bits (16 or 8).
    pub fn bits(&self) -> u32 {
        match self {
            Representation::Fixed16 => 16,
            Representation::Quant8 => 8,
        }
    }

    /// Largest oneffset power (15 or 7).
    pub fn max_pow(&self) -> u8 {
        (self.bits() - 1) as u8
    }
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::Fixed16 => f.write_str("16-bit fixed-point"),
            Representation::Quant8 => f.write_str("8-bit quantized"),
        }
    }
}

/// Distribution parameters of the synthetic activation stream for one
/// network and representation. Produced by [`crate::calibrate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationModel {
    /// Probability a neuron is exactly zero (rectified).
    pub zero_frac: f64,
    /// Half-Gaussian scale, relative to the precision-window maximum.
    pub sigma: f64,
    /// Probability that each suffix bit (below the window) of a non-zero
    /// neuron is set. Zero in the 8-bit quantized representation.
    pub suffix_density: f64,
    /// Probability that a non-zero neuron carries a prefix outlier bit
    /// above the window. Zero in the 8-bit quantized representation.
    pub outlier_prob: f64,
    /// Probability that a non-zero neuron comes from the *dense* mixture
    /// component instead of the half-Gaussian: real activation traces
    /// contain a share of large, bit-dense values that dominate the
    /// max-oneffset statistics Pragmatic's synchronization pays for.
    /// Fitted once, globally, against Fig. 9/10 (see `calibrate`).
    pub dense_prob: f64,
    /// Within the dense component, the share of *heavy* draws (uniform
    /// over the full window, reaching the highest bit densities); the rest
    /// are *medium* draws with 3–6 essential bits. Medium draws set the
    /// per-column (max-of-16) statistics, heavy draws the per-pallet
    /// (max-of-256) statistics.
    pub heavy_share: f64,
}

impl ActivationModel {
    /// Draws one stored neuron value for a layer whose precision window is
    /// `window`, in representation `repr`.
    pub fn sample(&self, window: PrecisionWindow, repr: Representation, rng: &mut StdRng) -> u16 {
        if rng.random::<f64>() < self.zero_frac {
            return 0;
        }
        match repr {
            Representation::Fixed16 => {
                let p = window.width() as u32;
                let max = (1u32 << p) - 1;
                let mag = if rng.random::<f64>() < self.dense_prob {
                    self.dense_draw(p, max, rng)
                } else {
                    (half_gaussian(rng) * self.sigma * max as f64).round() as u32
                };
                let core = mag.clamp(1, max) as u16;
                let mut stored = core << window.lsb();
                for b in 0..window.lsb() {
                    if rng.random::<f64>() < self.suffix_density {
                        stored |= 1 << b;
                    }
                }
                if window.msb() < 15 && rng.random::<f64>() < self.outlier_prob {
                    let hi = rng.random_range(window.msb() + 1..=15);
                    stored |= 1 << hi;
                }
                stored
            }
            Representation::Quant8 => {
                let mag = if rng.random::<f64>() < self.dense_prob {
                    self.dense_draw(8, 255, rng)
                } else {
                    (half_gaussian(rng) * self.sigma * 255.0).round() as u32
                };
                mag.clamp(1, 255) as u16
            }
        }
    }

    /// One draw of the dense mixture component: heavy (uniform over the
    /// window) with probability `heavy_share`, otherwise medium — 3 to 6
    /// essential bits scattered uniformly across the window.
    fn dense_draw(&self, p: u32, max: u32, rng: &mut StdRng) -> u32 {
        if rng.random::<f64>() < self.heavy_share {
            return rng.random_range(1..=max);
        }
        let k = rng.random_range(3..=6u32).min(p);
        let mut v = 0u32;
        while v.count_ones() < k {
            v |= 1 << rng.random_range(0..p);
        }
        v
    }
}

/// A standard half-Gaussian sample via Box–Muller (the `rand_distr` crate
/// is not among the vendored dependencies).
fn half_gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    let z: f64 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    z.abs()
}

/// One convolutional layer plus its generated input-neuron stream.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer geometry.
    pub spec: ConvLayerSpec,
    /// The layer's precision window (Table II precision anchored at
    /// [`WINDOW_LSB`] for fixed point; the full 8-bit window for Quant8).
    pub window: PrecisionWindow,
    /// The Stripes serial precision for this layer: the Table II value for
    /// fixed point, clamped to 8 for the quantized representation.
    pub stripes_precision: u8,
    /// Generated input neurons (stored values; quantized codes fit in the
    /// low 8 bits under [`Representation::Quant8`]).
    pub neurons: Tensor3<u16>,
}

impl LayerWorkload {
    /// The layer's neurons after §V-F software trimming (prefix/suffix
    /// bits outside the precision window zeroed).
    pub fn trimmed_neurons(&self) -> Tensor3<u16> {
        let w = self.window;
        self.neurons.map(|v| w.trim(v))
    }

    /// A borrowed view of this layer, for callers that already own (or
    /// share) the neuron tensor and must not clone it into a workload.
    pub fn view(&self) -> LayerView<'_> {
        LayerView {
            spec: &self.spec,
            window: self.window,
            stripes_precision: self.stripes_precision,
            neurons: &self.neurons,
        }
    }
}

/// A borrowed [`LayerWorkload`]: the same simulation inputs without
/// ownership of the neuron tensor. The inference driver hands the cycle
/// simulator views of its live activation tensors instead of cloning
/// every layer's activations into a fresh workload.
#[derive(Debug, Clone, Copy)]
pub struct LayerView<'a> {
    /// Layer geometry.
    pub spec: &'a ConvLayerSpec,
    /// The layer's precision window.
    pub window: PrecisionWindow,
    /// The Stripes serial precision for this layer.
    pub stripes_precision: u8,
    /// The layer's input neurons.
    pub neurons: &'a Tensor3<u16>,
}

/// A network's full convolutional workload in one representation.
#[derive(Debug, Clone)]
pub struct NetworkWorkload {
    /// Which network.
    pub network: Network,
    /// Which representation.
    pub repr: Representation,
    /// The activation model the layers were drawn from.
    pub model: ActivationModel,
    /// Per-layer geometry and neuron streams.
    pub layers: Vec<LayerWorkload>,
}

impl NetworkWorkload {
    /// Generates the workload for `network` under `repr` using the
    /// calibrated activation model and a deterministic `seed`.
    ///
    /// This is the main entry point used by every experiment; calibration
    /// results are cached process-wide, so repeated calls are cheap apart
    /// from drawing the streams themselves.
    pub fn build(network: Network, repr: Representation, seed: u64) -> Self {
        let model = crate::calibrate::calibrated_model(network, repr);
        Self::build_with_model(network, repr, model, seed)
    }

    /// Generates the workload from an explicit activation model.
    pub fn build_with_model(
        network: Network,
        repr: Representation,
        model: ActivationModel,
        seed: u64,
    ) -> Self {
        let specs = network.conv_layers();
        let precs = profiles::precisions(network);
        let layers = specs
            .into_iter()
            .zip(precs.iter().copied())
            .enumerate()
            .map(|(idx, (spec, p))| {
                let window = layer_window(repr, p);
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let neurons =
                    Tensor3::from_fn(spec.input, |_, _, _| model.sample(window, repr, &mut rng));
                LayerWorkload {
                    spec,
                    window,
                    stripes_precision: stripes_precision(repr, p),
                    neurons,
                }
            })
            .collect();
        Self { network, repr, model, layers }
    }

    /// Total multiplications over all layers.
    pub fn total_multiplications(&self) -> u64 {
        self.layers.iter().map(|l| l.spec.multiplications()).sum()
    }
}

/// The precision window used for a layer of Table II precision `p` under
/// `repr`: `p` bits anchored at [`WINDOW_LSB`] for fixed point; the full
/// 8-bit window for the quantized representation.
pub fn layer_window(repr: Representation, p: u8) -> PrecisionWindow {
    match repr {
        Representation::Fixed16 => PrecisionWindow::with_width(p, WINDOW_LSB),
        Representation::Quant8 => PrecisionWindow::new(7, 0),
    }
}

/// The per-layer Stripes serial precision under `repr` (Table II clamped
/// to the container width).
pub fn stripes_precision(repr: Representation, p: u8) -> u8 {
    match repr {
        Representation::Fixed16 => p,
        Representation::Quant8 => p.min(8),
    }
}

/// Deterministic synapse bank for functional verification: small signed
/// values spanning positives, negatives and zeros.
pub fn generate_synapses(spec: &ConvLayerSpec, seed: u64) -> Vec<Tensor3<i16>> {
    let mut rng = StdRng::seed_from_u64(seed);
    spec.filters_from_fn(|_, _, _, _| {
        // Mix of magnitudes; ~10% zeros.
        if rng.random::<f64>() < 0.1 {
            0
        } else {
            let mag: i32 = rng.random_range(-256..=256);
            mag as i16
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ActivationModel {
        ActivationModel {
            zero_frac: 0.5,
            sigma: 0.1,
            suffix_density: 0.4,
            outlier_prob: 0.01,
            dense_prob: 0.05,
            heavy_share: 0.5,
        }
    }

    #[test]
    fn sample_respects_zero_fraction_roughly() {
        let m = toy_model();
        let w = PrecisionWindow::with_width(8, WINDOW_LSB);
        let mut rng = StdRng::seed_from_u64(1);
        let zeros =
            (0..20_000).filter(|_| m.sample(w, Representation::Fixed16, &mut rng) == 0).count();
        let frac = zeros as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn nonzero_fixed16_samples_have_window_bits() {
        let m = ActivationModel {
            outlier_prob: 0.0,
            suffix_density: 0.0,
            dense_prob: 0.0,
            ..toy_model()
        };
        let w = PrecisionWindow::with_width(9, WINDOW_LSB);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let v = m.sample(w, Representation::Fixed16, &mut rng);
            if v != 0 {
                assert_eq!(w.trim(v), v, "value {v:#018b} escapes window");
                assert!(v >= 1 << WINDOW_LSB);
            }
        }
    }

    #[test]
    fn quant8_samples_fit_in_8_bits() {
        let m = toy_model();
        let w = layer_window(Representation::Quant8, 9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let v = m.sample(w, Representation::Quant8, &mut rng);
            assert!(v <= 255);
        }
    }

    #[test]
    fn larger_sigma_means_more_essential_bits() {
        let w = PrecisionWindow::with_width(9, WINDOW_LSB);
        let mean_bits = |sigma: f64| {
            let m = ActivationModel {
                zero_frac: 0.0,
                sigma,
                suffix_density: 0.0,
                outlier_prob: 0.0,
                dense_prob: 0.0,
                heavy_share: 0.0,
            };
            let mut rng = StdRng::seed_from_u64(4);
            (0..20_000)
                .map(|_| m.sample(w, Representation::Fixed16, &mut rng).count_ones() as f64)
                .sum::<f64>()
                / 20_000.0
        };
        assert!(mean_bits(0.02) < mean_bits(0.2));
        assert!(mean_bits(0.2) < mean_bits(0.9));
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let m = toy_model();
        let a = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        let b = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        assert_eq!(a.layers[2].neurons, b.layers[2].neurons);
        let c = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 8);
        assert_ne!(a.layers[2].neurons, c.layers[2].neurons);
    }

    #[test]
    fn layers_use_table2_windows() {
        let m = toy_model();
        let w = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 7);
        let widths: Vec<u8> = w.layers.iter().map(|l| l.window.width()).collect();
        assert_eq!(widths, vec![9, 8, 5, 5, 7]);
    }

    #[test]
    fn trimmed_neurons_live_in_window() {
        let m = toy_model();
        let w = NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, m, 9);
        let layer = &w.layers[0];
        let trimmed = layer.trimmed_neurons();
        for &v in trimmed.as_slice().iter().take(10_000) {
            assert_eq!(layer.window.trim(v), v);
        }
    }

    #[test]
    fn stripes_precision_clamped_for_quant8() {
        assert_eq!(stripes_precision(Representation::Fixed16, 12), 12);
        assert_eq!(stripes_precision(Representation::Quant8, 12), 8);
        assert_eq!(stripes_precision(Representation::Quant8, 5), 5);
    }

    #[test]
    fn synapses_are_mixed_sign() {
        let spec = ConvLayerSpec::new("t", (8, 8, 16), (3, 3), 4, 1, 0).unwrap();
        let banks = generate_synapses(&spec, 11);
        let all: Vec<i16> = banks.iter().flat_map(|t| t.as_slice().iter().copied()).collect();
        assert!(all.iter().any(|&s| s > 0));
        assert!(all.iter().any(|&s| s < 0));
        assert!(all.contains(&0));
    }
}
