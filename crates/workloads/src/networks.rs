//! Convolutional-layer geometry of the six evaluated networks (§VI-A).
//!
//! Layer shapes follow the standard Caffe/ImageNet model definitions. One
//! deliberate approximation, documented in DESIGN.md: GoogLeNet's nine
//! inception modules are each represented by a single 3×3 convolution with
//! the module's input and total-output channel counts, so that the network
//! contributes eleven layers — matching the eleven per-layer precisions the
//! paper reports for it in Table II — with approximately the module's
//! multiplication count.

use serde::{Deserialize, Serialize};

use pra_tensor::ConvLayerSpec;

/// The six state-of-the-art image-classification networks of the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Network {
    /// AlexNet (5 convolutional layers).
    AlexNet,
    /// Network-in-Network (12 convolutional layers).
    NiN,
    /// GoogLeNet (11 layer groups; see module docs).
    GoogLeNet,
    /// VGG-M (5 convolutional layers).
    VggM,
    /// VGG-S (5 convolutional layers).
    VggS,
    /// VGG-19 (16 convolutional layers).
    Vgg19,
}

impl Network {
    /// All six networks in the paper's reporting order.
    pub const ALL: [Network; 6] = [
        Network::AlexNet,
        Network::NiN,
        Network::GoogLeNet,
        Network::VggM,
        Network::VggS,
        Network::Vgg19,
    ];

    /// The short name used in the paper's tables ("Alexnet", "NiN", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Network::AlexNet => "Alexnet",
            Network::NiN => "NiN",
            Network::GoogLeNet => "Google",
            Network::VggM => "VGGM",
            Network::VggS => "VGGS",
            Network::Vgg19 => "VGG19",
        }
    }

    /// The network's convolutional layers in execution order.
    pub fn conv_layers(&self) -> Vec<ConvLayerSpec> {
        let rows: &[LayerRow] = match self {
            Network::AlexNet => ALEXNET,
            Network::NiN => NIN,
            Network::GoogLeNet => GOOGLENET,
            Network::VggM => VGG_M,
            Network::VggS => VGG_S,
            Network::Vgg19 => VGG_19,
        };
        rows.iter()
            .map(|r| {
                ConvLayerSpec::new(r.name, (r.nx, r.ny, r.i), (r.f, r.f), r.n, r.s, r.p)
                    .expect("built-in layer tables are valid")
            })
            .collect()
    }

    /// Total multiplications over the network's convolutional layers.
    pub fn total_multiplications(&self) -> u64 {
        self.conv_layers().iter().map(|l| l.multiplications()).sum()
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct LayerRow {
    name: &'static str,
    nx: usize,
    ny: usize,
    i: usize,
    f: usize,
    n: usize,
    s: usize,
    p: usize,
}

const fn l(
    name: &'static str,
    nx: usize,
    i: usize,
    f: usize,
    n: usize,
    s: usize,
    p: usize,
) -> LayerRow {
    LayerRow { name, nx, ny: nx, i, f, n, s, p }
}

const ALEXNET: &[LayerRow] = &[
    l("conv1", 227, 3, 11, 96, 4, 0),
    l("conv2", 27, 96, 5, 256, 1, 2),
    l("conv3", 13, 256, 3, 384, 1, 1),
    l("conv4", 13, 384, 3, 384, 1, 1),
    l("conv5", 13, 384, 3, 256, 1, 1),
];

const NIN: &[LayerRow] = &[
    l("conv1", 224, 3, 11, 96, 4, 0),
    l("cccp1", 54, 96, 1, 96, 1, 0),
    l("cccp2", 54, 96, 1, 96, 1, 0),
    l("conv2", 27, 96, 5, 256, 1, 2),
    l("cccp3", 27, 256, 1, 256, 1, 0),
    l("cccp4", 27, 256, 1, 256, 1, 0),
    l("conv3", 13, 256, 3, 384, 1, 1),
    l("cccp5", 13, 384, 1, 384, 1, 0),
    l("cccp6", 13, 384, 1, 384, 1, 0),
    l("conv4", 6, 384, 3, 1024, 1, 1),
    l("cccp7", 6, 1024, 1, 1024, 1, 0),
    l("cccp8", 6, 1024, 1, 1000, 1, 0),
];

const GOOGLENET: &[LayerRow] = &[
    l("conv1/7x7_s2", 224, 3, 7, 64, 2, 3),
    l("conv2/3x3_reduce", 56, 64, 1, 64, 1, 0),
    l("conv2/3x3", 56, 64, 3, 192, 1, 1),
    l("inception_3a", 28, 192, 3, 256, 1, 1),
    l("inception_3b", 28, 256, 3, 480, 1, 1),
    l("inception_4a", 14, 480, 3, 512, 1, 1),
    l("inception_4b", 14, 512, 3, 512, 1, 1),
    l("inception_4c", 14, 512, 3, 512, 1, 1),
    l("inception_4d", 14, 512, 3, 528, 1, 1),
    l("inception_4e", 14, 528, 3, 832, 1, 1),
    l("inception_5", 7, 832, 3, 1024, 1, 1),
];

const VGG_M: &[LayerRow] = &[
    l("conv1", 224, 3, 7, 96, 2, 0),
    l("conv2", 54, 96, 5, 256, 2, 1),
    l("conv3", 13, 256, 3, 512, 1, 1),
    l("conv4", 13, 512, 3, 512, 1, 1),
    l("conv5", 13, 512, 3, 512, 1, 1),
];

const VGG_S: &[LayerRow] = &[
    l("conv1", 224, 3, 7, 96, 2, 0),
    l("conv2", 36, 96, 5, 256, 1, 2),
    l("conv3", 18, 256, 3, 512, 1, 1),
    l("conv4", 18, 512, 3, 512, 1, 1),
    l("conv5", 18, 512, 3, 512, 1, 1),
];

const VGG_19: &[LayerRow] = &[
    l("conv1_1", 224, 3, 3, 64, 1, 1),
    l("conv1_2", 224, 64, 3, 64, 1, 1),
    l("conv2_1", 112, 64, 3, 128, 1, 1),
    l("conv2_2", 112, 128, 3, 128, 1, 1),
    l("conv3_1", 56, 128, 3, 256, 1, 1),
    l("conv3_2", 56, 256, 3, 256, 1, 1),
    l("conv3_3", 56, 256, 3, 256, 1, 1),
    l("conv3_4", 56, 256, 3, 256, 1, 1),
    l("conv4_1", 28, 256, 3, 512, 1, 1),
    l("conv4_2", 28, 512, 3, 512, 1, 1),
    l("conv4_3", 28, 512, 3, 512, 1, 1),
    l("conv4_4", 28, 512, 3, 512, 1, 1),
    l("conv5_1", 14, 512, 3, 512, 1, 1),
    l("conv5_2", 14, 512, 3, 512, 1, 1),
    l("conv5_3", 14, 512, 3, 512, 1, 1),
    l("conv5_4", 14, 512, 3, 512, 1, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn layer_counts_match_table2_profiles() {
        for net in Network::ALL {
            assert_eq!(
                net.conv_layers().len(),
                profiles::precisions(net).len(),
                "{net}: layer count vs Table II precision count"
            );
        }
    }

    #[test]
    fn alexnet_conv1_output_is_55() {
        let layers = Network::AlexNet.conv_layers();
        assert_eq!(layers[0].out_x(), 55);
        assert_eq!(layers[0].num_filters, 96);
    }

    #[test]
    fn vgg19_has_same_padding_everywhere() {
        for layer in Network::Vgg19.conv_layers() {
            assert_eq!(layer.out_x(), layer.input.x, "{}", layer.name());
        }
    }

    #[test]
    fn all_networks_have_positive_work() {
        for net in Network::ALL {
            assert!(net.total_multiplications() > 100_000_000, "{net}");
        }
    }

    #[test]
    fn vgg19_is_the_biggest_network() {
        let vgg19 = Network::Vgg19.total_multiplications();
        for net in [Network::AlexNet, Network::NiN, Network::VggM, Network::VggS] {
            assert!(vgg19 > net.total_multiplications(), "{net}");
        }
    }

    #[test]
    fn first_layers_have_three_input_channels() {
        for net in Network::ALL {
            assert_eq!(net.conv_layers()[0].input.i, 3, "{net}");
        }
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<_> = Network::ALL.iter().map(|n| n.name()).collect();
        assert_eq!(names, vec!["Alexnet", "NiN", "Google", "VGGM", "VGGS", "VGG19"]);
    }
}
