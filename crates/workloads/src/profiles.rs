//! Published per-network measurements used as calibration targets and as
//! the paper-side of every paper-vs-measured comparison.
//!
//! * [`precisions`] — Table II: per-layer neuron precision profiles in
//!   bits, found with the profiling methodology of Judd et al. (paper
//!   reference 4).
//! * [`table1`] — Table I: average fraction of non-zero neuron bits, over
//!   all neurons ("All") and over non-zero neurons ("NZ"), for the 16-bit
//!   fixed-point and the 8-bit quantized representations.

use serde::{Deserialize, Serialize};

use crate::networks::Network;

/// Table II per-layer neuron precisions (bits) for `net`.
pub fn precisions(net: Network) -> &'static [u8] {
    match net {
        Network::AlexNet => &[9, 8, 5, 5, 7],
        Network::NiN => &[8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8],
        Network::GoogLeNet => &[10, 8, 10, 9, 8, 10, 9, 8, 9, 10, 7],
        Network::VggM => &[7, 7, 7, 8, 7],
        Network::VggS => &[7, 8, 9, 7, 9],
        Network::Vgg19 => &[12, 12, 12, 11, 12, 10, 11, 11, 13, 12, 13, 13, 13, 13, 13, 13],
    }
}

/// One network's row of Table I: essential-bit fractions (as fractions,
/// not percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// 16-bit fixed point, over all neurons.
    pub fp16_all: f64,
    /// 16-bit fixed point, over non-zero neurons.
    pub fp16_nz: f64,
    /// 8-bit quantized, over all neurons.
    pub q8_all: f64,
    /// 8-bit quantized, over non-zero neurons.
    pub q8_nz: f64,
}

/// Table I of the paper for `net`.
pub fn table1(net: Network) -> Table1Row {
    let (fp16_all, fp16_nz, q8_all, q8_nz) = match net {
        Network::AlexNet => (7.8, 18.1, 31.4, 44.3),
        Network::NiN => (10.4, 22.1, 27.1, 37.4),
        Network::GoogLeNet => (6.4, 19.0, 26.8, 42.6),
        Network::VggM => (5.1, 16.5, 38.4, 47.4),
        Network::VggS => (5.7, 16.7, 34.3, 46.0),
        Network::Vgg19 => (12.7, 24.2, 16.5, 29.1),
    };
    Table1Row {
        fp16_all: fp16_all / 100.0,
        fp16_nz: fp16_nz / 100.0,
        q8_all: q8_all / 100.0,
        q8_nz: q8_nz / 100.0,
    }
}

/// Table V of the paper: fraction of PRA-2b-1R performance due to software
/// guidance, per network (as a fraction).
pub fn table5_software_benefit(net: Network) -> f64 {
    match net {
        Network::AlexNet => 0.23,
        Network::NiN => 0.10,
        Network::GoogLeNet => 0.18,
        Network::VggM => 0.22,
        Network::VggS => 0.21,
        Network::Vgg19 => 0.19,
    }
}

/// Paper-reported speedups over DaDianNao used in paper-vs-measured
/// reports: Stripes (Fig. 9 leftmost bars, geometric-mean 1.85×) and the
/// headline PRA variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperSpeedups {
    /// Stripes speedup over DaDN (geo mean 1.85).
    pub stripes: f64,
    /// Single-stage Pragmatic (PRA-4b / PRAsingle), pallet sync (2.59 geo).
    pub pra_single: f64,
    /// PRA-2b with per-column sync and 1 SSR (3.1 geo).
    pub pra_2b_1r: f64,
}

/// Per-network paper speedups. The paper reports per-network numbers only
/// in figures; values here are read off Fig. 9/10 and the quoted extremes
/// (2.11× for VGG19, 2.97× for VGGM in §VI-B1) and are used for *shape*
/// comparison, not exact matching.
pub fn paper_speedups(net: Network) -> PaperSpeedups {
    let (stripes, pra_single, pra_2b_1r) = match net {
        Network::AlexNet => (2.09, 2.62, 3.15),
        Network::NiN => (1.91, 2.61, 3.05),
        Network::GoogLeNet => (1.76, 2.73, 3.20),
        Network::VggM => (2.21, 2.97, 3.55),
        Network::VggS => (2.05, 2.77, 3.35),
        Network::Vgg19 => (1.27, 2.11, 2.45),
    };
    PaperSpeedups { stripes, pra_single, pra_2b_1r }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_values() {
        assert_eq!(precisions(Network::AlexNet), &[9, 8, 5, 5, 7]);
        assert_eq!(precisions(Network::Vgg19).len(), 16);
        assert_eq!(precisions(Network::GoogLeNet).len(), 11);
    }

    #[test]
    fn table1_fractions_in_unit_interval() {
        for net in Network::ALL {
            let r = table1(net);
            for v in [r.fp16_all, r.fp16_nz, r.q8_all, r.q8_nz] {
                assert!(v > 0.0 && v < 1.0, "{net}: {v}");
            }
            // NZ >= All by definition (zeros only dilute).
            assert!(r.fp16_nz >= r.fp16_all);
            assert!(r.q8_nz >= r.q8_all);
        }
    }

    #[test]
    fn software_benefit_averages_to_19_percent() {
        let avg: f64 = Network::ALL.iter().map(|&n| table5_software_benefit(n)).sum::<f64>() / 6.0;
        assert!((avg - 0.19).abs() < 0.005, "avg {avg}");
    }

    #[test]
    fn max_precision_is_13_bits() {
        let max = Network::ALL.iter().flat_map(|&n| precisions(n).iter().copied()).max().unwrap();
        assert_eq!(max, 13);
    }

    #[test]
    fn implied_zero_fraction_is_plausible() {
        // zero_frac = 1 - All/NZ must be a valid probability.
        for net in Network::ALL {
            let r = table1(net);
            let zf16 = 1.0 - r.fp16_all / r.fp16_nz;
            let zf8 = 1.0 - r.q8_all / r.q8_nz;
            assert!((0.0..1.0).contains(&zf16), "{net} {zf16}");
            assert!((0.0..1.0).contains(&zf8), "{net} {zf8}");
        }
    }
}
